"""The span-tree conformance checker.

Verifies, per closed journey, the structural invariants the span model
promises:

* every span is closed, non-negative, and contained in its parent;
* the hops of an attempt are contiguous -- each hop starts the instant
  the previous one delivered -- anchored at the attempt start; for a
  delivered attempt the last hop reaches the attempt end exactly;
* the phases of a hop exactly tile it: first phase at the hop start,
  no gap or overlap between consecutive phases, last phase at the hop
  end (gaps and overlaps are conformance failures, per the issue);
* attempts start at or after the journey start (the first one exactly
  at it) and the journey ends with its last-closing attempt.

Attempts may *overlap* each other: a CoAP retransmission fires on a wall
timer while the previous attempt's fragments can still be in flight, so
sibling attempts only guarantee containment, not tiling.

The checker is streaming in the same sense as the trace invariant
checkers (:mod:`repro.trace.invariants`): it runs once per journey as the
journey closes, holds no global state, and accumulates violations on the
hub for the conformance gate (``python -m repro journeys`` exits non-zero
when any fired).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.spans.model import Attempt, HopSpan, Journey


@dataclass(frozen=True)
class SpanViolation:
    """One conformance failure in a journey's span tree."""

    time_ns: int
    journey_id: int
    rule: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return (
            f"[{self.time_ns}ns] journey {self.journey_id} "
            f"{self.rule}: {self.message}"
        )

    def to_dict(self) -> dict:
        """JSON-safe form."""
        return {
            "time_ns": self.time_ns,
            "journey_id": self.journey_id,
            "rule": self.rule,
            "message": self.message,
        }


def check_journey(journey: Journey) -> List[SpanViolation]:
    """All conformance violations of one closed journey (empty = clean)."""
    out: List[SpanViolation] = []

    def fail(rule: str, time_ns: int, message: str) -> None:
        out.append(SpanViolation(time_ns, journey.id, rule, message))

    j_end = journey.end_ns
    if not journey.closed or j_end is None:
        fail("journey-open", journey.begin_ns, "journey was never closed")
        return out
    if j_end < journey.begin_ns:
        fail("negative-span", journey.begin_ns,
             f"journey [{journey.begin_ns}, {j_end}] is negative")
    last_end = journey.begin_ns
    for attempt in journey.attempts:
        _check_attempt(journey, attempt, fail)
        if attempt.end_ns is not None:
            last_end = max(last_end, attempt.end_ns)
    if journey.attempts:
        first = journey.attempts[0]
        if first.begin_ns != journey.begin_ns:
            fail("attempt-anchor", first.begin_ns,
                 f"attempt 0 starts at {first.begin_ns}, "
                 f"journey at {journey.begin_ns}")
        if last_end != j_end:
            fail("journey-tail", j_end,
                 f"journey ends at {j_end} but its last attempt "
                 f"activity ends at {last_end}")
    return out


_Fail = Callable[[str, int, str], None]


def _check_attempt(journey: Journey, attempt: Attempt, fail: _Fail) -> None:
    a_end = attempt.end_ns
    if not attempt.closed or a_end is None:
        fail("attempt-open", attempt.begin_ns,
             f"attempt {attempt.index} was never closed")
        return
    if a_end < attempt.begin_ns:
        fail("negative-span", attempt.begin_ns,
             f"attempt {attempt.index} [{attempt.begin_ns}, "
             f"{a_end}] is negative")
    j_end = journey.end_ns
    if j_end is not None and (
        attempt.begin_ns < journey.begin_ns or a_end > j_end
    ):
        fail("containment", attempt.begin_ns,
             f"attempt {attempt.index} [{attempt.begin_ns}, "
             f"{a_end}] escapes the journey "
             f"[{journey.begin_ns}, {j_end}]")

    cursor = attempt.begin_ns
    for i, hop in enumerate(attempt.hops):
        label = f"attempt {attempt.index} hop {i} {hop.src}->{hop.dst}"
        h_end = hop.end_ns
        if not hop.closed or h_end is None:
            fail("hop-open", hop.begin_ns, f"{label} was never closed")
            continue
        if hop.begin_ns != cursor:
            kind = "overlaps" if hop.begin_ns < cursor else "leaves a gap at"
            fail("hop-tiling", hop.begin_ns,
                 f"{label} starts at {hop.begin_ns} but {kind} the "
                 f"previous hop end {cursor}")
        if h_end < hop.begin_ns:
            fail("negative-span", hop.begin_ns,
                 f"{label} [{hop.begin_ns}, {h_end}] is negative")
        _check_phases(journey, attempt, hop, label, fail)
        cursor = h_end
    if attempt.outcome == "ok" and cursor != a_end:
        fail("attempt-tail", a_end,
             f"attempt {attempt.index} delivered at {a_end} but "
             f"its hop chain ends at {cursor}")
    elif cursor > a_end:
        fail("attempt-tail", a_end,
             f"attempt {attempt.index} hop chain runs to {cursor}, past "
             f"the attempt end {a_end}")


def _check_phases(
    journey: Journey, attempt: Attempt, hop: HopSpan, label: str, fail: _Fail
) -> None:
    h_end = hop.end_ns
    if h_end is None:
        return
    if not hop.phases:
        if h_end != hop.begin_ns:
            fail("phase-tiling", hop.begin_ns,
                 f"{label} spans {h_end - hop.begin_ns}ns "
                 f"with no phases")
        return
    cursor = hop.begin_ns
    for phase in hop.phases:
        if phase.begin_ns != cursor:
            kind = ("overlaps" if phase.begin_ns < cursor
                    else "leaves a gap after")
            fail("phase-tiling", phase.begin_ns,
                 f"{label} phase {phase.name!r} starts at {phase.begin_ns} "
                 f"but {kind} the previous boundary {cursor}")
        if phase.end_ns <= phase.begin_ns:
            fail("phase-tiling", phase.begin_ns,
                 f"{label} phase {phase.name!r} "
                 f"[{phase.begin_ns}, {phase.end_ns}] is empty or negative")
        cursor = max(cursor, phase.end_ns)
    if cursor != h_end:
        fail("phase-tiling", h_end,
             f"{label} phases end at {cursor}, hop at {h_end}")
