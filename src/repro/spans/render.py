"""Waterfall tables and latency-attribution summaries for journeys.

Renders an exported journeys payload (plain dicts, the same shape the
Chrome exporter consumes) as fixed-width text: a per-journey waterfall --
one row per hop, phase bars drawn on the journey's shared time axis -- and
an aggregated attribution table answering the paper's central question,
*where does multi-hop latency go?*, phase by phase.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.exp.report import format_table
from repro.sim.units import ns_to_s
from repro.spans.model import PHASE_NAMES

#: One character per phase for the waterfall bars.
PHASE_CHARS: Dict[str, str] = {
    "anchor_wait": "a",
    "queue": "q",
    "air": "#",
    "turnaround": "-",
    "event_wait": "e",
    "retx_wait": "r",
    "reassembly": "R",
    "stalled": "x",
    "link": "#",
}


def _iter_hops(journey: Dict[str, Any]) -> List[Dict[str, Any]]:
    hops: List[Dict[str, Any]] = []
    for attempt in journey["attempts"]:
        hops.extend(attempt["hops"])
    return hops


def render_waterfall(journey: Dict[str, Any], width: int = 64) -> str:
    """One journey as a per-hop waterfall on a shared time axis.

    Each row is a hop; its bar starts at the hop's offset into the journey
    and is painted with one character per phase (see :data:`PHASE_CHARS`),
    so queue waits, anchor waits, air time and retransmit cycles line up
    visually across hops.
    """
    begin = journey["begin_ns"]
    end = journey["end_ns"]
    total = max(1, (end or begin) - begin)
    scale = width / total
    header = (
        f"journey {journey['id']}: {journey['src']} -> {journey['dst']} "
        f"mid={journey['mid']} {'CON' if journey['con'] else 'NON'} "
        f"{journey['outcome']}  "
        f"({ns_to_s(total) * 1000:.2f} ms, "
        f"{len(journey['attempts'])} attempt(s))"
    )
    rows: List[Sequence[Any]] = []
    for attempt in journey["attempts"]:
        for hop in attempt["hops"]:
            hop_end = hop["end_ns"]
            if hop_end is None:
                continue
            cells = [" "] * width
            for phase in hop["phases"]:
                char = PHASE_CHARS.get(phase["name"], "?")
                lo = int((phase["begin_ns"] - begin) * scale)
                hi = int((phase["end_ns"] - begin) * scale)
                lo = min(max(lo, 0), width - 1)
                hi = min(max(hi, lo + 1), width)
                for i in range(lo, hi):
                    cells[i] = char
            rows.append([
                f"a{attempt['index']}",
                f"{hop['src']}->{hop['dst']}",
                hop["leg"][:4],
                f"{ns_to_s(hop['begin_ns'] - begin) * 1000:.2f}",
                f"{ns_to_s(hop_end - hop['begin_ns']) * 1000:.2f}",
                "".join(cells),
            ])
    table = format_table(
        ["at", "hop", "leg", "t0_ms", "dur_ms", "timeline"], rows
    )
    legend = "legend: " + "  ".join(
        f"{PHASE_CHARS[name]}={name}" for name in PHASE_NAMES
        if PHASE_CHARS.get(name)
    )
    return "\n".join([header, table, legend])


def attribution(journeys: Sequence[Dict[str, Any]]) -> Dict[str, Dict[str, int]]:
    """Total nanoseconds per phase name, over all hops of ``journeys``."""
    totals: Dict[str, Dict[str, int]] = {}
    for journey in journeys:
        for hop in _iter_hops(journey):
            for phase in hop["phases"]:
                agg = totals.setdefault(phase["name"], {"ns": 0, "count": 0})
                agg["ns"] += phase["end_ns"] - phase["begin_ns"]
                agg["count"] += 1
    return {name: totals[name] for name in sorted(totals)}


def render_attribution(journeys: Sequence[Dict[str, Any]]) -> str:
    """The aggregated where-does-latency-go table."""
    totals = attribution(journeys)
    grand = sum(agg["ns"] for agg in totals.values())
    rows: List[Sequence[Any]] = []
    # Stable presentation order: biggest contributor first, name tie-break.
    for name in sorted(totals, key=lambda n: (-totals[n]["ns"], n)):
        agg = totals[name]
        share = 100 * agg["ns"] / grand if grand else 0.0
        rows.append([
            name,
            f"{ns_to_s(agg['ns']) * 1000:.2f}",
            f"{share:.1f}%",
            agg["count"],
        ])
    return format_table(
        ["phase", "total_ms", "share", "intervals"], rows,
        title="latency attribution (all hops, all journeys)",
    )
