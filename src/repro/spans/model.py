"""Span-tree data model: journeys, attempts, hops, phases.

A *journey* is one CoAP exchange followed end to end: the request leaving
the client, every 6LoWPAN/L2CAP fragment of every hop, the server turn,
and the response coming back.  Journeys decompose causally::

    Journey            one CoAP token/mid pair, begin -> outcome
      Attempt          one CoAP transmission (initial + each retransmit)
        HopSpan        one link traversal of the datagram (request or
                       response leg); consecutive hops are contiguous --
                       a hop starts the instant the previous one delivered
          Phase        named wait/air intervals that exactly tile the hop

    All times are integer nanoseconds of simulation time.

The tiling property is the load-bearing invariant: phases are emitted from
a running boundary (:func:`compute_phases`), so gaps and overlaps cannot
arise by construction, and :mod:`repro.spans.check` re-verifies the
property on every closed journey -- a violation means an instrumentation
seam lost an event, which is exactly what the conformance gate exists to
catch.

Like :mod:`repro.trace.record`, this module depends only on the standard
library: the link layer imports the hub, so the model must sit below every
other layer of the stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

#: Schema tag stamped into every exported journeys payload.
SPANS_SCHEMA = "repro.spans/1"

# -- phase names --------------------------------------------------------------
#: Wait from SDU submission until the first connection-event anchor that
#: could have carried it.
PHASE_ANCHOR_WAIT = "anchor_wait"
#: Additional wait in the L2CAP/pktbuf queue: whole connection events that
#: passed without carrying this SDU (credit stalls, earlier SDUs) plus the
#: in-event backlog before the first fragment went out.
PHASE_QUEUE = "queue"
#: A PDU on the air.
PHASE_AIR = "air"
#: IFS + acknowledgement exchange between fragments inside one event.
PHASE_TURNAROUND = "turnaround"
#: The SDU straddled connection events: wait for the next anchor.
PHASE_EVENT_WAIT = "event_wait"
#: Wait for a link-layer retransmission after a lost PDU.
PHASE_RETX_WAIT = "retx_wait"
#: Between the last fragment arriving and the reassembled SDU being
#: delivered upward (zero on the BLE path: delivery is synchronous).
PHASE_REASSEMBLY = "reassembly"
#: A lost hop's tail: last observed activity until the hop was closed
#: (teardown, drop, or end of run).
PHASE_STALLED = "stalled"
#: Coarse single-phase hop for link layers without fragment-level
#: instrumentation (the IEEE 802.15.4 path).
PHASE_LINK = "link"

#: Every phase name a conforming hop may contain, in waterfall legend order.
PHASE_NAMES: Tuple[str, ...] = (
    PHASE_ANCHOR_WAIT,
    PHASE_QUEUE,
    PHASE_AIR,
    PHASE_TURNAROUND,
    PHASE_EVENT_WAIT,
    PHASE_RETX_WAIT,
    PHASE_REASSEMBLY,
    PHASE_STALLED,
    PHASE_LINK,
)


@dataclass(frozen=True)
class Phase:
    """One named interval of a hop; phases exactly tile their hop."""

    name: str
    begin_ns: int
    end_ns: int
    attrs: Tuple[Tuple[str, Any], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form."""
        out: Dict[str, Any] = {
            "name": self.name,
            "begin_ns": self.begin_ns,
            "end_ns": self.end_ns,
        }
        for key, value in self.attrs:
            out[key] = value
        return out


class TxEvent:
    """One link-layer transmission of a fragment of the hop's SDU."""

    __slots__ = ("begin_ns", "end_ns", "nbytes", "lost", "retx",
                 "anchor_ns", "interval_ns")

    def __init__(
        self,
        begin_ns: int,
        end_ns: int,
        nbytes: int,
        lost: bool,
        retx: bool,
        anchor_ns: int,
        interval_ns: int,
    ) -> None:
        self.begin_ns = begin_ns
        self.end_ns = end_ns
        self.nbytes = nbytes
        self.lost = lost
        self.retx = retx
        #: Anchor of the connection event that carried this transmission.
        self.anchor_ns = anchor_ns
        #: Negotiated (true) connection interval of the carrying link.
        self.interval_ns = interval_ns


class HopSpan:
    """One link traversal: SDU submission on ``src`` until delivery on
    ``dst`` (or loss)."""

    __slots__ = ("src", "dst", "leg", "begin_ns", "end_ns", "outcome",
                 "txs", "phases", "coarse", "rec_id")

    def __init__(self, src: str, dst: str, leg: str, begin_ns: int) -> None:
        self.src = src
        self.dst = dst
        #: ``request`` or ``response``.
        self.leg = leg
        self.begin_ns = begin_ns
        self.end_ns: Optional[int] = None
        self.outcome: Optional[str] = None
        self.txs: List[TxEvent] = []
        self.phases: List[Phase] = []
        #: Set for link layers without fragment-level hooks: the whole hop
        #: becomes one ``link`` phase.
        self.coarse = False
        #: ``id()`` of the L2CAP SDU record keying this hop in the hub
        #: (internal bookkeeping, never exported).
        self.rec_id: Optional[int] = None

    @property
    def closed(self) -> bool:
        """Whether the hop has been closed."""
        return self.end_ns is not None

    def close(self, end_ns: int, outcome: str) -> None:
        """Close the hop and derive its phase tiling."""
        self.end_ns = max(end_ns, self.begin_ns)
        self.outcome = outcome
        self.phases = compute_phases(
            self.begin_ns, self.end_ns, self.txs,
            ok=(outcome == "ok"), coarse=self.coarse,
        )

    @property
    def frames(self) -> int:
        """Number of link-layer transmissions, retransmissions included."""
        return len(self.txs)

    @property
    def retx(self) -> int:
        """Number of link-layer retransmissions."""
        return sum(1 for tx in self.txs if tx.retx)

    @property
    def reassembly_hold_ns(self) -> int:
        """How long the first delivered fragment waited for the last one."""
        if self.end_ns is None:
            return 0
        for tx in self.txs:
            if not tx.lost:
                return max(0, self.end_ns - tx.end_ns)
        return 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form."""
        return {
            "src": self.src,
            "dst": self.dst,
            "leg": self.leg,
            "begin_ns": self.begin_ns,
            "end_ns": self.end_ns,
            "outcome": self.outcome,
            "frames": self.frames,
            "retx": self.retx,
            "reassembly_hold_ns": self.reassembly_hold_ns,
            "phases": [p.to_dict() for p in self.phases],
        }


class Attempt:
    """One CoAP transmission and the hop chain it caused."""

    __slots__ = ("index", "begin_ns", "end_ns", "outcome", "hops")

    def __init__(self, index: int, begin_ns: int) -> None:
        self.index = index
        self.begin_ns = begin_ns
        self.end_ns: Optional[int] = None
        self.outcome: Optional[str] = None
        self.hops: List[HopSpan] = []

    @property
    def closed(self) -> bool:
        """Whether the attempt has been closed."""
        return self.end_ns is not None

    def close(self, end_ns: int, outcome: str) -> None:
        """Close the attempt (hops are closed by their own seams)."""
        self.end_ns = max(end_ns, self.begin_ns)
        self.outcome = outcome

    def new_hop(self, src: str, dst: str, leg: str, begin_ns: int) -> HopSpan:
        """Open the next hop of this attempt's chain."""
        hop = HopSpan(src, dst, leg, begin_ns)
        self.hops.append(hop)
        return hop

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form."""
        return {
            "index": self.index,
            "begin_ns": self.begin_ns,
            "end_ns": self.end_ns,
            "outcome": self.outcome,
            "hops": [h.to_dict() for h in self.hops],
        }


class Journey:
    """One CoAP exchange followed end to end."""

    __slots__ = ("id", "src", "dst", "token", "mid", "con",
                 "begin_ns", "end_ns", "outcome", "attempts")

    def __init__(
        self,
        journey_id: int,
        src: str,
        dst: str,
        token: str,
        mid: int,
        con: bool,
        begin_ns: int,
    ) -> None:
        self.id = journey_id
        self.src = src
        self.dst = dst
        #: Hex form of the CoAP token (deterministic, JSON-safe).
        self.token = token
        self.mid = mid
        self.con = con
        self.begin_ns = begin_ns
        self.end_ns: Optional[int] = None
        self.outcome: Optional[str] = None
        self.attempts: List[Attempt] = []

    @property
    def closed(self) -> bool:
        """Whether the journey has been closed."""
        return self.end_ns is not None

    def new_attempt(self, begin_ns: int) -> Attempt:
        """Open the next CoAP transmission attempt."""
        attempt = Attempt(len(self.attempts), begin_ns)
        self.attempts.append(attempt)
        return attempt

    def close(self, end_ns: int, outcome: str) -> None:
        """Close the journey; still-open attempts close alongside it.

        The attempt whose delivery completed the journey (``winner``, if
        any) inherits the journey outcome; other stragglers close as
        ``abandoned``.
        """
        self.end_ns = max(end_ns, self.begin_ns)
        self.outcome = outcome
        for attempt in self.attempts:
            if not attempt.closed:
                attempt.close(self.end_ns, outcome)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form."""
        return {
            "id": self.id,
            "src": self.src,
            "dst": self.dst,
            "token": self.token,
            "mid": self.mid,
            "con": self.con,
            "begin_ns": self.begin_ns,
            "end_ns": self.end_ns,
            "outcome": self.outcome,
            "attempts": [a.to_dict() for a in self.attempts],
        }


def compute_phases(
    begin_ns: int,
    end_ns: int,
    txs: List[TxEvent],
    ok: bool,
    coarse: bool = False,
) -> List[Phase]:
    """Derive the phase tiling of a hop from its raw transmission list.

    Phases are cut from a single running boundary, so the result tiles
    ``[begin_ns, end_ns]`` exactly -- monotone, gap-free, overlap-free --
    no matter how the raw events are shaped.  Out-of-order inputs (a
    forwarded SDU can be enqueued with an in-event time hint that exceeds
    the carrying event's anchor) clamp to the boundary instead of
    producing an overlap; the distortion is bounded by one event budget
    and only affects attribution, never conformance.

    Zero-length phases are skipped.
    """
    phases: List[Phase] = []
    last = begin_ns

    def cut(name: str, until_ns: int, **attrs: Any) -> None:
        nonlocal last
        until = min(max(until_ns, last), end_ns)
        if until > last:
            phases.append(Phase(name, last, until, tuple(attrs.items())))
            last = until

    if begin_ns >= end_ns:
        return phases
    if coarse:
        cut(PHASE_LINK, end_ns)
        return phases
    if txs:
        first = txs[0]
        # The first event anchor at or after submission: everything before
        # it is unavoidable anchor wait, everything after is queueing.
        n0 = begin_ns
        if first.anchor_ns > begin_ns and first.interval_ns > 0:
            skipped = (first.anchor_ns - begin_ns) // first.interval_ns
            n0 = first.anchor_ns - skipped * first.interval_ns
        cut(PHASE_ANCHOR_WAIT, n0)
        cut(PHASE_QUEUE, first.begin_ns)
        prev: Optional[TxEvent] = None
        for tx in txs:
            if prev is not None:
                if prev.lost or tx.retx:
                    cut(PHASE_RETX_WAIT, tx.begin_ns)
                elif tx.anchor_ns == prev.anchor_ns:
                    cut(PHASE_TURNAROUND, tx.begin_ns)
                else:
                    cut(PHASE_EVENT_WAIT, tx.begin_ns)
            cut(PHASE_AIR, tx.end_ns,
                nbytes=tx.nbytes, lost=tx.lost, retx=tx.retx)
            prev = tx
    # The tail reaches the hop end by construction, keeping the tiling
    # exact: reassembly hold for delivered hops (zero on the synchronous
    # BLE path), stalled time for lost ones.
    cut(PHASE_REASSEMBLY if ok else PHASE_STALLED, end_ns)
    return phases
