"""Chrome-trace / Perfetto JSON export of a journeys payload.

Produces the Trace Event Format (the ``{"traceEvents": [...]}`` JSON that
``chrome://tracing`` and https://ui.perfetto.dev load directly): each
journey becomes one "process", each hop one "thread", and every span a
complete (``"ph": "X"``) event, so a shaded 3-hop run opens as a flame
chart with the per-hop phase decomposition stacked under each hop.

The exporter works on the *exported payload* (plain dicts), not the live
span objects, so it applies equally to a fresh run and to spans shipped
through :class:`repro.exp.portable.PortableResult` or the result cache.

Timestamps are microseconds as the format requires; integer nanoseconds
divide exactly into (possibly fractional) microsecond floats, and
``json.dumps`` renders a given float deterministically, so the export is
byte-stable for a byte-stable payload.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List


def _us(time_ns: int) -> float:
    """Trace-event timestamp: microseconds since the epoch of the run."""
    return time_ns / 1000


def chrome_trace_document(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Build a Trace Event Format document from a journeys payload."""
    events: List[Dict[str, Any]] = []
    for journey in payload.get("journeys", []):
        pid = journey["id"]
        end_ns = journey["end_ns"]
        if end_ns is None:
            continue
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": (
                f"journey {journey['id']}: {journey['src']}->{journey['dst']}"
                f" mid={journey['mid']} ({journey['outcome']})"
            )},
        })
        events.append({
            "ph": "M", "name": "process_sort_index", "pid": pid, "tid": 0,
            "args": {"sort_index": pid},
        })
        events.append({
            "ph": "X", "name": f"journey ({journey['outcome']})",
            "cat": "journey", "pid": pid, "tid": 0,
            "ts": _us(journey["begin_ns"]),
            "dur": _us(end_ns - journey["begin_ns"]),
            "args": {
                "src": journey["src"], "dst": journey["dst"],
                "token": journey["token"], "mid": journey["mid"],
                "con": journey["con"], "outcome": journey["outcome"],
            },
        })
        # One thread row per (attempt, hop); phases nest under their hop on
        # the same row because Perfetto stacks contained "X" events.
        tid = 0
        for attempt in journey["attempts"]:
            for hop in attempt["hops"]:
                tid += 1
                hop_end = hop["end_ns"]
                if hop_end is None:
                    continue
                events.append({
                    "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                    "args": {"name": (
                        f"a{attempt['index']} {hop['leg'][:3]} "
                        f"{hop['src']}->{hop['dst']}"
                    )},
                })
                events.append({
                    "ph": "X", "name": f"hop {hop['src']}->{hop['dst']}",
                    "cat": f"hop.{hop['leg']}", "pid": pid, "tid": tid,
                    "ts": _us(hop["begin_ns"]),
                    "dur": _us(hop_end - hop["begin_ns"]),
                    "args": {
                        "leg": hop["leg"], "outcome": hop["outcome"],
                        "frames": hop["frames"], "retx": hop["retx"],
                        "reassembly_hold_ns": hop["reassembly_hold_ns"],
                    },
                })
                for phase in hop["phases"]:
                    args = {
                        k: v for k, v in phase.items()
                        if k not in ("name", "begin_ns", "end_ns")
                    }
                    events.append({
                        "ph": "X", "name": phase["name"],
                        "cat": "phase", "pid": pid, "tid": tid,
                        "ts": _us(phase["begin_ns"]),
                        "dur": _us(phase["end_ns"] - phase["begin_ns"]),
                        "args": args,
                    })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def dumps_chrome_trace(payload: Dict[str, Any]) -> str:
    """Serialize the Chrome-trace document (compact, trailing newline)."""
    doc = chrome_trace_document(payload)
    return json.dumps(doc, separators=(",", ":"), sort_keys=True) + "\n"
