"""Causally-linked packet-journey spans (see :mod:`repro.spans.hub`).

One CoAP exchange = one journey: a span tree covering every fragment,
every hop, and every retransmission, with per-hop phases that exactly
tile the end-to-end latency.  ``python -m repro journeys`` runs the
conformance gate and renders waterfalls; :mod:`repro.spans.chrome`
exports Perfetto-loadable flame charts.
"""

from repro.spans.check import SpanViolation, check_journey
from repro.spans.chrome import chrome_trace_document, dumps_chrome_trace
from repro.spans.hub import SPANS, SpanHub
from repro.spans.model import (
    SPANS_SCHEMA,
    Attempt,
    HopSpan,
    Journey,
    Phase,
    TxEvent,
    compute_phases,
)
