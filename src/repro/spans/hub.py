"""The process-wide span hub: journey propagation and span lifecycle.

Instrumented code throughout the stack guards every call with::

    if SPANS.enabled:
        SPANS.hop_delivered()

:data:`SPANS` is a module-level singleton that is *never replaced* -- the
same discipline as :data:`repro.trace.tracer.TRACE` and
:data:`repro.obs.registry.METRICS` -- so the hot-path cost with spans
disabled is one attribute load and one branch.

Journey ids are propagated *causally*, not on the wire: inside one kernel
dispatch every piece of downstream work a packet triggers runs
synchronously, so the hub holds a "current journey" context that entry
points (a CoAP request, a link-layer SDU delivery) install and restore
around the work they cause.  No message format changes, no extra timers,
no RNG draws -- a spans-enabled run is byte-identical to a disabled one
in every trace and metric the simulator produces.

Because simulation time does not advance inside a dispatch (``sim.now``
is frozen at the carrying event's anchor), the BLE exchange loop publishes
its exact per-PDU times through :attr:`SpanHub.now_hint`; every span
opened or closed during a delivery chain is stamped with the true air
time rather than the anchor, which is what makes consecutive hops tile
exactly.

Hops are keyed by the identity of the L2CAP SDU record carrying them
(:class:`repro.l2cap.coc._CocEnd` queues one record per SDU and stamps
its K-frames with it), which bridges the asynchronous gap between SDU
submission and the connection events that carry the fragments.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.instr import INSTR
from repro.obs.registry import METRICS, PHASE_BUCKETS_S, RTT_BUCKETS_S
from repro.sim.units import ns_to_s
from repro.spans.check import SpanViolation, check_journey
from repro.spans.model import SPANS_SCHEMA, HopSpan, Journey, TxEvent


class _Ctx:
    """The propagated journey context of one synchronous causal chain."""

    __slots__ = ("journey", "attempt", "leg", "hop")

    def __init__(self, journey: Journey, attempt: Any, leg: str,
                 hop: Optional[HopSpan] = None) -> None:
        self.journey = journey
        self.attempt = attempt
        self.leg = leg
        #: The hop currently being received (set by :meth:`SpanHub.rx_enter`).
        self.hop = hop


class SpanHub:
    """Journey registry, propagation context, and span lifecycle seams."""

    __slots__ = (
        "enabled",
        "now_hint",
        "journeys",
        "violations",
        "_sim",
        "_next_id",
        "_ctx",
        "_by_key",
        "_hop_by_rec",
        "_hop_by_tag",
        "_open_by_conn",
    )

    def __init__(self) -> None:
        #: The hot-path gate; instrumented code checks this before anything.
        self.enabled = False
        #: Exact in-event time published by the BLE exchange loop while a
        #: delivery chain runs (``None`` = use ``sim.now``).
        self.now_hint: Optional[int] = None
        #: Every journey of the run, in begin order (dense per-run ids).
        self.journeys: List[Journey] = []
        #: Conformance violations found by the streaming checker.
        self.violations: List[SpanViolation] = []
        self._sim: Any = None
        self._next_id = 0
        self._ctx: Optional[_Ctx] = None
        #: ``(node_id, token, mid) -> journey`` for CoAP completion/timeout.
        self._by_key: Dict[Tuple[int, bytes, int], Journey] = {}
        #: ``id(sdu_record) -> (hop, journey, attempt)`` for link-layer
        #: TX/RX resolution (entries removed as hops close, so record
        #: identity reuse after garbage collection cannot alias).
        self._hop_by_rec: Dict[int, Tuple[HopSpan, Journey, Any]] = {}
        #: Hashable datagram keys for coarse (non-BLE) link layers.
        self._hop_by_tag: Dict[Any, Tuple[HopSpan, Journey, Any]] = {}
        #: ``id(conn) -> [hop, ...]`` so teardown can close orphans.
        self._open_by_conn: Dict[int, List[HopSpan]] = {}

    # -- lifecycle -----------------------------------------------------------

    def configure(self, sim: Any = None) -> None:
        """Arm the hub: reset per-run state, enable collection."""
        self._sim = sim
        self.now_hint = None
        self.journeys = []
        self.violations = []
        self._next_id = 0
        self._ctx = None
        self._by_key = {}
        self._hop_by_rec = {}
        self._hop_by_tag = {}
        self._open_by_conn = {}
        self.enabled = True
        INSTR.bump()

    def attach_sim(self, sim: Any) -> None:
        """Late-bind the simulator (the runner knows it after net build)."""
        self._sim = sim

    def reset(self) -> None:
        """Disarm the hub and drop all state."""
        self.enabled = False
        INSTR.bump()
        self.now_hint = None
        self._sim = None
        self._ctx = None
        self.journeys = []
        self.violations = []
        self._by_key = {}
        self._hop_by_rec = {}
        self._hop_by_tag = {}
        self._open_by_conn = {}

    def now(self) -> int:
        """Exact current time: the in-event hint when set, else ``sim.now``."""
        hint = self.now_hint
        if hint is not None:
            return hint
        sim = self._sim
        return int(sim.now) if sim is not None else 0

    # -- context propagation -------------------------------------------------

    def ctx_restore(self, prev: Optional[_Ctx]) -> None:
        """Restore the context an entry point swapped out."""
        self._ctx = prev

    # -- journey seams (CoAP endpoint) ---------------------------------------

    def journey_begin(
        self, node_id: int, dst: str, token: bytes, mid: int, con: bool
    ) -> Optional[_Ctx]:
        """A CoAP request is being sent; returns the context to restore."""
        begin = self.now()
        journey = Journey(
            self._next_id, f"node{node_id}", dst, token.hex(), mid, con, begin
        )
        self._next_id += 1
        self.journeys.append(journey)
        self._by_key[(node_id, token, mid)] = journey
        attempt = journey.new_attempt(begin)
        prev = self._ctx
        self._ctx = _Ctx(journey, attempt, "request")
        return prev

    def journey_retransmit(
        self, node_id: int, token: bytes, mid: int
    ) -> Optional[_Ctx]:
        """A CoAP retransmission fires; opens the next attempt."""
        prev = self._ctx
        journey = self._by_key.get((node_id, token, mid))
        if journey is None or journey.closed:
            return prev
        attempt = journey.new_attempt(self.now())
        self._ctx = _Ctx(journey, attempt, "request")
        return prev

    def journey_complete(
        self, node_id: int, token: bytes, mid: int, outcome: str
    ) -> None:
        """The client matched a response (``ok``) or gave up (``timeout``)."""
        journey = self._by_key.pop((node_id, token, mid), None)
        if journey is None or journey.closed:
            return
        now = self.now()
        ctx = self._ctx
        if ctx is not None and ctx.journey is journey and not ctx.attempt.closed:
            # The delivering attempt ends at the completion instant; any
            # sibling still in flight is closed as abandoned by close().
            ctx.attempt.close(now, outcome)
        for attempt in journey.attempts:
            if not attempt.closed:
                attempt.close(now, "abandoned" if outcome == "ok" else outcome)
        journey.close(now, outcome)
        self._finish_journey(journey)

    def response_leg(self) -> None:
        """The server is about to send the response for the current chain."""
        ctx = self._ctx
        if ctx is not None:
            ctx.leg = "response"

    def drop(self, cause: str) -> None:
        """The packet of the current chain was dropped (IP or buffer)."""
        ctx = self._ctx
        if ctx is None or ctx.attempt.closed:
            return
        ctx.attempt.close(self.now(), f"drop:{cause}")

    # -- hop seams (netif / L2CAP / link layer) ------------------------------

    def hop_open(self, rec: Any, conn: Any, src: str, dst: str) -> None:
        """An SDU of the current chain was queued on a link."""
        ctx = self._ctx
        if ctx is None or ctx.attempt.closed:
            return
        hop = ctx.attempt.new_hop(src, dst, ctx.leg, self.now())
        hop.rec_id = id(rec)
        self._hop_by_rec[hop.rec_id] = (hop, ctx.journey, ctx.attempt)
        self._open_by_conn.setdefault(id(conn), []).append(hop)

    def ll_tx(
        self,
        rec: Any,
        begin_ns: int,
        end_ns: int,
        nbytes: int,
        lost: bool,
        retx: bool,
        anchor_ns: int,
        interval_ns: int,
    ) -> None:
        """One K-frame of ``rec`` went on the air (from the exchange loop)."""
        entry = self._hop_by_rec.get(id(rec))
        if entry is None:
            return
        hop = entry[0]
        if hop.closed:
            return
        hop.txs.append(
            TxEvent(begin_ns, end_ns, nbytes, lost, retx, anchor_ns, interval_ns)
        )

    def rx_enter(self, rec: Any) -> Optional[_Ctx]:
        """A K-frame of ``rec`` arrived; install its hop's chain context."""
        prev = self._ctx
        entry = self._hop_by_rec.get(id(rec))
        if entry is None:
            return prev
        hop, journey, attempt = entry
        if not hop.closed and not journey.closed:
            self._ctx = _Ctx(journey, attempt, hop.leg, hop)
        return prev

    def hop_delivered(self) -> None:
        """The SDU being received reassembled completely; close its hop."""
        ctx = self._ctx
        hop = ctx.hop if ctx is not None else None
        if hop is None or hop.closed:
            return
        self._close_hop(hop, self.now(), "ok")

    def conn_closed(self, conn: Any) -> None:
        """A link went down; its in-flight hops are lost."""
        hops = self._open_by_conn.pop(id(conn), None)
        if not hops:
            return
        now = self.now()
        for hop in hops:
            if not hop.closed:
                self._close_hop(hop, now, "lost")

    # -- coarse hops (link layers without fragment-level hooks) --------------

    def hop_open_coarse(self, key: Any, src: str, dst: str) -> None:
        """Open a single-phase hop keyed by a hashable datagram key."""
        ctx = self._ctx
        if ctx is None or ctx.attempt.closed:
            return
        hop = ctx.attempt.new_hop(src, dst, ctx.leg, self.now())
        hop.coarse = True
        self._hop_by_tag[key] = (hop, ctx.journey, ctx.attempt)

    def rx_enter_coarse(self, key: Any) -> Optional[_Ctx]:
        """Install the chain context of a coarse hop about to deliver."""
        prev = self._ctx
        entry = self._hop_by_tag.get(key)
        if entry is None:
            return prev
        hop, journey, attempt = entry
        if not hop.closed and not journey.closed:
            self._ctx = _Ctx(journey, attempt, hop.leg, hop)
        return prev

    def hop_delivered_coarse(self, key: Any) -> None:
        """A coarse hop's datagram reassembled on the far side."""
        entry = self._hop_by_tag.pop(key, None)
        if entry is not None and not entry[0].closed:
            entry[0].close(self.now(), "ok")

    def hop_lost_coarse(self, key: Any) -> None:
        """A coarse hop's datagram was dropped on the link."""
        entry = self._hop_by_tag.pop(key, None)
        if entry is not None and not entry[0].closed:
            entry[0].close(self.now(), "lost")

    # -- end of run ----------------------------------------------------------

    def finish(self, end_ns: int) -> None:
        """Close everything still open at the end of the run as ``lost``.

        Journeys whose datagram is still in flight (or whose NON request
        vanished without a retransmission to notice) flush here; the
        checker exempts nothing -- their spans must still nest and tile up
        to the flush point.
        """
        for entry in list(self._hop_by_rec.values()):
            if not entry[0].closed:
                self._close_hop(entry[0], end_ns, "lost")
        for entry in list(self._hop_by_tag.values()):
            if not entry[0].closed:
                entry[0].close(end_ns, "lost")
        self._hop_by_tag = {}
        self._open_by_conn = {}
        for journey in self.journeys:
            if not journey.closed:
                journey.close(end_ns, "lost")
                self._finish_journey(journey)
        self._by_key = {}
        self._ctx = None

    def export_payload(self) -> Dict[str, Any]:
        """The run's journeys as a JSON-safe, byte-stable payload."""
        outcomes: Dict[str, int] = {}
        hops = frames = 0
        for journey in self.journeys:
            outcomes[journey.outcome or "open"] = (
                outcomes.get(journey.outcome or "open", 0) + 1
            )
            for attempt in journey.attempts:
                hops += len(attempt.hops)
                for hop in attempt.hops:
                    frames += hop.frames
        return {
            "schema": SPANS_SCHEMA,
            "journeys": [j.to_dict() for j in self.journeys],
            "violations": [v.to_dict() for v in self.violations],
            "summary": {
                "journeys": len(self.journeys),
                "outcomes": {k: outcomes[k] for k in sorted(outcomes)},
                "hops": hops,
                "frames": frames,
            },
        }

    # -- internals -----------------------------------------------------------

    def _close_hop(self, hop: HopSpan, end_ns: int, outcome: str) -> None:
        hop.close(end_ns, outcome)
        if hop.rec_id is not None:
            self._hop_by_rec.pop(hop.rec_id, None)
            hop.rec_id = None

    def _finish_journey(self, journey: Journey) -> None:
        """Check a freshly closed journey and feed the obs histograms."""
        self.violations.extend(check_journey(journey))
        if not METRICS.enabled or journey.end_ns is None:
            return
        METRICS.inc_vec(
            journey.src, "spans.journey_outcomes",
            journey.outcome, label_key="outcome",
        )
        if journey.outcome == "ok":
            METRICS.observe(
                journey.src, "spans.journey_seconds",
                ns_to_s(journey.end_ns - journey.begin_ns), RTT_BUCKETS_S,
            )
        for attempt in journey.attempts:
            for hop in attempt.hops:
                METRICS.inc(hop.src, "spans.hops")
                if hop.retx:
                    METRICS.inc(hop.src, "spans.hop_retx", hop.retx)
                for phase in hop.phases:
                    METRICS.observe(
                        hop.src, f"spans.phase_{phase.name}_seconds",
                        ns_to_s(phase.end_ns - phase.begin_ns),
                        PHASE_BUCKETS_S,
                    )


#: The singleton every instrumented module imports.  Never rebind it.
SPANS = SpanHub()
