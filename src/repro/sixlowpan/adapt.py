"""RFC 7668 adaptation glue.

IPv6 over BLE differs from classic 6LoWPAN in two ways that matter here:

* **no fragmentation header** -- datagrams up to the 1280-byte IPv6 MTU ride
  in one L2CAP SDU, which the CoC segments transparently (§3.2 of the RFC);
* header compression is still RFC 6282 IPHC, with IIDs derivable from the
  Bluetooth device address.

:class:`BleAdaptation` is the object the netif uses to translate between
IPv6 packets and link SDUs, and it keeps the byte accounting that feeds the
packet-size arithmetic of §4.3.
"""

from __future__ import annotations

from typing import Optional

from repro.sixlowpan import iphc
from repro.sixlowpan.ipv6 import Ipv6Address, Ipv6Packet


class BleAdaptation:
    """Stateless IPv6 <-> 6LoWPAN translation for one interface.

    :param use_iphc: disable to send the uncompressed-IPv6 dispatch instead
        (an ablation knob; RFC 7668 mandates IPHC support but allows both).
    """

    def __init__(self, use_iphc: bool = True):
        self.use_iphc = use_iphc
        #: Cumulative uncompressed IPv6 bytes presented.
        self.bytes_in = 0
        #: Cumulative on-link bytes produced.
        self.bytes_out = 0
        #: Datagrams translated in each direction.
        self.packets_down = 0
        self.packets_up = 0

    def to_link(
        self,
        packet: Ipv6Packet,
        src_ll_iid: Optional[bytes] = None,
        dst_ll_iid: Optional[bytes] = None,
    ) -> bytes:
        """Translate an outbound IPv6 packet into the L2CAP SDU bytes."""
        raw = packet.encode()
        if self.use_iphc:
            wire = iphc.compress(packet, src_ll_iid, dst_ll_iid)
        else:
            wire = bytes([iphc.UNCOMPRESSED_IPV6_DISPATCH]) + raw
        self.bytes_in += len(raw)
        self.bytes_out += len(wire)
        self.packets_down += 1
        return wire

    def from_link(
        self,
        data: bytes,
        src_ll_iid: Optional[bytes] = None,
        dst_ll_iid: Optional[bytes] = None,
    ) -> Ipv6Packet:
        """Translate inbound link bytes back into an IPv6 packet.

        :raises iphc.IphcError: on malformed input.
        """
        packet = iphc.decompress(data, src_ll_iid, dst_ll_iid)
        self.packets_up += 1
        return packet

    @property
    def compression_ratio(self) -> float:
        """On-link bytes per uncompressed byte (1.0 = no gain)."""
        if self.bytes_in == 0:
            return 1.0
        return self.bytes_out / self.bytes_in

    @staticmethod
    def iid_for_node(node_id: int) -> bytes:
        """The link-layer-derived IID for a node (RFC 7668 §3.2.2)."""
        return Ipv6Address.iid_from_node_id(node_id)
