"""RFC 6282 IPHC header compression with NHC-UDP.

Stateless compression only (CID = 0): the simulated mesh distributes no
6LoWPAN contexts, mirroring the paper's configuration where GNRC runs with
default contexts.  Link-local addresses whose IID is derived from the
link-layer address compress down to zero bytes; routable mesh addresses ride
inline -- which is exactly why the paper's multi-hop packets see little
compression gain (100-byte IP packets become 115-byte BLE packets, §4.3).

Wire layout (two base bytes)::

      0   1   2   3   4   5   6   7 | 8   9  10  11  12  13  14  15
    | 0   1   1 |  TF   | NH | HLIM |CID|SAC|  SAM  | M |DAC|  DAM  |

followed by the inline fields in that order, then (with NH = 1) the NHC-UDP
header ``1 1 1 1 0 C P1 P0`` and its inline port/checksum fields.
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

from repro.sixlowpan.ipv6 import (
    Ipv6Address,
    Ipv6Packet,
    PROTO_UDP,
    udp_checksum,
)

#: First-byte dispatch pattern of an IPHC-compressed datagram.
IPHC_DISPATCH = 0b011_00000
#: Dispatch byte for an uncompressed IPv6 datagram (RFC 4944 §5.1).
UNCOMPRESSED_IPV6_DISPATCH = 0x41
#: NHC-UDP header pattern ``11110CPP``.
NHC_UDP_PATTERN = 0b1111_0000

_LINK_LOCAL_PADDED = bytes.fromhex("fe80000000000000")


class IphcError(ValueError):
    """Raised on undecodable compressed datagrams."""


# ---------------------------------------------------------------------------
# compression
# ---------------------------------------------------------------------------


def _compress_unicast(addr: Ipv6Address, ll_iid: Optional[bytes]) -> Tuple[int, bytes]:
    """Pick the SAM/DAM mode and inline bytes for a unicast address."""
    if addr.is_link_local:
        iid = addr.iid
        if ll_iid is not None and iid == ll_iid:
            return 0b11, b""  # fully elided, derived from the LL address
        if iid[:6] == bytes.fromhex("000000fffe00"):
            return 0b10, iid[6:]  # 16-bit compressible IID
        return 0b01, iid  # 64-bit IID inline, prefix elided
    return 0b00, addr.packed  # full address inline


def _compress_multicast(addr: Ipv6Address) -> Tuple[int, bytes]:
    """Pick the DAM mode and inline bytes for a multicast address."""
    p = addr.packed
    if p[:15] == bytes.fromhex("ff02") + b"\x00" * 13:
        return 0b11, p[15:16]  # ff02::00XX
    if p[2:13] == b"\x00" * 11:
        return 0b10, p[1:2] + p[13:]  # ffXX::00XX:XXXX
    if p[2:11] == b"\x00" * 9:
        return 0b01, p[1:2] + p[11:]  # ffXX::00XX:XXXX:XXXX
    return 0b00, p


def compress(
    packet: Ipv6Packet,
    src_ll_iid: Optional[bytes] = None,
    dst_ll_iid: Optional[bytes] = None,
) -> bytes:
    """Compress an IPv6 packet into a 6LoWPAN IPHC datagram.

    :param packet: the datagram to compress.
    :param src_ll_iid: IID derivable from the link-layer source address
        (enables full source elision for link-local traffic).
    :param dst_ll_iid: same for the destination.
    :returns: the compressed bytes including payload.
    """
    inline = bytearray()

    # TF: traffic class + flow label
    if packet.traffic_class == 0 and packet.flow_label == 0:
        tf = 0b11
    elif packet.flow_label == 0:
        tf = 0b10
        inline.append(packet.traffic_class)
    elif (packet.traffic_class & 0b111111) == 0:  # DSCP zero, ECN present
        tf = 0b01
        ecn = packet.traffic_class >> 6
        inline += bytes(
            [
                (ecn << 6) | ((packet.flow_label >> 16) & 0x0F),
                (packet.flow_label >> 8) & 0xFF,
                packet.flow_label & 0xFF,
            ]
        )
    else:
        tf = 0b00
        ecn_dscp = packet.traffic_class
        inline += bytes(
            [
                ecn_dscp,
                (packet.flow_label >> 16) & 0x0F,
                (packet.flow_label >> 8) & 0xFF,
                packet.flow_label & 0xFF,
            ]
        )

    # NH: UDP gets NHC compression
    udp_nhc = packet.next_header == PROTO_UDP and len(packet.payload) >= 8
    nh = 1 if udp_nhc else 0
    if not udp_nhc:
        inline.append(packet.next_header)

    # HLIM
    hlim_modes = {1: 0b01, 64: 0b10, 255: 0b11}
    hlim = hlim_modes.get(packet.hop_limit, 0b00)
    if hlim == 0b00:
        inline.append(packet.hop_limit)

    # addresses
    sam, src_inline = _compress_unicast(packet.src, src_ll_iid)
    inline += src_inline
    if packet.dst.is_multicast:
        m = 1
        dam, dst_inline = _compress_multicast(packet.dst)
    else:
        m = 0
        dam, dst_inline = _compress_unicast(packet.dst, dst_ll_iid)
    inline += dst_inline

    byte0 = IPHC_DISPATCH | (tf << 3) | (nh << 2) | hlim
    byte1 = (0 << 7) | (0 << 6) | (sam << 4) | (m << 3) | (0 << 2) | dam
    out = bytearray([byte0, byte1])
    out += inline

    if udp_nhc:
        out += _compress_udp(packet.payload)
    else:
        out += packet.payload
    return bytes(out)


def _compress_udp(udp_bytes: bytes) -> bytes:
    """NHC-UDP: compress the 8-byte UDP header, keep the checksum."""
    sport, dport, _length, checksum = struct.unpack_from(">HHHH", udp_bytes)
    payload = udp_bytes[8:]
    if sport >> 4 == 0xF0B and dport >> 4 == 0xF0B:
        head = bytes([NHC_UDP_PATTERN | 0b11])
        ports = bytes([((sport & 0xF) << 4) | (dport & 0xF)])
    elif dport >> 8 == 0xF0:
        head = bytes([NHC_UDP_PATTERN | 0b01])
        ports = struct.pack(">HB", sport, dport & 0xFF)
    elif sport >> 8 == 0xF0:
        head = bytes([NHC_UDP_PATTERN | 0b10])
        ports = struct.pack(">BH", sport & 0xFF, dport)
    else:
        head = bytes([NHC_UDP_PATTERN | 0b00])
        ports = struct.pack(">HH", sport, dport)
    return head + ports + struct.pack(">H", checksum) + payload


# ---------------------------------------------------------------------------
# decompression
# ---------------------------------------------------------------------------


class _Reader:
    """Byte cursor over the compressed datagram."""

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise IphcError("truncated IPHC datagram")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def rest(self) -> bytes:
        chunk = self.data[self.pos :]
        self.pos = len(self.data)
        return chunk


def _decode_unicast(mode: int, reader: _Reader, ll_iid: Optional[bytes]) -> Ipv6Address:
    if mode == 0b00:
        return Ipv6Address(reader.take(16))
    if mode == 0b01:
        return Ipv6Address(_LINK_LOCAL_PADDED + reader.take(8))
    if mode == 0b10:
        return Ipv6Address(
            _LINK_LOCAL_PADDED + bytes.fromhex("000000fffe00") + reader.take(2)
        )
    if ll_iid is None:
        raise IphcError("elided address but no link-layer IID available")
    return Ipv6Address(_LINK_LOCAL_PADDED + ll_iid)


def _decode_multicast(mode: int, reader: _Reader) -> Ipv6Address:
    if mode == 0b00:
        return Ipv6Address(reader.take(16))
    if mode == 0b01:
        raw = reader.take(6)
        return Ipv6Address(b"\xff" + raw[:1] + b"\x00" * 9 + raw[1:])
    if mode == 0b10:
        raw = reader.take(4)
        return Ipv6Address(b"\xff" + raw[:1] + b"\x00" * 11 + raw[1:])
    return Ipv6Address(bytes.fromhex("ff02") + b"\x00" * 13 + reader.take(1))


def decompress(
    data: bytes,
    src_ll_iid: Optional[bytes] = None,
    dst_ll_iid: Optional[bytes] = None,
) -> Ipv6Packet:
    """Inverse of :func:`compress`.

    :raises IphcError: on malformed or unsupported datagrams.
    """
    if not data:
        raise IphcError("empty datagram")
    if data[0] == UNCOMPRESSED_IPV6_DISPATCH:
        return Ipv6Packet.decode(data[1:])
    if data[0] >> 5 != 0b011:
        raise IphcError(f"not an IPHC datagram (first byte {data[0]:#04x})")

    reader = _Reader(data)
    byte0, byte1 = reader.take(2)
    tf = (byte0 >> 3) & 0b11
    nh = (byte0 >> 2) & 0b1
    hlim = byte0 & 0b11
    cid = (byte1 >> 7) & 0b1
    sac = (byte1 >> 6) & 0b1
    sam = (byte1 >> 4) & 0b11
    m = (byte1 >> 3) & 0b1
    dac = (byte1 >> 2) & 0b1
    dam = byte1 & 0b11
    if cid or sac or dac:
        raise IphcError("context-based compression is not supported")

    traffic_class = 0
    flow_label = 0
    if tf == 0b00:
        raw = reader.take(4)
        traffic_class = raw[0]
        flow_label = ((raw[1] & 0x0F) << 16) | (raw[2] << 8) | raw[3]
    elif tf == 0b01:
        raw = reader.take(3)
        traffic_class = (raw[0] >> 6) << 6
        flow_label = ((raw[0] & 0x0F) << 16) | (raw[1] << 8) | raw[2]
    elif tf == 0b10:
        traffic_class = reader.take(1)[0]

    next_header = PROTO_UDP if nh else reader.take(1)[0]

    hop_limit = {0b01: 1, 0b10: 64, 0b11: 255}.get(hlim)
    if hop_limit is None:
        hop_limit = reader.take(1)[0]

    src = _decode_unicast(sam, reader, src_ll_iid)
    if m:
        dst = _decode_multicast(dam, reader)
    else:
        dst = _decode_unicast(dam, reader, dst_ll_iid)

    if nh:
        payload = _decompress_udp(reader, src, dst)
    else:
        payload = reader.rest()

    return Ipv6Packet(
        src=src,
        dst=dst,
        payload=payload,
        next_header=next_header,
        hop_limit=hop_limit,
        traffic_class=traffic_class,
        flow_label=flow_label,
    )


def _decompress_udp(reader: _Reader, src: Ipv6Address, dst: Ipv6Address) -> bytes:
    """Rebuild the 8-byte UDP header from NHC-UDP."""
    head = reader.take(1)[0]
    if head & 0b1111_1000 != NHC_UDP_PATTERN:
        raise IphcError(f"unsupported NHC header {head:#04x}")
    p = head & 0b11
    c = (head >> 2) & 0b1
    if p == 0b11:
        nibbles = reader.take(1)[0]
        sport = 0xF0B0 | (nibbles >> 4)
        dport = 0xF0B0 | (nibbles & 0x0F)
    elif p == 0b01:
        sport, dlow = struct.unpack(">HB", reader.take(3))
        dport = 0xF000 | dlow
    elif p == 0b10:
        slow, dport = struct.unpack(">BH", reader.take(3))
        sport = 0xF000 | slow
    else:
        sport, dport = struct.unpack(">HH", reader.take(4))
    checksum = 0 if c else struct.unpack(">H", reader.take(2))[0]
    payload = reader.rest()
    length = 8 + len(payload)
    udp = struct.pack(">HHHH", sport, dport, length, checksum) + payload
    if c:
        # checksum was elided: recompute it over the pseudo header
        raw = struct.pack(">HHHH", sport, dport, length, 0) + payload
        checksum = udp_checksum(src, dst, raw)
        udp = struct.pack(">HHHH", sport, dport, length, checksum) + payload
    return udp
