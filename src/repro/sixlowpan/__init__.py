"""IPv6 over BLE adaptation (RFC 7668 + RFC 6282).

IP packets traverse BLE links as 6LoWPAN-compressed datagrams inside L2CAP
SDUs.  Unlike IEEE 802.15.4-based 6LoWPAN there is **no fragmentation
header** -- L2CAP segmentation handles large datagrams (RFC 7668 §3.2) --
so the adaptation layer is exactly: IPHC header compression on the way
down, decompression on the way up.

* :mod:`repro.sixlowpan.ipv6` -- addresses, IPv6/UDP headers, checksums,
* :mod:`repro.sixlowpan.iphc` -- the RFC 6282 IPHC + NHC-UDP codec,
* :mod:`repro.sixlowpan.adapt` -- the RFC 7668 glue used by the netif.
"""

from repro.sixlowpan.ipv6 import Ipv6Address, Ipv6Packet, UdpDatagram
from repro.sixlowpan.iphc import compress, decompress
from repro.sixlowpan.adapt import BleAdaptation

__all__ = [
    "Ipv6Address",
    "Ipv6Packet",
    "UdpDatagram",
    "compress",
    "decompress",
    "BleAdaptation",
]
