"""IPv6 and UDP primitives with byte-exact wire formats.

The experiment traffic is CoAP over UDP over IPv6 (§4.3): a 39-byte CoAP
payload inside a 100-byte IP packet.  Real headers (and a real UDP checksum
over the IPv6 pseudo header) keep that arithmetic honest and give the IPHC
codec something genuine to compress.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional


class Ipv6Address:
    """A 16-byte IPv6 address with the helpers 6LoWPAN needs.

    Nodes in the simulated network derive their interface identifier (IID)
    from their link-layer address the same way RFC 7668 derives it from the
    Bluetooth device address, so IPHC can elide addresses entirely.
    """

    __slots__ = ("packed",)

    LINK_LOCAL_PREFIX = bytes.fromhex("fe80000000000000")
    #: A ULA prefix standing in for the routable prefix the border router
    #: would distribute in a real deployment.
    MESH_PREFIX = bytes.fromhex("fd0012bb00000000")

    def __init__(self, packed: bytes):
        if len(packed) != 16:
            raise ValueError(f"IPv6 address must be 16 bytes, got {len(packed)}")
        self.packed = bytes(packed)

    @classmethod
    def from_string(cls, text: str) -> "Ipv6Address":
        """Parse a (full or ``::``-compressed) textual address."""
        import ipaddress

        return cls(ipaddress.IPv6Address(text).packed)

    @classmethod
    def iid_from_node_id(cls, node_id: int) -> bytes:
        """The 64-bit IID a node derives from its link-layer address."""
        return struct.pack(">Q", 0x0200_0000_0000_0000 | node_id)

    @classmethod
    def link_local(cls, node_id: int) -> "Ipv6Address":
        """fe80::/64 address with the node's derived IID."""
        return cls(cls.LINK_LOCAL_PREFIX + cls.iid_from_node_id(node_id))

    @classmethod
    def mesh_local(cls, node_id: int) -> "Ipv6Address":
        """Routable (mesh-wide) address with the node's derived IID."""
        return cls(cls.MESH_PREFIX + cls.iid_from_node_id(node_id))

    @property
    def iid(self) -> bytes:
        """The 64-bit interface identifier."""
        return self.packed[8:]

    @property
    def prefix(self) -> bytes:
        """The 64-bit prefix."""
        return self.packed[:8]

    @property
    def is_link_local(self) -> bool:
        """Whether the address is in fe80::/64."""
        return self.packed[:8] == self.LINK_LOCAL_PREFIX

    @property
    def is_multicast(self) -> bool:
        """Whether the address is in ff00::/8."""
        return self.packed[0] == 0xFF

    def node_id(self) -> Optional[int]:
        """Recover the node id from a derived IID (None if foreign)."""
        value = struct.unpack(">Q", self.iid)[0]
        if value & 0xFFFF_FFFF_0000_0000 == 0x0200_0000_0000_0000:
            return value & 0xFFFF_FFFF
        return None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Ipv6Address) and self.packed == other.packed

    def __hash__(self) -> int:
        return hash(self.packed)

    def __repr__(self) -> str:
        import ipaddress

        return f"Ipv6Address({ipaddress.IPv6Address(self.packed)})"


#: IANA protocol number for UDP.
PROTO_UDP = 17
#: Default hop limit used by the stack.
DEFAULT_HOP_LIMIT = 64

_IPV6_HEADER = struct.Struct(">IHBB16s16s")
_UDP_HEADER = struct.Struct(">HHHH")


@dataclass
class Ipv6Packet:
    """An IPv6 datagram (fixed header + payload).

    Only the fields the simulation exercises are first-class; traffic class
    and flow label ride along for codec fidelity.
    """

    src: Ipv6Address
    dst: Ipv6Address
    payload: bytes = b""
    next_header: int = PROTO_UDP
    hop_limit: int = DEFAULT_HOP_LIMIT
    traffic_class: int = 0
    flow_label: int = 0

    def encode(self) -> bytes:
        """Serialize to the 40-byte header + payload wire format."""
        if not 0 <= self.hop_limit <= 255:
            raise ValueError(f"hop limit out of range: {self.hop_limit}")
        word0 = (6 << 28) | (self.traffic_class << 20) | self.flow_label
        header = _IPV6_HEADER.pack(
            word0,
            len(self.payload),
            self.next_header,
            self.hop_limit,
            self.src.packed,
            self.dst.packed,
        )
        return header + self.payload

    @classmethod
    def decode(cls, data: bytes) -> "Ipv6Packet":
        """Parse the wire format; raises ValueError on malformed input."""
        if len(data) < _IPV6_HEADER.size:
            raise ValueError("truncated IPv6 header")
        word0, plen, nh, hlim, src, dst = _IPV6_HEADER.unpack_from(data)
        if word0 >> 28 != 6:
            raise ValueError(f"not an IPv6 packet (version {word0 >> 28})")
        payload = data[_IPV6_HEADER.size : _IPV6_HEADER.size + plen]
        if len(payload) != plen:
            raise ValueError("truncated IPv6 payload")
        return cls(
            src=Ipv6Address(src),
            dst=Ipv6Address(dst),
            payload=payload,
            next_header=nh,
            hop_limit=hlim,
            traffic_class=(word0 >> 20) & 0xFF,
            flow_label=word0 & 0xFFFFF,
        )

    @property
    def total_len(self) -> int:
        """On-wire size in bytes."""
        return _IPV6_HEADER.size + len(self.payload)


def _checksum(data: bytes) -> int:
    """RFC 1071 one's-complement sum."""
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f">{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def udp_checksum(src: Ipv6Address, dst: Ipv6Address, udp_bytes: bytes) -> int:
    """UDP checksum over the IPv6 pseudo header (RFC 2460 §8.1)."""
    pseudo = (
        src.packed
        + dst.packed
        + struct.pack(">IHBB", len(udp_bytes), 0, 0, PROTO_UDP)
    )
    value = _checksum(pseudo + udp_bytes)
    return value or 0xFFFF  # 0 is transmitted as all-ones for UDP


@dataclass
class UdpDatagram:
    """A UDP datagram (8-byte header + payload)."""

    src_port: int
    dst_port: int
    payload: bytes = b""
    #: Filled in by :meth:`encode`; kept for decode round-trips.
    checksum: int = field(default=0, compare=False)

    def encode(self, src: Ipv6Address, dst: Ipv6Address) -> bytes:
        """Serialize with a valid checksum for the given address pair."""
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"port out of range: {port}")
        length = _UDP_HEADER.size + len(self.payload)
        raw = _UDP_HEADER.pack(self.src_port, self.dst_port, length, 0) + self.payload
        self.checksum = udp_checksum(src, dst, raw)
        return (
            _UDP_HEADER.pack(self.src_port, self.dst_port, length, self.checksum)
            + self.payload
        )

    @classmethod
    def decode(
        cls,
        data: bytes,
        src: Optional[Ipv6Address] = None,
        dst: Optional[Ipv6Address] = None,
        verify: bool = True,
    ) -> "UdpDatagram":
        """Parse; verifies the checksum when both addresses are supplied."""
        if len(data) < _UDP_HEADER.size:
            raise ValueError("truncated UDP header")
        sport, dport, length, checksum = _UDP_HEADER.unpack_from(data)
        if length < _UDP_HEADER.size or length > len(data):
            raise ValueError("bad UDP length field")
        payload = data[_UDP_HEADER.size : length]
        if verify and src is not None and dst is not None and checksum != 0:
            raw = _UDP_HEADER.pack(sport, dport, length, 0) + payload
            if udp_checksum(src, dst, raw) != checksum:
                raise ValueError("UDP checksum mismatch")
        return cls(sport, dport, payload, checksum)

    @property
    def total_len(self) -> int:
        """On-wire size in bytes."""
        return _UDP_HEADER.size + len(self.payload)
