"""6LoWPAN fragmentation (RFC 4944 §5.3) for the IEEE 802.15.4 path.

The paper keeps IP packets below 128 bytes precisely so that *no*
fragmentation happens on either link layer (§4.3 footnote), because the two
technologies degrade very differently once datagrams outgrow a frame:

* over BLE, L2CAP segments SDUs into K-frames and the link layer
  retransmits each lost segment -- a lost packet costs one retransmission;
* over 802.15.4, 6LoWPAN fragments the datagram and **one lost fragment
  kills the whole datagram** (there is no per-fragment recovery).

This module implements the RFC 4944 wire format -- FRAG1
(``11000`` dispatch, 11-bit datagram size, 16-bit tag) and FRAGN (adding an
8-byte-unit offset) -- plus a reassembler with the RFC's per-(sender, tag)
buffers and a reassembly timeout.  The extension bench
``benchmarks/test_ext_fragmentation.py`` measures the divergence the paper
sidestepped.

Fragmented datagrams are carried uncompressed (the RFC 4944 uncompressed
IPv6 dispatch inside FRAG1): offsets count octets of the full IPv6 form,
which keeps the arithmetic exact without modelling RFC 6282's
compressed-first-fragment offset rules.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.obs.registry import METRICS
from repro.sim.kernel import Simulator
from repro.sim.units import SEC
from repro.trace.tracer import TRACE


def _digest(datagram: bytes) -> str:
    """CRC32 content digest used to pair frag_tx / reassembled records."""
    return f"{zlib.crc32(datagram) & 0xFFFFFFFF:08x}"

#: Dispatch prefixes (first byte, upper bits).
FRAG1_DISPATCH = 0b11000_000
FRAGN_DISPATCH = 0b11100_000

_FRAG1 = struct.Struct(">HH")  # dispatch+size (11 bits), tag
_FRAGN = struct.Struct(">HHB")  # dispatch+size, tag, offset/8

#: Fragment offsets are expressed in 8-octet units.
OFFSET_UNIT = 8
#: RFC 4944 reassembly timeout is 60 s; constrained stacks use far less.
DEFAULT_REASSEMBLY_TIMEOUT_NS = 5 * SEC


class FragmentError(ValueError):
    """Raised on malformed fragment headers."""


def fragment(datagram: bytes, tag: int, max_fragment_payload: int) -> List[bytes]:
    """Split ``datagram`` into FRAG1/FRAGN fragments.

    :param datagram: the full (uncompressed) IPv6 datagram.
    :param tag: the 16-bit datagram tag.
    :param max_fragment_payload: link budget per fragment *including* the
        fragment header.
    :returns: the on-link fragment list (one element if it fits unfragmented
        semantics are not this function's business -- callers decide).
    """
    if len(datagram) > 0x7FF:
        raise FragmentError("datagram exceeds the 11-bit size field (2047)")
    if max_fragment_payload <= _FRAGN.size + OFFSET_UNIT:
        raise FragmentError("fragment budget too small to make progress")
    tag &= 0xFFFF
    size_field = len(datagram) & 0x7FF

    fragments: List[bytes] = []
    # FRAG1: no offset field; payload must be a multiple of 8 so FRAGN
    # offsets stay aligned
    first_budget = (max_fragment_payload - _FRAG1.size) // OFFSET_UNIT * OFFSET_UNIT
    head = datagram[:first_budget]
    fragments.append(
        _FRAG1.pack((FRAG1_DISPATCH << 8) | size_field, tag) + head
    )
    offset = len(head)
    while offset < len(datagram):
        budget = (max_fragment_payload - _FRAGN.size) // OFFSET_UNIT * OFFSET_UNIT
        chunk = datagram[offset : offset + budget]
        is_last = offset + len(chunk) >= len(datagram)
        if not is_last:
            chunk = chunk[: len(chunk) // OFFSET_UNIT * OFFSET_UNIT]
        fragments.append(
            _FRAGN.pack(
                (FRAGN_DISPATCH << 8) | size_field, tag, offset // OFFSET_UNIT
            )
            + chunk
        )
        offset += len(chunk)
    if TRACE.enabled:
        TRACE.emit(
            None, "sixlo", "frag_tx",
            tag=tag, size=len(datagram), n_frags=len(fragments),
            digest=_digest(datagram),
        )
    if METRICS.enabled:
        METRICS.inc("sixlo", "sixlo.datagrams_fragmented")
        METRICS.inc("sixlo", "sixlo.fragments_tx", len(fragments))
    return fragments


def is_fragment(data: bytes) -> bool:
    """Whether ``data`` starts with a FRAG1/FRAGN dispatch."""
    return bool(data) and (data[0] & 0b11000_000) == FRAG1_DISPATCH and (
        (data[0] & 0b11111_000) in (FRAG1_DISPATCH, FRAGN_DISPATCH)
    )


def parse_fragment(data: bytes) -> Tuple[int, int, int, bytes]:
    """(datagram_size, tag, offset_bytes, payload) of one fragment."""
    if len(data) < _FRAG1.size:
        raise FragmentError("truncated fragment header")
    first, tag = _FRAG1.unpack_from(data)
    dispatch = (first >> 8) & 0b11111_000
    size = first & 0x7FF
    if dispatch == FRAG1_DISPATCH:
        return size, tag, 0, data[_FRAG1.size :]
    if dispatch == FRAGN_DISPATCH:
        if len(data) < _FRAGN.size:
            raise FragmentError("truncated FRAGN header")
        _, _, offset_units = _FRAGN.unpack_from(data)
        return size, tag, offset_units * OFFSET_UNIT, data[_FRAGN.size :]
    raise FragmentError(f"not a fragment dispatch: {data[0]:#04x}")


@dataclass
class _Buffer:
    """One in-progress reassembly."""

    size: int
    received: Dict[int, bytes] = field(default_factory=dict)
    deadline_ns: int = 0

    def complete(self) -> bool:
        total = sum(len(chunk) for chunk in self.received.values())
        return total >= self.size

    def assemble(self) -> bytes:
        out = bytearray(self.size)
        for offset, chunk in self.received.items():
            out[offset : offset + len(chunk)] = chunk
        return bytes(out)


class Reassembler:
    """Per-(sender, tag) fragment reassembly with timeout.

    :param sim: simulation kernel (drives the timeout sweep).
    :param timeout_ns: discard incomplete buffers after this long.
    :param on_datagram: ``on_datagram(datagram, sender)`` for completions.
    """

    def __init__(
        self,
        sim: Simulator,
        on_datagram: Callable[[bytes, int], None],
        timeout_ns: int = DEFAULT_REASSEMBLY_TIMEOUT_NS,
    ) -> None:
        self.sim = sim
        self.on_datagram = on_datagram
        self.timeout_ns = timeout_ns
        self._buffers: Dict[Tuple[int, int], _Buffer] = {}
        # Statistics.
        self.datagrams_reassembled = 0
        self.fragments_received = 0
        self.timeouts = 0
        self.parse_errors = 0

    def accept(self, data: bytes, sender: int) -> None:
        """Feed one received fragment from ``sender``."""
        try:
            size, tag, offset, payload = parse_fragment(data)
        except FragmentError:
            self.parse_errors += 1
            return
        self.fragments_received += 1
        if METRICS.enabled:
            METRICS.inc("sixlo", "sixlo.fragments_rx")
        if TRACE.enabled:
            TRACE.emit(
                self.sim.now, "sixlo", "frag_rx",
                sender=sender, tag=tag, offset=offset, len=len(payload),
            )
        key = (sender, tag)
        buffer = self._buffers.get(key)
        if buffer is None or buffer.size != size:
            buffer = _Buffer(size=size, deadline_ns=self.sim.now + self.timeout_ns)
            self._buffers[key] = buffer
            self.sim.after(self.timeout_ns + 1, self._sweep, key)
        buffer.received[offset] = payload
        if buffer.complete():
            del self._buffers[key]
            self.datagrams_reassembled += 1
            if METRICS.enabled:
                METRICS.inc("sixlo", "sixlo.reassembled")
            datagram = buffer.assemble()
            if TRACE.enabled:
                TRACE.emit(
                    self.sim.now, "sixlo", "reassembled",
                    sender=sender, tag=tag, size=len(datagram),
                    digest=_digest(datagram),
                )
            self.on_datagram(datagram, sender)

    def pending(self) -> int:
        """Number of in-progress reassemblies."""
        return len(self._buffers)

    def _sweep(self, key: Tuple[int, int]) -> None:
        buffer = self._buffers.get(key)
        if buffer is not None and self.sim.now >= buffer.deadline_ns:
            del self._buffers[key]
            self.timeouts += 1
            if METRICS.enabled:
                METRICS.inc("sixlo", "sixlo.reasm_timeouts")
            if TRACE.enabled:
                TRACE.emit(
                    self.sim.now, "sixlo", "reasm_timeout",
                    sender=key[0], tag=key[1],
                )
