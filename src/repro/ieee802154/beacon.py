"""Beacon-enabled 802.15.4 PANs: shading beyond BLE (paper §7/§8).

The paper generalizes its finding: "connection shading is not unique to BLE
and can be observed in other time-slotted networks" (§8), citing Feeney &
Fodor's study of co-located *beacon-enabled* IEEE 802.15.4 PANs whose
superframes drift into each other (§7 [16]).

This module models exactly that scenario with the repository's pieces: a
:class:`BeaconedPan` is a coordinator that broadcasts beacons on its own
drifting clock and a device that answers with a data burst inside the
superframe's active period.  Two co-located PANs on one channel have
active periods that slide against each other at the relative clock drift;
while they overlap, their transmissions collide -- the same beat-frequency
"temporal disconnections" the BLE connections suffer, on a completely
different MAC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.ieee802154.medium154 import CsmaMedium
from repro.phy.frames import ieee802154_air_time_ns
from repro.sim.clock import DriftingClock
from repro.sim.kernel import Simulator
from repro.sim.units import USEC

#: Beacon frame PSDU: header 11 + superframe spec etc.
BEACON_PSDU = 15
#: A device's data frame PSDU in the burst.
DATA_PSDU = 60
#: Gap between burst frames (LIFS-ish).
FRAME_GAP_NS = 640 * USEC


@dataclass
class PanStats:
    """Delivery accounting for one PAN."""

    beacons_sent: int = 0
    beacons_received: int = 0
    frames_sent: int = 0
    frames_delivered: int = 0

    def beacon_pdr(self) -> float:
        """Beacons heard / sent (misses == the Feeney 'disconnections')."""
        if not self.beacons_sent:
            return 1.0
        return self.beacons_received / self.beacons_sent

    def frame_pdr(self) -> float:
        """Burst frames delivered / sent."""
        if not self.frames_sent:
            return 1.0
        return self.frames_delivered / self.frames_sent


class BeaconedPan:
    """One coordinator + one device, beaconing on a drifting clock.

    :param sim: simulation kernel.
    :param medium: the shared (collision-capable) channel.
    :param clock: the coordinator's drifting clock -- beacons are spaced
        ``beacon_interval_ns`` apart *on this clock*, exactly like BLE
        anchors on the coordinator's sleep clock.
    :param beacon_interval_ns: the beacon interval (the paper's connection
        interval analogue).
    :param burst_frames: data frames the device sends per superframe.
    :param channel: the shared channel (co-located PANs collide on it).
    :param offset_ns: first-beacon time (the initial phase).
    """

    def __init__(
        self,
        sim: Simulator,
        medium: CsmaMedium,
        clock: DriftingClock,
        beacon_interval_ns: int,
        burst_frames: int = 4,
        channel: int = 17,
        offset_ns: int = 0,
    ) -> None:
        self.sim = sim
        self.medium = medium
        self.clock = clock
        self.beacon_interval_ns = beacon_interval_ns
        self.burst_frames = burst_frames
        self.channel = channel
        self.stats = PanStats()
        #: (time_s, beacon_ok) samples for time-series analysis.
        self.beacon_log: List[tuple] = []
        self._running = False
        self._anchor_true = offset_ns

    def start(self) -> None:
        """Begin beaconing."""
        self._running = True
        self.sim.at(self._anchor_true, self._superframe)

    def stop(self) -> None:
        """Stop at the next superframe boundary."""
        self._running = False

    def active_period_ns(self) -> int:
        """Length of one superframe's active transmissions."""
        beacon = ieee802154_air_time_ns(BEACON_PSDU)
        frame = ieee802154_air_time_ns(DATA_PSDU)
        return beacon + self.burst_frames * (FRAME_GAP_NS + frame)

    def _superframe(self) -> None:
        if not self._running:
            return
        self.stats.beacons_sent += 1
        self.medium.transmit(
            sender=self,
            channel=self.channel,
            nbytes=BEACON_PSDU,
            duration_ns=ieee802154_air_time_ns(BEACON_PSDU),
            on_delivered=self._beacon_done,
        )
        # next beacon: one interval later on the coordinator's *own* clock
        self._anchor_true += self.clock.local_duration_to_true(
            self.beacon_interval_ns
        )
        self.sim.at(self._anchor_true, self._superframe)

    def _beacon_done(self, ok: bool) -> None:
        self.beacon_log.append((self.sim.now, ok))
        if not ok:
            # the device missed the beacon: no burst this superframe --
            # Feeney's "temporal disconnection"
            return
        self.stats.beacons_received += 1
        self._send_burst(self.burst_frames)

    def _send_burst(self, remaining: int) -> None:
        if remaining == 0 or not self._running:
            return
        self.stats.frames_sent += 1

        def done(ok: bool) -> None:
            if ok:
                self.stats.frames_delivered += 1
            self.sim.after(FRAME_GAP_NS, self._send_burst, remaining - 1)

        self.medium.transmit(
            sender=self,
            channel=self.channel,
            nbytes=DATA_PSDU,
            duration_ns=ieee802154_air_time_ns(DATA_PSDU),
            on_delivered=done,
        )
