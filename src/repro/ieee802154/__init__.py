"""IEEE 802.15.4 comparison link layer (paper §5.3).

The paper contrasts multi-hop BLE with 802.15.4 on m3 nodes running the same
CoAP benchmark.  The protocol differences that drive the results:

* **CSMA/CA** media access instead of time-sliced channel hopping -- small
  backoff delays instead of interval-quantized latencies;
* **250 kbit/s** instead of 1 Mbit/s;
* frames are **dropped after macMaxFrameRetries** failed attempts, whereas
  BLE retransmits until the supervision timeout -- hence 802.15.4 loses
  packets under contention while BLE converts loss into delay.

* :mod:`repro.ieee802154.medium154` -- an active medium with carrier sense
  and collision corruption,
* :mod:`repro.ieee802154.mac` -- the unslotted CSMA/CA state machine with
  acknowledgements and retries,
* :mod:`repro.ieee802154.netif154` -- the 6LoWPAN interface glue,
* :mod:`repro.ieee802154.network154` -- fleet builder mirroring
  :class:`repro.testbed.topology.BleNetwork` so the identical workload runs
  on both link layers.
"""

from repro.ieee802154.medium154 import CsmaMedium
from repro.ieee802154.mac import Mac154, MacConfig, Frame154
from repro.ieee802154.netif154 import Netif154
from repro.ieee802154.network154 import CsmaNetwork, Node154

__all__ = [
    "CsmaMedium",
    "Mac154",
    "MacConfig",
    "Frame154",
    "Netif154",
    "CsmaNetwork",
    "Node154",
]
