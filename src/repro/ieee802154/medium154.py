"""Active 802.15.4 medium: carrier sense, collisions, loss.

Unlike the BLE plane (whose composite connection events only need loss
*sampling*), CSMA/CA needs a live view of the channel: clear channel
assessment reads the set of in-flight transmissions, and two overlapping
transmissions on one channel corrupt each other (all nodes are in mutual
range in the paper's single-room deployment, so there are no hidden
terminals and no capture effect is modelled).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.obs.registry import METRICS
from repro.phy.medium import InterferenceModel
from repro.sim.kernel import Simulator


@dataclass
class _AirFrame:
    """One in-flight transmission."""

    channel: int
    start_ns: int
    end_ns: int
    nbytes: int
    sender: object
    on_delivered: Callable[[bool], None]
    corrupted: bool = False


class CsmaMedium:
    """The shared channel for all 802.15.4 nodes of an experiment.

    :param sim: simulation kernel.
    :param rng: loss sampling stream.
    :param interference: PER configuration shared with the BLE medium model.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: random.Random,
        interference: Optional[InterferenceModel] = None,
    ) -> None:
        self.sim = sim
        self.rng = rng
        self.interference = interference or InterferenceModel()
        self._active: List[_AirFrame] = []
        #: Total frames that suffered a collision (diagnostics).
        self.collisions = 0
        #: Total frames transmitted.
        self.frames_sent = 0

    def channel_busy(self, channel: int) -> bool:
        """Clear channel assessment: any energy on ``channel`` right now?"""
        now = self.sim.now
        return any(
            f.channel == channel and f.start_ns <= now < f.end_ns
            for f in self._active
        )

    def transmit(
        self,
        sender: object,
        channel: int,
        nbytes: int,
        duration_ns: int,
        on_delivered: Callable[[bool], None],
    ) -> None:
        """Put a frame on the air.

        ``on_delivered(ok)`` fires at the end of the transmission with
        ``ok = False`` when the frame collided or was corrupted by noise.
        Delivery fan-out to receivers is the caller's job (the MAC layer
        knows who should listen); the medium only decides survival.
        """
        now = self.sim.now
        frame = _AirFrame(
            channel=channel,
            start_ns=now,
            end_ns=now + duration_ns,
            nbytes=nbytes,
            sender=sender,
            on_delivered=on_delivered,
        )
        self.frames_sent += 1
        if METRICS.enabled:
            METRICS.inc("phy", "phy.frames_sent")
            METRICS.inc("phy", "phy.airtime_ns", duration_ns)
        # collision: any concurrent same-channel transmission corrupts both
        for other in self._active:
            if other.channel == channel and other.end_ns > now:
                if not other.corrupted:
                    other.corrupted = True
                    self.collisions += 1
                    if METRICS.enabled:
                        METRICS.inc("phy", "phy.collisions")
                if not frame.corrupted:
                    frame.corrupted = True
                    self.collisions += 1
                    if METRICS.enabled:
                        METRICS.inc("phy", "phy.collisions")
        self._active.append(frame)
        self.sim.at(frame.end_ns, self._finish, frame)

    def _finish(self, frame: _AirFrame) -> None:
        self._active.remove(frame)
        ok = not frame.corrupted
        if ok:
            per = self.interference.packet_error_rate(
                frame.channel, frame.nbytes, self.sim.now
            )
            if per > 0 and self.rng.random() < per:
                ok = False
        frame.on_delivered(ok)
