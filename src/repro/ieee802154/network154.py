"""802.15.4 fleet construction mirroring :class:`BleNetwork`.

Thanks to the stack's abstraction layers (the same argument the paper makes
in §5.3), the identical CoAP producer/consumer workload runs over either
link layer: a :class:`Node154` exposes the same ``ip`` / ``udp`` /
``mesh_local`` surface as :class:`repro.core.node.Node`, and
:class:`CsmaNetwork` accepts the same edge lists and installs the same
static routes.

802.15.4 needs no statconn: there are no connections, only neighbour
entries, which are installed directly from the configured edges.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Tuple

from repro.ieee802154.mac import Mac154, MacConfig
from repro.ieee802154.medium154 import CsmaMedium
from repro.ieee802154.netif154 import Netif154
from repro.net.ip import Ipv6Stack
from repro.net.pktbuf import PacketBuffer
from repro.net.udp import UdpStack
from repro.phy.medium import InterferenceModel
from repro.sim import RngRegistry, Simulator
from repro.sixlowpan.ipv6 import Ipv6Address


class Node154:
    """One IPv6-over-802.15.4 node (the m3 equivalent)."""

    def __init__(
        self,
        sim: Simulator,
        medium: CsmaMedium,
        node_id: int,
        rng: random.Random,
        mac_config: Optional[MacConfig] = None,
        pktbuf_capacity: int = 6144,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.mac = Mac154(sim, medium, node_id, rng, mac_config)
        self.pktbuf = PacketBuffer(pktbuf_capacity, name=f"m3-{node_id}.pktbuf")
        self.netif = Netif154(self.mac, self.pktbuf)
        self.ip = Ipv6Stack(node_id)
        self.ip.add_netif(self.netif)
        self.udp = UdpStack(self.ip)

    @property
    def mesh_local(self) -> Ipv6Address:
        """This node's routable mesh address."""
        return self.ip.mesh_local

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node154 {self.node_id}>"


class CsmaNetwork:
    """A simulator + CSMA medium + full-stack 802.15.4 nodes."""

    def __init__(
        self,
        n_nodes: int,
        seed: int = 1,
        mac_config_factory=None,
        interference: Optional[InterferenceModel] = None,
        pktbuf_capacity: int = 6144,
    ) -> None:
        self.sim = Simulator()
        self.rngs = RngRegistry(seed)
        self.medium = CsmaMedium(
            self.sim, self.rngs.stream("medium154"), interference
        )
        self.nodes: List[Node154] = []
        for node_id in range(n_nodes):
            mac_config = (
                mac_config_factory(node_id) if mac_config_factory else MacConfig()
            )
            self.nodes.append(
                Node154(
                    self.sim,
                    self.medium,
                    node_id,
                    rng=self.rngs.stream(f"m3-{node_id}"),
                    mac_config=mac_config,
                    pktbuf_capacity=pktbuf_capacity,
                )
            )
        self._parent_of: Dict[int, int] = {}

    def apply_edges(self, edges: Iterable[Tuple[int, int]]) -> None:
        """Install neighbour entries and static routes for the edge list.

        No connections exist on 802.15.4; both edge endpoints immediately
        become each other's neighbours.
        """
        edges = list(edges)
        for parent, child in edges:
            self._parent_of[child] = parent
            self.nodes[parent].ip.neighbor_up(child, self.nodes[parent].netif)
            self.nodes[child].ip.neighbor_up(parent, self.nodes[child].netif)
        children: Dict[int, List[int]] = {}
        for parent, child in edges:
            children.setdefault(parent, []).append(child)

        def subtree(node_id: int) -> List[int]:
            collected = []
            stack = list(children.get(node_id, []))
            while stack:
                n = stack.pop()
                collected.append(n)
                stack.extend(children.get(n, []))
            return collected

        for node in self.nodes:
            parent = self._parent_of.get(node.node_id)
            if parent is not None:
                node.ip.fib.set_default_route(Ipv6Address.mesh_local(parent))
            for child in children.get(node.node_id, []):
                child_addr = Ipv6Address.mesh_local(child)
                for descendant in subtree(child):
                    node.ip.fib.add_host_route(
                        Ipv6Address.mesh_local(descendant), child_addr
                    )

    def run(self, until_ns: int) -> None:
        """Advance the simulation to ``until_ns``."""
        self.sim.run(until=until_ns)
