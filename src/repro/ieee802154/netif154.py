"""6LoWPAN interface over the 802.15.4 MAC.

The same IPHC adaptation as the BLE netif for frame-sized datagrams; larger
datagrams take the RFC 4944 fragmentation path (FRAG1/FRAGN + reassembly)
that the paper's workload deliberately avoids (§4.3 footnote) -- and whose
fragility under loss `benchmarks/test_ext_fragmentation.py` measures.

Packet-buffer accounting mirrors the BLE path: bytes are held from ``send``
until the MAC reports each frame acknowledged or dropped.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.ieee802154.mac import Frame154, Mac154
from repro.net.pktbuf import PacketBuffer
from repro.phy.frames import IEEE802154_MAX_PSDU
from repro.sixlowpan import frag
from repro.sixlowpan.adapt import BleAdaptation
from repro.sixlowpan.iphc import UNCOMPRESSED_IPV6_DISPATCH
from repro.sixlowpan.ipv6 import Ipv6Packet
from repro.spans.hub import SPANS

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.ip import Ipv6Stack

#: MAC header + FCS overhead around the 6LoWPAN payload.
MAC_OVERHEAD = 11
#: Largest 6LoWPAN payload per frame.
FRAME_BUDGET = IEEE802154_MAX_PSDU - MAC_OVERHEAD


class Netif154:
    """IPv6-over-802.15.4 interface for one node."""

    def __init__(self, mac: Mac154, pktbuf: PacketBuffer) -> None:
        self.mac = mac
        self.pktbuf = pktbuf
        self.adaptation = BleAdaptation()  # IPHC is identical over 802.15.4
        self.ip: Optional["Ipv6Stack"] = None
        self.reassembler = frag.Reassembler(mac.sim, self._on_reassembled)
        self._next_tag = mac.rng.randrange(0, 0x10000)
        self.tx_packets = 0
        self.tx_fragmented_datagrams = 0
        self.rx_packets = 0
        self.drops_pktbuf = 0
        self.drops_mac = 0
        self.drops_too_big = 0
        self.rx_decode_errors = 0
        mac.on_frame = self._on_frame
        mac.on_tx_done = self._on_tx_done

    @property
    def ll_addr(self) -> int:
        """This interface's short address."""
        return self.mac.addr

    def send(self, packet: Ipv6Packet, next_hop_ll: int) -> bool:
        """Compress (or fragment) and queue one packet to ``next_hop_ll``."""
        wire = self.adaptation.to_link(
            packet,
            BleAdaptation.iid_for_node(self.ll_addr),
            BleAdaptation.iid_for_node(next_hop_ll),
        )
        if len(wire) <= FRAME_BUDGET:
            if not self.pktbuf.try_alloc(len(wire)):
                self.drops_pktbuf += 1
                if SPANS.enabled:
                    SPANS.drop("pktbuf")
                return False
            if SPANS.enabled:
                # Coarse single-phase hop: the datagram bytes key it, and
                # the receiver reconstructs the same key on delivery.
                SPANS.hop_open_coarse(
                    ("154", self.ll_addr, next_hop_ll, wire),
                    f"node{self.ll_addr}", f"node{next_hop_ll}",
                )
            self.mac.send(next_hop_ll, wire, tag=len(wire))
            self.tx_packets += 1
            return True
        return self._send_fragmented(packet, next_hop_ll)

    def _send_fragmented(self, packet: Ipv6Packet, next_hop_ll: int) -> bool:
        """RFC 4944 path: carry the datagram uncompressed in fragments."""
        raw = bytes([UNCOMPRESSED_IPV6_DISPATCH]) + packet.encode()
        if len(raw) > 0x7FF or len(raw) > 1281:
            self.drops_too_big += 1
            return False
        tag = self._next_tag
        self._next_tag = (self._next_tag + 1) & 0xFFFF
        fragments = frag.fragment(raw, tag, FRAME_BUDGET)
        total = sum(len(f) for f in fragments)
        if not self.pktbuf.try_alloc(total):
            self.drops_pktbuf += 1
            if SPANS.enabled:
                SPANS.drop("pktbuf")
            return False
        if SPANS.enabled:
            # Keyed by the pre-fragmentation datagram: the reassembler
            # hands the identical bytes back on the far side.
            SPANS.hop_open_coarse(
                ("154", self.ll_addr, next_hop_ll, raw),
                f"node{self.ll_addr}", f"node{next_hop_ll}",
            )
        for piece in fragments:
            self.mac.send(next_hop_ll, piece, tag=len(piece))
        self.tx_packets += 1
        self.tx_fragmented_datagrams += 1
        return True

    def _on_tx_done(self, frame: Frame154, ok: bool) -> None:
        if isinstance(frame.tag, int):
            self.pktbuf.free(frame.tag)
        if not ok:
            self.drops_mac += 1
            if SPANS.enabled:
                # Only matches unfragmented datagrams (a fragment's bytes
                # are not the datagram key); lost fragments flush at the
                # end of the run instead.
                SPANS.hop_lost_coarse(
                    ("154", frame.src, frame.dst, frame.payload)
                )

    def _on_frame(self, frame: Frame154) -> None:
        if frag.is_fragment(frame.payload):
            self.reassembler.accept(frame.payload, frame.src)
            return
        self._deliver(frame.payload, frame.src)

    def _on_reassembled(self, datagram: bytes, sender: int) -> None:
        self._deliver(datagram, sender)

    def _deliver(self, wire: bytes, sender_ll: int) -> None:
        if SPANS.enabled:
            key = ("154", sender_ll, self.ll_addr, wire)
            span_prev = SPANS.rx_enter_coarse(key)
            try:
                SPANS.hop_delivered_coarse(key)
                self._deliver_inner(wire, sender_ll)
            finally:
                SPANS.ctx_restore(span_prev)
        else:
            self._deliver_inner(wire, sender_ll)

    def _deliver_inner(self, wire: bytes, sender_ll: int) -> None:
        try:
            packet = self.adaptation.from_link(
                wire,
                BleAdaptation.iid_for_node(sender_ll),
                BleAdaptation.iid_for_node(self.ll_addr),
            )
        except ValueError:
            self.rx_decode_errors += 1
            if SPANS.enabled:
                SPANS.drop("decode")
            return
        self.rx_packets += 1
        if self.ip is not None:
            self.ip.receive(packet, self)
