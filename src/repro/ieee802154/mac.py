"""Unslotted CSMA/CA MAC (IEEE 802.15.4-2006 §7.5.1.4).

For every frame: draw a random backoff of ``0..2^BE - 1`` unit backoff
periods (320 us at 2.4 GHz), perform a CCA, and transmit if the channel is
clear; on a busy channel, widen the exponent (up to macMaxBE) and try again
up to macMaxCSMABackoffs times.  Transmitted data frames await an immediate
acknowledgement; a missing ACK burns one of macMaxFrameRetries, and the
frame is **dropped** when retries run out -- the behaviour that caps
802.15.4's delivery rate under contention in the paper's comparison (§5.3)
while keeping its delays small.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional

from repro.ieee802154.medium154 import CsmaMedium
from repro.phy.frames import ieee802154_air_time_ns
from repro.sim.kernel import Simulator
from repro.sim.units import USEC

#: One unit backoff period: 20 symbols x 16 us.
UNIT_BACKOFF_NS = 320 * USEC
#: CCA duration: 8 symbols.
CCA_NS = 128 * USEC
#: RX/TX turnaround: 12 symbols.
TURNAROUND_NS = 192 * USEC
#: How long a transmitter waits for the immediate ACK (54 symbols).
ACK_WAIT_NS = 864 * USEC
#: Immediate-ACK PSDU: FCF 2 + seq 1 + FCS 2.
ACK_PSDU_LEN = 5
#: MHR overhead of a data frame with short addressing: FCF 2 + seq 1 +
#: PAN id 2 + dst 2 + src 2, plus the 2-byte FCS.
DATA_FRAME_OVERHEAD = 11


@dataclass
class MacConfig:
    """The standard's default CSMA/CA parameters (used by the paper's m3s)."""

    min_be: int = 3
    max_be: int = 5
    max_csma_backoffs: int = 4
    max_frame_retries: int = 3
    channel: int = 17


@dataclass
class Frame154:
    """One MAC data frame."""

    src: int
    dst: int
    payload: bytes
    seq: int = 0
    #: Opaque upper-layer cookie returned in the completion callback.
    tag: Optional[object] = None

    @property
    def psdu_len(self) -> int:
        """MAC frame length including headers and FCS."""
        return DATA_FRAME_OVERHEAD + len(self.payload)


class Mac154:
    """One node's CSMA/CA MAC entity.

    :param sim: simulation kernel.
    :param medium: the shared channel.
    :param addr: 16-bit short address.
    :param rng: backoff stream.
    :param config: CSMA parameters.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: CsmaMedium,
        addr: int,
        rng: random.Random,
        config: Optional[MacConfig] = None,
    ) -> None:
        self.sim = sim
        self.medium = medium
        self.addr = addr
        self.rng = rng
        self.config = config or MacConfig()
        medium_peers = getattr(medium, "_macs", None)
        if medium_peers is None:
            medium_peers = {}
            medium._macs = medium_peers
        medium_peers[addr] = self
        self._queue: Deque[Frame154] = deque()
        self._busy = False  # a frame is progressing through CSMA/TX/ACK
        self._transmitting = False  # radio actively emitting
        self._seq = rng.randrange(0, 256)
        self._rx_dedupe: Dict[int, int] = {}  # src -> last seq delivered
        #: Upper-layer delivery hook: ``on_frame(frame)``.
        self.on_frame: Optional[Callable[[Frame154], None]] = None
        #: Completion hook: ``on_tx_done(frame, ok)`` -- ok=False means the
        #: frame was dropped (retries or channel access exhausted).
        self.on_tx_done: Optional[Callable[[Frame154, bool], None]] = None
        # Statistics.
        self.tx_ok = 0
        self.tx_dropped_retries = 0
        self.tx_dropped_channel_access = 0
        self.tx_attempts = 0
        self.rx_frames = 0
        self.rx_dupes = 0
        self.acks_sent = 0

    # -- transmit path ---------------------------------------------------------

    def send(self, dst: int, payload: bytes, tag: Optional[object] = None) -> Frame154:
        """Queue one frame for transmission."""
        self._seq = (self._seq + 1) & 0xFF
        frame = Frame154(src=self.addr, dst=dst, payload=payload, seq=self._seq, tag=tag)
        self._queue.append(frame)
        if not self._busy:
            self._start_next()
        return frame

    @property
    def queue_depth(self) -> int:
        """Frames waiting (including the one in progress)."""
        return len(self._queue)

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        self._csma_attempt(self._queue[0], nb=0, be=self.config.min_be, retries=0)

    def _csma_attempt(self, frame: Frame154, nb: int, be: int, retries: int) -> None:
        backoff = self.rng.randrange(0, 1 << be) * UNIT_BACKOFF_NS
        self.sim.after(backoff + CCA_NS, self._after_cca, frame, nb, be, retries)

    def _after_cca(self, frame: Frame154, nb: int, be: int, retries: int) -> None:
        if self.medium.channel_busy(self.config.channel):
            nb += 1
            if nb > self.config.max_csma_backoffs:
                self._complete(frame, ok=False, reason="channel-access")
                return
            self._csma_attempt(frame, nb, min(be + 1, self.config.max_be), retries)
            return
        self.sim.after(TURNAROUND_NS, self._transmit, frame, retries)

    def _transmit(self, frame: Frame154, retries: int) -> None:
        self.tx_attempts += 1
        self._transmitting = True
        duration = ieee802154_air_time_ns(frame.psdu_len)
        self.medium.transmit(
            sender=self,
            channel=self.config.channel,
            nbytes=frame.psdu_len,
            duration_ns=duration,
            on_delivered=lambda ok: self._tx_finished(frame, retries, ok),
        )

    def _tx_finished(self, frame: Frame154, retries: int, ok: bool) -> None:
        self._transmitting = False
        delivered = False
        if ok:
            receiver = self.medium._macs.get(frame.dst)
            if receiver is not None and not receiver._transmitting:
                delivered = receiver._deliver(frame)
        if delivered:
            # the receiver sends an immediate ACK after the turnaround; model
            # the ACK as a short frame that may itself collide
            self.sim.after(
                TURNAROUND_NS,
                self._await_ack,
                frame,
                retries,
            )
        else:
            self.sim.after(ACK_WAIT_NS, self._ack_missing, frame, retries)

    def _await_ack(self, frame: Frame154, retries: int) -> None:
        receiver = self.medium._macs[frame.dst]
        receiver.acks_sent += 1
        duration = ieee802154_air_time_ns(ACK_PSDU_LEN)
        receiver._transmitting = True

        def ack_done(ok: bool, rcv=receiver) -> None:
            rcv._transmitting = False
            if ok:
                self._complete(frame, ok=True, reason="acked")
            else:
                self._ack_missing(frame, retries)

        self.medium.transmit(
            sender=receiver,
            channel=self.config.channel,
            nbytes=ACK_PSDU_LEN,
            duration_ns=duration,
            on_delivered=ack_done,
        )

    def _ack_missing(self, frame: Frame154, retries: int) -> None:
        if retries >= self.config.max_frame_retries:
            self._complete(frame, ok=False, reason="retries")
            return
        self._csma_attempt(frame, nb=0, be=self.config.min_be, retries=retries + 1)

    def _complete(self, frame: Frame154, ok: bool, reason: str) -> None:
        if self._queue and self._queue[0] is frame:
            self._queue.popleft()
        if ok:
            self.tx_ok += 1
        elif reason == "retries":
            self.tx_dropped_retries += 1
        else:
            self.tx_dropped_channel_access += 1
        if self.on_tx_done is not None:
            self.on_tx_done(frame, ok)
        self._start_next()

    # -- receive path ------------------------------------------------------------

    def _deliver(self, frame: Frame154) -> bool:
        """Accept a frame addressed to us; returns False never (dedupe only
        suppresses the upper-layer delivery, the ACK still goes out)."""
        last = self._rx_dedupe.get(frame.src)
        if last == frame.seq:
            self.rx_dupes += 1
            return True
        self._rx_dedupe[frame.src] = frame.seq
        self.rx_frames += 1
        if self.on_frame is not None:
            self.on_frame(frame)
        return True
