"""Discrete-event simulation substrate.

This package provides the timing foundation for every other subsystem in
:mod:`repro`:

* :mod:`repro.sim.kernel` -- a deterministic event loop operating on integer
  nanoseconds of *true* (global) time,
* :mod:`repro.sim.clock` -- per-node drifting clocks that map local time onto
  true time (the root cause of the paper's *connection shading*),
* :mod:`repro.sim.rng` -- named, seed-derived random streams so that every
  experiment is reproducible from a single integer seed,
* :mod:`repro.sim.units` -- time unit constants and helpers.
"""

from repro.sim.kernel import Simulator, Timer
from repro.sim.clock import DriftingClock
from repro.sim.rng import RngRegistry, subseed
from repro.sim.units import (
    NSEC,
    USEC,
    MSEC,
    SEC,
    ns_to_s,
    s_to_ns,
    ms_to_ns,
    us_to_ns,
)

__all__ = [
    "Simulator",
    "Timer",
    "DriftingClock",
    "RngRegistry",
    "subseed",
    "NSEC",
    "USEC",
    "MSEC",
    "SEC",
    "ns_to_s",
    "s_to_ns",
    "ms_to_ns",
    "us_to_ns",
]
