"""Time units.

All simulator timestamps and durations are **integer nanoseconds** of true
(global) time.  BLE timing constants are exact in this base: the inter frame
spacing T_IFS is 150 us = 150_000 ns, the connection interval quantum is
1.25 ms = 1_250_000 ns, and one byte at the 1 Mbit/s PHY takes 8 us =
8_000 ns on air.
"""

from __future__ import annotations

#: One nanosecond (the base unit).
NSEC: int = 1
#: One microsecond in nanoseconds.
USEC: int = 1_000
#: One millisecond in nanoseconds.
MSEC: int = 1_000_000
#: One second in nanoseconds.
SEC: int = 1_000_000_000


def ns_to_s(t_ns: int) -> float:
    """Convert integer nanoseconds to float seconds."""
    return t_ns / SEC


def ns_to_ms(t_ns: int) -> float:
    """Convert integer nanoseconds to float milliseconds."""
    return t_ns / MSEC


def ns_to_us(t_ns: int) -> float:
    """Convert integer nanoseconds to float microseconds."""
    return t_ns / USEC


def s_to_ns(t_s: float) -> int:
    """Convert seconds to integer nanoseconds (rounded)."""
    return round(t_s * SEC)


def ms_to_ns(t_ms: float) -> int:
    """Convert milliseconds to integer nanoseconds (rounded)."""
    return round(t_ms * MSEC)


def us_to_ns(t_us: float) -> int:
    """Convert microseconds to integer nanoseconds (rounded)."""
    return round(t_us * USEC)
