"""Named deterministic random streams.

Every stochastic decision in the simulator (clock drift assignment, packet
error draws, traffic jitter, randomized connection intervals, ...) pulls from
a named stream derived from a single experiment seed.  Two experiments with
the same seed and configuration are bit-for-bit identical, regardless of the
order in which subsystems are constructed, because each stream's seed depends
only on ``(experiment_seed, stream_name)``.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Union


def subseed(*parts: Union[int, str]) -> int:
    """A 64-bit seed derived from ``parts`` via SHA-256.

    The canonical sub-seeding idiom of the repo: parts are joined with
    ``":"`` and hashed, so a derived stream's draws depend only on its own
    name, never on which other streams exist or how often they were pulled.
    ``subseed(seed, name)`` reproduces the byte-exact seed of
    :meth:`RngRegistry.stream`; :mod:`repro.topo` and :mod:`repro.workload`
    derive their attempt/schedule seeds through the same function.
    """
    digest = hashlib.sha256(":".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory of per-subsystem :class:`random.Random` instances.

    :param seed: the experiment master seed.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically.

        Repeated calls with the same name return the *same* object, so
        consumers share state within a stream but never across streams.
        """
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(subseed(self.seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per repetition of a sweep)."""
        return RngRegistry(subseed(self.seed, "fork", name))
