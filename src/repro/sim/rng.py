"""Named deterministic random streams.

Every stochastic decision in the simulator (clock drift assignment, packet
error draws, traffic jitter, randomized connection intervals, ...) pulls from
a named stream derived from a single experiment seed.  Two experiments with
the same seed and configuration are bit-for-bit identical, regardless of the
order in which subsystems are constructed, because each stream's seed depends
only on ``(experiment_seed, stream_name)``.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Factory of per-subsystem :class:`random.Random` instances.

    :param seed: the experiment master seed.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically.

        Repeated calls with the same name return the *same* object, so
        consumers share state within a stream but never across streams.
        """
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per repetition of a sweep)."""
        digest = hashlib.sha256(f"{self.seed}:fork:{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
