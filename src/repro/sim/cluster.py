"""Connection-cluster partition for the lookahead-parallel kernel.

The conservative-lookahead dispatcher (:mod:`repro.sim.parallel`) may only
reorder or overlap work between *clusters* that provably cannot interact
inside one dispatch window.  This module owns that partition:

* a :class:`ClusterMap` is a **monotone union-find** over node addresses:
  clusters only ever merge, never split.  Splitting would be unsound --
  two nodes that once shared a cluster may share derived state (most
  importantly a medium loss stream, see
  :meth:`repro.phy.medium.BleMedium.attach_clusters`), and executing them
  from different dispatch lanes after a split would consume that shared
  state in a mode-dependent order.  Merging is always safe: it can only
  make the dispatcher *more* conservative.
* the initial partition comes from the spatial medium's neighbor sets
  (:func:`components_of`): nodes in the same radio-range component can
  exchange advertising packets and must share a cluster from t=0.  A
  geometry-less medium (the paper's single-room testbed) is one world
  cluster.
* topology changes merge clusters live: connection establishment
  (:meth:`note_edge`), mobility (:meth:`note_mobility`) and MAC rotation
  (:meth:`note_alias`) all funnel into :meth:`merge`.  Every merge bumps
  :attr:`version` so the dispatcher invalidates its per-window partition
  caches.

Timer ownership is resolved through the ``cluster_addr`` protocol: any
object that schedules kernel timers may expose a ``cluster_addr``
attribute (or property) naming the node address that owns its work.  The
dispatcher walks a callback's ``functools.partial`` chain and bound
``__self__`` to find it; callbacks without an owner belong to the *global
lane* and act as window barriers (see DESIGN.md §10).
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple


def components_of(adjacency: Dict[int, Tuple[int, ...]]) -> List[Tuple[int, ...]]:
    """Connected components of a neighbor-set adjacency, sorted.

    Components are returned sorted by their smallest member, each component
    tuple ascending -- the canonical order every consumer (cluster seeding,
    loss-stream derivation, tests) relies on.
    """
    seen: set = set()
    components: List[Tuple[int, ...]] = []
    for root in sorted(adjacency):
        if root in seen:
            continue
        stack = [root]
        seen.add(root)
        members = []
        while stack:
            addr = stack.pop()
            members.append(addr)
            for peer in adjacency.get(addr, ()):
                if peer not in seen:
                    seen.add(peer)
                    stack.append(peer)
        members.sort()
        components.append(tuple(members))
    return components


class ClusterMap:
    """Monotone (merge-only) partition of node addresses into clusters.

    The representative (*root*) of a cluster is its smallest member
    address, which keeps cluster identity stable and deterministic across
    merge orders: ``merge(a, b)`` and ``merge(b, a)`` yield the same root.
    """

    __slots__ = ("_parent", "version")

    def __init__(self, clusters: Iterable[Iterable[int]] = ()) -> None:
        #: addr -> parent addr (self-parent marks a root).
        self._parent: Dict[int, int] = {}
        #: Bumped on every structural change (add/merge); dispatcher caches
        #: key their validity on it.
        self.version = 0
        for members in clusters:
            first: Optional[int] = None
            for addr in members:
                self.add(addr)
                if first is None:
                    first = addr
                else:
                    self.merge(first, addr)

    def add(self, addr: int) -> None:
        """Register an address as its own (singleton) cluster, idempotent."""
        if addr not in self._parent:
            self._parent[addr] = addr
            self.version += 1

    def __contains__(self, addr: int) -> bool:
        return addr in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def root(self, addr: int) -> int:
        """The cluster representative (smallest member) of ``addr``.

        Unknown addresses are auto-registered as singletons: a node the
        builder never placed (e.g. a late churn arrival) must still have a
        well-defined lane instead of a KeyError mid-dispatch.
        """
        parent = self._parent
        if addr not in parent:
            self.add(addr)
            return addr
        node = addr
        while parent[node] != node:
            node = parent[node]
        # Path compression (does not change the partition -> no version bump).
        while parent[addr] != node:
            parent[addr], addr = node, parent[addr]
        return node

    def merge(self, a: int, b: int) -> int:
        """Union the clusters of ``a`` and ``b``; returns the merged root.

        The smaller root wins so cluster identity is order-independent.
        """
        ra, rb = self.root(a), self.root(b)
        if ra == rb:
            return ra
        if rb < ra:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self.version += 1
        return ra

    # -- topology-change hooks -------------------------------------------

    def note_edge(self, a: int, b: int) -> None:
        """A link-layer interaction path appeared between two nodes."""
        self.merge(a, b)

    def note_mobility(self, addr: int, neighbors: Iterable[int]) -> None:
        """A node moved; it may now hear a new set of neighbors."""
        for peer in neighbors:
            self.merge(addr, peer)

    def note_alias(self, old_addr: int, new_addr: int) -> None:
        """An address was re-keyed (RPA rotation): both name one node."""
        self.add(new_addr)
        self.merge(old_addr, new_addr)

    # -- queries -----------------------------------------------------------

    def roots(self) -> List[int]:
        """All cluster representatives, ascending."""
        return sorted({self.root(addr) for addr in self._parent})

    def clusters(self) -> Dict[int, Tuple[int, ...]]:
        """root -> sorted members (diagnostics and tests)."""
        out: Dict[int, List[int]] = {}
        for addr in sorted(self._parent):
            out.setdefault(self.root(addr), []).append(addr)
        return {root: tuple(members) for root, members in out.items()}

    def same_cluster(self, a: int, b: int) -> bool:
        """Whether two addresses currently share a cluster."""
        return self.root(a) == self.root(b)


def owner_addr(callback: Callable[..., Any]) -> Optional[int]:
    """Resolve the owning node address of a timer callback, or ``None``.

    Walks ``functools.partial`` wrappers to the underlying callable, then
    asks the bound instance (``__self__``) for its ``cluster_addr``.  Plain
    functions, lambdas, and objects without the protocol own no cluster --
    their timers ride the global lane and barrier the dispatch window.
    """
    inner: Any = callback
    while isinstance(inner, partial):
        inner = inner.func
    owner = getattr(inner, "__self__", None)
    if owner is None:
        return None
    addr = getattr(owner, "cluster_addr", None)
    if addr is None:
        return None
    return int(addr)
