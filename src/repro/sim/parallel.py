"""Conservative-lookahead windowed dispatch for :class:`~repro.sim.kernel.Simulator`.

The serial kernel dispatches one timer at a time in global ``(when, seq)``
order.  This module executes the same timer stream in *windows*: the
dispatcher picks a conservative horizon ``end = now + horizon_ns``, drains
every due timer (``when < end``) from the kernel structures in serial
order, partitions the batch by owning cluster (see
:mod:`repro.sim.cluster`), runs each cluster's sub-window as an
independent *lane* behind a worker seam, and merges at the barrier.

Correctness model (proof sketch in DESIGN.md §10):

* **Clusters cannot interact within a window.**  Clusters are radio
  components under a monotone merge-only map, and the horizon is chosen at
  or below the minimum cross-cluster interaction latency; any event that
  *creates* an interaction path (mobility step, churn arrival, rotation)
  is driven by a global-lane timer, and the window is cut at the first
  global-lane timer in the stream -- cluster membership is therefore
  constant across the lanes of one window.
* **Within a lane, order is serial order.**  A lane's seed batch arrives
  in drained ``(when, seq)`` order and newly scheduled in-window timers
  are routed into the active lane's heap by :meth:`Simulator.at`, so each
  cluster observes exactly the sub-sequence of serial dispatch order that
  concerns it.
* **Observable byte-identity.**  Whenever TRACE or METRICS is enabled the
  window executes as one merged lane in exact global ``(when, seq)``
  order, so the golden JSONL trace and ``metrics.json`` are byte-identical
  to the serial kernel *by construction*, not by luck.  Uninstrumented
  multi-cluster windows may reorder across lanes; cross-cluster
  independence (disjoint node state, per-cluster medium loss streams --
  :meth:`repro.phy.medium.BleMedium.attach_clusters`) makes that
  reordering unobservable in the end state.

The worker seam is deliberately narrow: lanes are self-contained thunks.
On CPython with the GIL (and on the single-core CI runners) thread workers
cannot overlap lane execution in wall time, so :class:`ThreadSeam` hands
lanes to its pool strictly one at a time, in cluster order -- scheduling
isolation and a stable migration point for a free-threaded or
multiprocess pool, not a speedup claim.  See README "Parallel dispatch"
for measured numbers.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

# simlint: allow-wallclock -- barrier-stall attribution only; the measured
# wall seconds land in profile.json (see repro.obs.profiler).
from repro.obs.wallclock import perf_counter
from repro.sim.cluster import ClusterMap, owner_addr
from repro.trace.record import callback_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator, Timer

#: Fallback lookahead horizon: 2**23 ns (~8.4 ms).  Four timer-wheel slots:
#: long enough to amortize the per-window barrier, short enough that lane
#: heaps stay small.  The runner overrides this with the configured
#: minimum cross-cluster interaction latency (the connection interval).
DEFAULT_HORIZON_NS: int = 1 << 23

#: One ordered kernel entry: ``(when, seq, timer)``.
_Entry = Tuple[int, int, "Timer"]

#: Lane label for the merged / single-cluster lane.
WORLD_LANE = "world"
#: Lane label for ownerless (global) timers executed at window cuts.
GLOBAL_LANE = "global"


class InlineSeam:
    """Run lane thunks sequentially on the dispatching thread."""

    workers = 1

    def run(self, thunks: List[Callable[[], None]]) -> None:
        for thunk in thunks:
            thunk()

    def close(self) -> None:
        pass


class ThreadSeam:
    """Run lane thunks on a worker-thread pool, one lane at a time.

    Lanes are handed to the pool in cluster order and each is awaited
    before the next starts.  That is deliberate: under CPython's GIL a
    concurrent hand-off could not overlap lane wall time anyway, but it
    *could* reorder ``seq`` allocation between runs of the same config and
    cost the determinism the kernel promises.  The seam therefore provides
    worker isolation (lanes never share a stack with the barrier logic)
    with byte-stable scheduling; a free-threaded or multiprocess pool
    replaces only this class.
    """

    def __init__(self, workers: int) -> None:
        from concurrent.futures import ThreadPoolExecutor

        self.workers = max(2, int(workers))
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-lane"
        )

    def run(self, thunks: List[Callable[[], None]]) -> None:
        for thunk in thunks:
            self._pool.submit(thunk).result()

    def close(self) -> None:
        self._pool.shutdown(wait=True)


class LookaheadExecutor:
    """Windowed cluster-parallel dispatcher over a live :class:`Simulator`.

    The executor is a friend of the kernel: it manipulates the timer
    structures directly and reuses the kernel's lazy-cancel and recycle
    protocol, so ``pending()`` / ``queue_depth()`` stay exact mid-window.
    """

    def __init__(
        self,
        sim: "Simulator",
        clusters: Optional[ClusterMap] = None,
        horizon_ns: Optional[int] = None,
        workers: int = 1,
    ) -> None:
        self._sim = sim
        self._clusters = clusters
        self.horizon_ns = int(horizon_ns) if horizon_ns else DEFAULT_HORIZON_NS
        if self.horizon_ns <= 0:
            raise ValueError(f"horizon_ns must be positive, got {horizon_ns}")
        self.workers = max(1, int(workers))
        self._seam = ThreadSeam(self.workers) if self.workers > 1 else InlineSeam()
        #: Cached "more than one cluster" flag, keyed by ClusterMap.version.
        self._multi_cache = False
        self._multi_version = -1

    def close(self) -> None:
        """Release seam resources (worker threads)."""
        self._seam.close()

    # -- cluster helpers -------------------------------------------------

    def _multi_root(self) -> bool:
        clusters = self._clusters
        if clusters is None:
            return False
        if clusters.version != self._multi_version:
            self._multi_version = clusters.version
            self._multi_cache = len(clusters.roots()) > 1
        return self._multi_cache

    def _owner_root(self, callback: Callable[..., Any]) -> Optional[int]:
        addr = owner_addr(callback)
        if addr is None:
            return None
        clusters = self._clusters
        assert clusters is not None  # only called when classifying
        return clusters.root(addr)

    # -- window loop -----------------------------------------------------

    def run(self, until: Optional[int]) -> int:
        """Dispatch windows until done/stopped/horizon; returns event count."""
        sim = self._sim
        instr = sim._instr
        profiler = sim._profiler
        horizon = self.horizon_ns
        executed = 0
        try:
            while not sim._stopped:
                nxt = sim.peek()
                if nxt is None:
                    break
                if until is not None and nxt >= until:
                    break
                end = nxt + horizon
                if until is not None and end > until:
                    end = until
                version = instr.version
                profiler_on = profiler.enabled
                # simlint: allow-wallclock -- barrier attribution only.
                window_t0 = perf_counter() if profiler_on else 0.0
                # TRACE/METRICS demand exact global (when, seq) order: the
                # window collapses to one merged lane (byte-identity by
                # construction).  The profiler only times callbacks, which
                # commutes across lanes, so it does not force merging.
                merged = sim._trace.enabled or sim._metrics.enabled
                multi = self._multi_root()
                classify = multi and (profiler_on or not merged)
                cut_on_global = classify and not merged
                sim._defer_compact = True
                batch, roots, cut = self._drain(sim, end, classify, cut_on_global)
                lane_end = cut[0] if cut is not None else end
                n_exec, cb_wall, lanes_run, lane_events, aborted = self._dispatch(
                    sim, batch, roots, lane_end, version,
                    merged or not cut_on_global, profiler_on,
                )
                executed += n_exec
                if cut is not None:
                    if aborted:
                        heappush(sim._cur, cut)
                    else:
                        n, dt = self._run_global(sim, cut, profiler_on)
                        executed += n
                        cb_wall += dt
                        if n and profiler_on:
                            lane_events[GLOBAL_LANE] = (
                                lane_events.get(GLOBAL_LANE, 0) + n
                            )
                sim._defer_compact = False
                sim._compact_if_due()
                if profiler_on:
                    # simlint: allow-wallclock -- barrier attribution only.
                    window_wall = perf_counter() - window_t0
                    stall = window_wall - cb_wall
                    if stall < 0.0:
                        stall = 0.0
                    profiler.record_barrier(stall)
                    profiler.record_window(max(1, lanes_run), lane_events)
        finally:
            sim._defer_compact = False
            sim._lane_heap = None
        return executed

    def _drain(
        self,
        sim: "Simulator",
        end: int,
        classify: bool,
        cut_on_global: bool,
    ) -> Tuple[List[_Entry], List[Optional[int]], Optional[_Entry]]:
        """Pop every due timer (``when < end``) in serial ``(when, seq)`` order.

        Drained timers keep ``queued=True`` and stay counted in
        ``_n_items`` until a lane executes them, so cancellation and the
        O(1) ``pending()`` bookkeeping keep working mid-window.  When
        ``cut_on_global`` is set, draining stops at the first ownerless
        timer -- it is returned as ``cut`` and acts as the window barrier.
        """
        batch: List[_Entry] = []
        roots: List[Optional[int]] = []
        cut: Optional[_Entry] = None
        cur = sim._cur
        owner = self._owner_root
        while True:
            if not cur:
                if not sim._advance():
                    break
                cur = sim._cur
                continue
            entry = cur[0]
            timer = entry[2]
            if timer.cancelled:
                heappop(cur)
                sim._n_items -= 1
                sim._n_cancelled -= 1
                sim._recycle(timer)
                continue
            if entry[0] >= end:
                break
            heappop(cur)
            if classify:
                root = owner(timer.callback)
                if root is None and cut_on_global:
                    cut = entry
                    break
                roots.append(root)
            batch.append(entry)
        return batch, roots, cut

    def _dispatch(
        self,
        sim: "Simulator",
        batch: List[_Entry],
        roots: List[Optional[int]],
        lane_end: int,
        version: int,
        merged: bool,
        profiler_on: bool,
    ) -> Tuple[int, float, int, Dict[str, int], bool]:
        """Execute the window batch; returns (executed, callback wall seconds,
        lanes run, per-lane event counts, aborted)."""
        lane_events: Dict[str, int] = {}
        if not batch:
            return 0, 0.0, 0, lane_events, False
        if merged:
            lanes: List[List[_Entry]] = [batch]
            labels: List[str] = [WORLD_LANE]
            if roots:
                # attribution only: count batch events per owning cluster
                for root in roots:
                    label = GLOBAL_LANE if root is None else f"cluster{root}"
                    lane_events[label] = lane_events.get(label, 0) + 1
        else:
            by_root: Dict[int, List[_Entry]] = {}
            for entry, root in zip(batch, roots):
                lst = by_root.get(root)  # type: ignore[arg-type]
                if lst is None:
                    lst = by_root[root] = []  # type: ignore[index]
                lst.append(entry)
            ordered = sorted(by_root)
            lanes = [by_root[r] for r in ordered]
            labels = [f"cluster{r}" for r in ordered]
        trace_on = sim._trace.enabled
        metrics_on = sim._metrics.enabled
        results: List[Tuple[int, float, List[_Entry]]] = []
        thunks: List[Callable[[], None]] = []
        for lane in lanes:
            if trace_on or metrics_on:
                runner = self._run_lane_instr
            elif profiler_on:
                runner = self._run_lane_profiled
            else:
                runner = self._run_lane_plain

            def thunk(lane: List[_Entry] = lane, runner: Any = runner) -> None:
                results.append(runner(sim, lane, lane_end, version))

            thunks.append(thunk)
        self._seam.run(thunks)
        executed = 0
        cb_wall = 0.0
        aborted = False
        for i, (n, dt, leftover) in enumerate(results):
            executed += n
            cb_wall += dt
            if not merged and n:
                lane_events[labels[i]] = lane_events.get(labels[i], 0) + n
            if leftover:
                aborted = True
                for entry in leftover:
                    heappush(sim._cur, entry)
        if aborted and len(results) < len(lanes):  # pragma: no cover - defensive
            for lane in lanes[len(results):]:
                for entry in lane:
                    heappush(sim._cur, entry)
        return executed, cb_wall, len(lanes), lane_events, aborted

    # -- lane loops ------------------------------------------------------
    #
    # Three variants of one loop, mirroring the kernel's specialized
    # dispatch loops: the per-event shape (lazy-cancel pop, bookkeeping,
    # `_now` stamp, callback) is identical to the serial loops so a merged
    # single lane replays serial dispatch exactly.

    def _run_lane_plain(
        self,
        sim: "Simulator",
        heap: List[_Entry],
        lane_end: int,
        version: int,
    ) -> Tuple[int, float, List[_Entry]]:
        """Uninstrumented lane (the fast path)."""
        instr = sim._instr
        executed = 0
        leftover: List[_Entry] = []
        sim._lane_heap = heap
        sim._lane_end = lane_end
        try:
            while heap:
                if sim._stopped or instr.version != version:
                    leftover = list(heap)
                    break
                when, _seq, timer = heappop(heap)
                if timer.cancelled:
                    sim._n_items -= 1
                    sim._n_cancelled -= 1
                    sim._recycle(timer)
                    continue
                sim._n_items -= 1
                timer.queued = False
                sim._now = when
                timer.callback(*timer.args)
                executed += 1
        finally:
            sim._lane_heap = None
        return executed, 0.0, leftover

    def _run_lane_profiled(
        self,
        sim: "Simulator",
        heap: List[_Entry],
        lane_end: int,
        version: int,
    ) -> Tuple[int, float, List[_Entry]]:
        """Lane with only the wall-clock profiler enabled.

        Attribution is batched in lane-local dicts and flushed via
        :meth:`Profiler.record_bulk` at the lane barrier, matching the
        serial ``_loop_profiled`` so profiled throughput is comparable
        across dispatch modes.
        """
        instr = sim._instr
        profiler = sim._profiler
        executed = 0
        cb_wall = 0.0
        leftover: List[_Entry] = []
        rec_counts: Dict[Any, int] = {}
        rec_times: Dict[Any, float] = {}
        sim._lane_heap = heap
        sim._lane_end = lane_end
        try:
            while heap:
                if sim._stopped or instr.version != version:
                    leftover = list(heap)
                    break
                when, _seq, timer = heappop(heap)
                if timer.cancelled:
                    sim._n_items -= 1
                    sim._n_cancelled -= 1
                    sim._recycle(timer)
                    continue
                sim._n_items -= 1
                timer.queued = False
                sim._now = when
                callback = timer.callback
                # simlint: allow-wallclock -- profiler attribution only; the
                # measured wall seconds stay in profile.json.
                t0 = perf_counter()
                callback(*timer.args)
                dt = perf_counter() - t0  # simlint: allow-wallclock -- profiler hook
                cb_wall += dt
                try:
                    if callback in rec_times:
                        rec_times[callback] += dt
                        rec_counts[callback] += 1
                    else:
                        rec_times[callback] = dt
                        rec_counts[callback] = 1
                except TypeError:  # unhashable callable
                    profiler.record(callback, dt)
                executed += 1
        finally:
            sim._lane_heap = None
            for callback, total in rec_times.items():
                profiler.record_bulk(callback, rec_counts[callback], total)
        return executed, cb_wall, leftover

    def _run_lane_instr(
        self,
        sim: "Simulator",
        heap: List[_Entry],
        lane_end: int,
        version: int,
    ) -> Tuple[int, float, List[_Entry]]:
        """Merged lane with tracing/metrics (and maybe the profiler).

        Only ever runs as the single merged lane of a window, in exact
        global ``(when, seq)`` order: emitted trace records and metric
        increments are byte-identical to the serial instrumented loop.
        """
        instr = sim._instr
        trace = sim._trace
        metrics = sim._metrics
        profiler = sim._profiler
        trace_on = trace.enabled
        metrics_on = metrics.enabled
        profiler_on = profiler.enabled
        executed = 0
        cb_wall = 0.0
        leftover: List[_Entry] = []
        sim._lane_heap = heap
        sim._lane_end = lane_end
        try:
            while heap:
                if sim._stopped or instr.version != version:
                    leftover = list(heap)
                    break
                when, seq, timer = heappop(heap)
                if timer.cancelled:
                    sim._n_items -= 1
                    sim._n_cancelled -= 1
                    sim._recycle(timer)
                    continue
                sim._n_items -= 1
                timer.queued = False
                sim._now = when
                if trace_on:
                    trace.emit(
                        when,
                        "kernel",
                        "dispatch",
                        timer_seq=seq,
                        callback=callback_name(timer.callback),
                    )
                if profiler_on:
                    # simlint: allow-wallclock -- profiler attribution only;
                    # the measured wall seconds stay in profile.json.
                    t0 = perf_counter()
                    timer.callback(*timer.args)
                    dt = perf_counter() - t0  # simlint: allow-wallclock -- profiler hook
                    cb_wall += dt
                    profiler.record(timer.callback, dt)
                else:
                    timer.callback(*timer.args)
                executed += 1
                if metrics_on:
                    metrics.inc("sim", "kernel.events_dispatched")
        finally:
            sim._lane_heap = None
        return executed, cb_wall, leftover

    def _run_global(
        self, sim: "Simulator", cut: _Entry, profiler_on: bool
    ) -> Tuple[int, float]:
        """Execute the window-cutting global-lane timer serially."""
        when, _seq, timer = cut
        if timer.cancelled:
            sim._n_items -= 1
            sim._n_cancelled -= 1
            sim._recycle(timer)
            return 0, 0.0
        sim._n_items -= 1
        timer.queued = False
        sim._now = when
        if profiler_on:
            profiler = sim._profiler
            # simlint: allow-wallclock -- profiler attribution only; the
            # measured wall seconds stay in profile.json.
            t0 = perf_counter()
            timer.callback(*timer.args)
            dt = perf_counter() - t0  # simlint: allow-wallclock -- profiler hook
            profiler.record(timer.callback, dt)
            return 1, dt
        timer.callback(*timer.args)
        return 1, 0.0
