"""Per-node drifting clocks.

Every BLE node owns a *sleep clock* that times its connection events.  The
Bluetooth standard requires an accuracy better than 250 ppm; the paper
measured at most ~6 us/s (6 ppm) of *relative* drift between nRF52 boards.
Because the connection coordinator schedules anchor points on *its* clock
while the subordinate predicts them on *its own* clock, two co-located
connections with the same nominal interval slide against each other at the
relative drift rate -- the mechanism behind connection shading (paper §6.1).

:class:`DriftingClock` maps between local and true time with a constant rate
``1 + ppm * 1e-6`` (local seconds per true second).  The mapping is exact,
monotone, and invertible up to integer rounding.
"""

from __future__ import annotations

from repro.sim.kernel import Simulator


class DriftingClock:
    """A linear clock: ``local = (true - epoch) * rate + local_offset``.

    :param sim: the simulator providing true time.
    :param ppm: frequency error in parts per million.  Positive means the
        local clock runs *fast* (more local ns elapse per true ns).
    :param local_offset: initial local time at ``epoch`` (true ns).
    :param epoch: true time at which the clock started (defaults to 0).
    """

    __slots__ = ("_sim", "ppm", "_rate_num", "_rate_den", "_epoch", "_local_offset")

    #: Rate fractions use this denominator so all math stays in integers.
    _SCALE = 1_000_000

    def __init__(
        self,
        sim: Simulator,
        ppm: float = 0.0,
        local_offset: int = 0,
        epoch: int = 0,
    ) -> None:
        self._sim = sim
        self.ppm = float(ppm)
        # rate = (1e6 + ppm) / 1e6 as an integer fraction, quantized to 1e-12
        # relative resolution (sub-ns error even over a simulated day).
        self._rate_num = round((1_000_000 + ppm) * 1_000_000)
        self._rate_den = self._SCALE * 1_000_000
        self._epoch = int(epoch)
        self._local_offset = int(local_offset)

    @property
    def rate(self) -> float:
        """Local-ns per true-ns as a float (diagnostic only)."""
        return self._rate_num / self._rate_den

    def local_now(self) -> int:
        """Current local time in local nanoseconds."""
        return self.to_local(self._sim.now)

    def to_local(self, true_ns: int) -> int:
        """Map a true timestamp to this clock's local timestamp."""
        elapsed = true_ns - self._epoch
        return self._local_offset + (elapsed * self._rate_num) // self._rate_den

    def to_true(self, local_ns: int) -> int:
        """Map a local timestamp back to true time (inverse of to_local)."""
        rel = local_ns - self._local_offset
        return self._epoch + (rel * self._rate_den) // self._rate_num

    def local_duration_to_true(self, local_dur: int) -> int:
        """How many true ns elapse while this clock counts ``local_dur`` ns."""
        return (local_dur * self._rate_den) // self._rate_num

    def true_duration_to_local(self, true_dur: int) -> int:
        """How many local ns this clock counts during ``true_dur`` true ns."""
        return (true_dur * self._rate_num) // self._rate_den

    def relative_ppm(self, other: "DriftingClock") -> float:
        """Approximate relative drift rate versus ``other`` in ppm.

        Two clocks with relative drift ``d`` ppm slide apart by ``d`` us
        every second -- the quantity used by the paper's shading-likelihood
        estimate (§6.2).
        """
        return self.ppm - other.ppm
