"""Deterministic discrete-event simulation kernel.

The kernel maintains a priority queue of :class:`Timer` objects keyed by
``(fire_time_ns, sequence_number)``.  The sequence number makes execution
order fully deterministic when several timers share a timestamp: they fire
in scheduling order.  Timestamps are integer nanoseconds of *true* time --
node-local (drifting) views of time are layered on top by
:class:`repro.sim.clock.DriftingClock` and never enter the kernel.
"""

from __future__ import annotations

import heapq

# simlint: allow-wallclock -- the profiler hook measures real dispatch cost;
# perf_counter values never reach simulated state (see repro.obs.profiler).
from time import perf_counter
from typing import Any, Callable, Optional

from repro.obs.profiler import PROFILER
from repro.obs.registry import METRICS
from repro.trace.record import callback_name
from repro.trace.tracer import TRACE


class SimulationError(RuntimeError):
    """Raised on kernel misuse (scheduling in the past, running twice, ...)."""


class Timer:
    """A handle for one scheduled callback.

    Timers are returned by :meth:`Simulator.at` / :meth:`Simulator.after` and
    can be cancelled before they fire.  A cancelled timer stays in the heap
    but is skipped by the event loop (lazy deletion).
    """

    __slots__ = ("when", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        when: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple[Any, ...],
    ) -> None:
        self.when = when
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the timer from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Timer") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Timer t={self.when}ns seq={self.seq} {state} {self.callback!r}>"


class Simulator:
    """Event loop over integer-nanosecond true time.

    Typical use::

        sim = Simulator()
        sim.after(1_000_000, lambda: print("one millisecond"))
        sim.run(until=SEC)

    The loop stops when the queue is empty, when the optional horizon is
    reached, or when :meth:`stop` is called from within a callback.
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._queue: list[Timer] = []
        self._seq: int = 0
        self._running = False
        self._stopped = False
        #: Number of callbacks executed so far (cheap progress metric).
        self.events_executed: int = 0

    @property
    def now(self) -> int:
        """Current true time in nanoseconds."""
        return self._now

    def at(self, when: int, callback: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` at absolute true time ``when`` (ns)."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when}ns, already at t={self._now}ns"
            )
        timer = Timer(int(when), self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._queue, timer)
        return timer

    def after(self, delay: int, callback: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` ``delay`` nanoseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}ns")
        return self.at(self._now + int(delay), callback, *args)

    def stop(self) -> None:
        """Request the running loop to stop after the current callback."""
        self._stopped = True

    def run(self, until: Optional[int] = None) -> int:
        """Run the event loop.

        :param until: optional horizon in true ns.  Events scheduled at
            exactly ``until`` are *not* executed; on return ``now`` equals
            ``until`` (if given) or the time of the last executed event.
        :returns: the number of callbacks executed during this call.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            queue = self._queue
            while queue and not self._stopped:
                timer = queue[0]
                if timer.cancelled:
                    heapq.heappop(queue)
                    continue
                if until is not None and timer.when >= until:
                    break
                heapq.heappop(queue)
                self._now = timer.when
                if TRACE.enabled:
                    TRACE.emit(
                        timer.when,
                        "kernel",
                        "dispatch",
                        timer_seq=timer.seq,
                        callback=callback_name(timer.callback),
                    )
                if PROFILER.enabled:
                    # simlint: allow-wallclock -- profiler attribution only;
                    # the measured wall seconds stay in profile.json.
                    t0 = perf_counter()
                    timer.callback(*timer.args)
                    PROFILER.record(timer.callback, perf_counter() - t0)  # simlint: allow-wallclock -- profiler hook
                else:
                    timer.callback(*timer.args)
                executed += 1
                if METRICS.enabled:
                    METRICS.inc("sim", "kernel.events_dispatched")
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False
        self.events_executed += executed
        return executed

    def peek(self) -> Optional[int]:
        """Return the timestamp of the next pending event, or ``None``."""
        queue = self._queue
        while queue and queue[0].cancelled:
            heapq.heappop(queue)
        return queue[0].when if queue else None

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue (O(n))."""
        return sum(1 for t in self._queue if not t.cancelled)

    def queue_depth(self) -> int:
        """Heap size including lazily-deleted timers (O(1)).

        The cheap sibling of :meth:`pending`, suitable for periodic
        sampling: it counts cancelled-but-not-yet-popped timers too, so it
        bounds :meth:`pending` from above and tracks memory pressure.
        """
        return len(self._queue)
