"""Deterministic discrete-event simulation kernel.

The kernel dispatches :class:`Timer` callbacks in ``(fire_time_ns,
sequence_number)`` order.  The sequence number makes execution order fully
deterministic when several timers share a timestamp: they fire in
scheduling order.  Timestamps are integer nanoseconds of *true* time --
node-local (drifting) views of time are layered on top by
:class:`repro.sim.clock.DriftingClock` and never enter the kernel.

Storage is a two-level hierarchical timer wheel instead of a single binary
heap, because the dominant timers (connection-event anchors, exchange
follow-ups) live a few milliseconds to a few hundred milliseconds ahead:

* the **current-slot heap** holds timers of the slot being dispatched,
  ordered as ``(when, seq, timer)`` tuples so comparisons stay in C;
* the **wheel** is a ring of :data:`WHEEL_SLOTS` unsorted buckets, each
  :data:`WHEEL_SLOT_NS` wide, giving O(1) schedule for anything within
  ~270 ms; bucket lists are cleared and reused in place (eager slot
  reuse), never reallocated;
* the **overflow heap** takes the long tail (1 s producer ticks, CoAP
  retransmission timers, supervision horizons).

Dispatch order is *identical* to the classic all-heap kernel: a slot's
bucket is heapified on entry, so timers still fire strictly by
``(when, seq)``; the bucketing only changes *where* a timer waits, never
*when* it fires (see DESIGN.md, "Timer-wheel kernel").

Cancellation is lazy (a flag checked at pop time) but counted, so
:meth:`Simulator.pending` is O(1) and the structures are compacted once
cancelled timers outnumber live ones -- long runs that cancel many timers
(24 h supervision-heavy scenarios) stay bounded in memory.  Timer objects
popped in a cancelled state feed a free list that :meth:`Simulator.at`
reuses, and hot reschedule sites reuse their own just-fired timer via
:meth:`Simulator.rearm`; both kill the per-event allocation.

Handle contract: after calling :meth:`Timer.cancel` -- or after the timer
fired, if the scheduling site uses :meth:`Simulator.rearm` -- drop the
handle.  Cancelled timers are recycled; a retained stale handle could
cancel an unrelated, newly issued timer.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, List, Optional, Tuple

from repro.obs.instr import INSTR
from repro.obs.profiler import PROFILER
from repro.obs.registry import METRICS

# simlint: allow-wallclock -- the profiler hook measures real dispatch cost;
# perf_counter values never reach simulated state (see repro.obs.profiler).
from repro.obs.wallclock import perf_counter
from repro.trace.record import callback_name
from repro.trace.tracer import TRACE

#: Default hub bindings handed to every Simulator at construction.  The
#: dispatch path reads hubs exclusively through instance attributes
#: (``self._trace`` etc.) so that no dispatch-reachable function references
#: a module-level singleton by name -- the SL009 shared-state contract --
#: and so a cluster lane could be handed sharded hubs without touching the
#: loops.  Bundling the four singletons in one tuple keeps the only
#: by-name references at module scope (import time).
_DEFAULT_HUBS = (INSTR, TRACE, METRICS, PROFILER)

#: log2 of the wheel slot width: each bucket spans 2**21 ns (~2.1 ms).
WHEEL_SLOT_SHIFT: int = 21
#: Width of one wheel bucket in true nanoseconds.
WHEEL_SLOT_NS: int = 1 << WHEEL_SLOT_SHIFT
#: Number of wheel buckets (a power of two so the ring index is a mask).
WHEEL_SLOTS: int = 128
#: Ring index mask, ``slot & WHEEL_SLOT_MASK``.
WHEEL_SLOT_MASK: int = WHEEL_SLOTS - 1
#: Scheduling horizon the wheel covers; later timers go to the overflow heap.
WHEEL_HORIZON_NS: int = WHEEL_SLOTS * WHEEL_SLOT_NS
#: All-ones occupancy mask (one bit per wheel bucket).
_OCC_ALL: int = (1 << WHEEL_SLOTS) - 1
#: Compaction threshold: never compact below this many cancelled timers.
COMPACT_MIN_CANCELLED: int = 64
#: Upper bound on the Timer free list (memory cap, not a correctness knob).
FREE_LIST_MAX: int = 512

#: One entry of the ordered structures: ``(when, seq, timer)``.
_Entry = Tuple[int, int, "Timer"]


class SimulationError(RuntimeError):
    """Raised on kernel misuse (scheduling in the past, running twice, ...)."""


class Timer:
    """A handle for one scheduled callback.

    Timers are returned by :meth:`Simulator.at` / :meth:`Simulator.after` and
    can be cancelled before they fire.  A cancelled timer stays queued but is
    skipped by the event loop (lazy deletion) and recycled afterwards -- drop
    the handle once cancelled (see the module docstring's handle contract).
    """

    __slots__ = ("when", "seq", "callback", "args", "cancelled", "queued", "sim")

    def __init__(
        self,
        when: int,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.when = when
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: True while the timer sits in one of the kernel's structures.
        self.queued = False
        self.sim = sim

    def cancel(self) -> None:
        """Prevent the timer from firing.  Idempotent on the same duty."""
        if not self.cancelled:
            self.cancelled = True
            sim = self.sim
            if sim is not None and self.queued:
                sim._note_cancel()

    def __lt__(self, other: "Timer") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Timer t={self.when}ns seq={self.seq} {state} {self.callback!r}>"


class Simulator:
    """Event loop over integer-nanosecond true time.

    Typical use::

        sim = Simulator()
        sim.after(1_000_000, lambda: print("one millisecond"))
        sim.run(until=SEC)

    The loop stops when the queue is empty, when the optional horizon is
    reached, or when :meth:`stop` is called from within a callback.
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._running = False
        self._stopped = False
        instr, trace, metrics, profiler = _DEFAULT_HUBS
        #: Instrumentation hubs as kernel-owned state: the process-wide
        #: defaults unless a test (or a future per-cluster shard) swaps
        #: them.  Dispatch loops read only these attributes.
        self._instr = instr
        self._trace = trace
        self._metrics = metrics
        self._profiler = profiler
        #: Dispatch mode: ``"serial"`` or ``"lookahead"``.
        self._dispatch = "serial"
        #: The lookahead window executor when dispatch is ``"lookahead"``.
        self._executor: Optional[Any] = None
        #: Active lookahead lane: in-window schedules with ``when <
        #: _lane_end`` are routed here so they dispatch inside the current
        #: window in ``(when, seq)`` order (see repro.sim.parallel).
        self._lane_heap: Optional[List[_Entry]] = None
        self._lane_end: int = 0
        #: Set by the lookahead executor for the duration of a window:
        #: drained-but-unexecuted timers live outside the structures that
        #: ``_compact`` walks, so compaction is deferred to the barrier.
        self._defer_compact = False
        #: Heap of ``(when, seq, timer)`` for the slot being dispatched --
        #: plus any timer scheduled at or before the cursor slot.
        self._cur: List[_Entry] = []
        #: Absolute slot index (``when >> WHEEL_SLOT_SHIFT``) of ``_cur``.
        self._cur_slot: int = 0
        #: Ring of unsorted near-future buckets.
        self._wheel: List[List[Timer]] = [[] for _ in range(WHEEL_SLOTS)]
        #: Number of timers currently resident in the wheel ring.
        self._wheel_count: int = 0
        #: Occupancy bitmask of the ring (bit i set = bucket i non-empty),
        #: letting the cursor jump to the next occupied bucket instead of
        #: probing the (mostly empty, for >2 ms timers) slots in between.
        self._occ: int = 0
        #: Heap of ``(when, seq, timer)`` beyond the wheel horizon.
        self._overflow: List[_Entry] = []
        #: Timers in all structures, including lazily-cancelled ones.
        self._n_items: int = 0
        #: Cancelled-but-not-yet-popped timers (makes pending() O(1)).
        self._n_cancelled: int = 0
        #: Recycled Timer objects awaiting reuse.
        self._free: List[Timer] = []
        #: Number of callbacks executed so far (cheap progress metric).
        self.events_executed: int = 0

    @property
    def now(self) -> int:
        """Current true time in nanoseconds."""
        return self._now

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def at(self, when: int, callback: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` at absolute true time ``when`` (ns)."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when}ns, already at t={self._now}ns"
            )
        when = int(when)
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            timer = free.pop()
            timer.when = when
            timer.seq = seq
            timer.callback = callback
            timer.args = args
            timer.cancelled = False
        else:
            timer = Timer(when, seq, callback, args, self)
        lane = self._lane_heap
        if lane is not None and when < self._lane_end:
            timer.queued = True
            heappush(lane, (when, seq, timer))
            self._n_items += 1
        else:
            self._insert(timer)
        return timer

    def after(self, delay: int, callback: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` ``delay`` nanoseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}ns")
        return self.at(self._now + int(delay), callback, *args)

    def rearm(self, timer: Timer, when: int) -> Timer:
        """Reschedule a timer that already fired, reusing its object.

        The eager-reuse fast path for sites that reschedule themselves every
        event (connection anchors, producer ticks): the caller owns the
        handle, knows it just fired, and keeps the same callback and args.
        A timer that is still queued (e.g. cancelled but not yet popped)
        falls back to a fresh :meth:`at` allocation.
        """
        if timer.queued:
            return self.at(when, timer.callback, *timer.args)
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when}ns, already at t={self._now}ns"
            )
        when = int(when)
        timer.when = when
        seq = self._seq
        timer.seq = seq
        self._seq = seq + 1
        timer.cancelled = False
        lane = self._lane_heap
        if lane is not None and when < self._lane_end:
            timer.queued = True
            heappush(lane, (when, seq, timer))
            self._n_items += 1
        else:
            self._insert(timer)
        return timer

    def _insert(self, timer: Timer) -> None:
        """Place a timer in the structure its horizon calls for."""
        timer.queued = True
        slot = timer.when >> WHEEL_SLOT_SHIFT
        delta = slot - self._cur_slot
        if delta <= 0:
            # Current slot -- or, between runs, a slot the cursor already
            # passed; the cur heap orders either case correctly.
            heappush(self._cur, (timer.when, timer.seq, timer))
        elif delta < WHEEL_SLOTS:
            idx = slot & WHEEL_SLOT_MASK
            self._wheel[idx].append(timer)
            self._wheel_count += 1
            self._occ |= 1 << idx
        else:
            heappush(self._overflow, (timer.when, timer.seq, timer))
        self._n_items += 1

    def _note_cancel(self) -> None:
        """Bookkeeping for one queued timer turning cancelled.

        Compaction is deferred while a lookahead window is in flight:
        drained batch entries and lane heaps live outside the structures
        ``_compact`` walks, so compacting mid-window would corrupt the
        item accounting.  The executor calls :meth:`_compact_if_due` at
        the window barrier instead.
        """
        self._n_cancelled += 1
        if not self._defer_compact:
            self._compact_if_due()

    def _compact_if_due(self) -> None:
        """Compact when cancelled timers dominate the queue."""
        if (
            self._n_cancelled >= COMPACT_MIN_CANCELLED
            and self._n_cancelled * 2 > self._n_items
        ):
            self._compact()

    def _recycle(self, timer: Timer) -> None:
        """Return a popped-while-cancelled timer to the free list."""
        timer.queued = False
        free = self._free
        if len(free) < FREE_LIST_MAX:
            timer.args = ()
            free.append(timer)

    def _compact(self) -> None:
        """Drop every cancelled timer from all structures (in place).

        ``self._cur`` is filtered in place so dispatch loops holding a local
        reference keep seeing the live heap.
        """
        cur = self._cur
        live = [entry for entry in cur if not entry[2].cancelled]
        if len(live) != len(cur):
            for entry in cur:
                if entry[2].cancelled:
                    self._recycle(entry[2])
            cur[:] = live
            heapify(cur)
        for idx, bucket in enumerate(self._wheel):
            if not bucket:
                continue
            kept = [t for t in bucket if not t.cancelled]
            if len(kept) != len(bucket):
                for t in bucket:
                    if t.cancelled:
                        self._recycle(t)
                self._wheel_count -= len(bucket) - len(kept)
                bucket[:] = kept
                if not kept:
                    self._occ &= ~(1 << idx)
        overflow = self._overflow
        live = [entry for entry in overflow if not entry[2].cancelled]
        if len(live) != len(overflow):
            for entry in overflow:
                if entry[2].cancelled:
                    self._recycle(entry[2])
            overflow[:] = live
            heapify(overflow)
        self._n_items -= self._n_cancelled
        self._n_cancelled = 0

    def _advance(self) -> bool:
        """Move the cursor to the next occupied slot and load it into ``_cur``.

        Called with ``_cur`` empty.  Returns False when no timers remain.
        """
        overflow = self._overflow
        of_slot = (overflow[0][0] >> WHEEL_SLOT_SHIFT) if overflow else -1
        if self._wheel_count:
            # Jump straight to the nearest occupied bucket: rotate the
            # occupancy mask so the search start becomes bit 0, then take
            # the lowest set bit.  All resident timers sit within one ring
            # revolution of the cursor, so the offset is unambiguous.
            start = self._cur_slot + 1
            r = start & WHEEL_SLOT_MASK
            occ = self._occ
            rot = ((occ >> r) | (occ << (WHEEL_SLOTS - r))) & _OCC_ALL
            s = start + ((rot & -rot).bit_length() - 1)
            if of_slot < 0 or s <= of_slot:
                idx = s & WHEEL_SLOT_MASK
                bucket = self._wheel[idx]
                self._cur_slot = s
                self._wheel_count -= len(bucket)
                self._occ = occ & ~(1 << idx)
                cur = [(t.when, t.seq, t) for t in bucket]
                bucket.clear()  # eager slot reuse: keep the list object
                while overflow and overflow[0][0] >> WHEEL_SLOT_SHIFT == s:
                    cur.append(heappop(overflow))
                heapify(cur)
                self._cur = cur
                return True
        if overflow:
            self._cur_slot = of_slot
            cur = []
            while overflow and overflow[0][0] >> WHEEL_SLOT_SHIFT == of_slot:
                cur.append(heappop(overflow))
            heapify(cur)
            self._cur = cur
            return True
        return False

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------

    def stop(self) -> None:
        """Request the running loop to stop after the current callback."""
        self._stopped = True

    @property
    def dispatch(self) -> str:
        """The configured dispatch mode: ``"serial"`` or ``"lookahead"``."""
        return self._dispatch

    def configure_dispatch(
        self,
        dispatch: str = "serial",
        *,
        workers: int = 1,
        clusters: Optional[Any] = None,
        horizon_ns: Optional[int] = None,
    ) -> None:
        """Select the dispatch engine for subsequent :meth:`run` calls.

        :param dispatch: ``"serial"`` (the classic loops) or
            ``"lookahead"`` (conservative-lookahead windowed dispatch, see
            :mod:`repro.sim.parallel`).
        :param workers: lane worker threads for lookahead dispatch;
            ``1`` runs lanes inline.
        :param clusters: a :class:`repro.sim.cluster.ClusterMap`
            partitioning node addresses; ``None`` treats the whole
            simulation as one cluster (windowed but never reordered).
        :param horizon_ns: conservative lookahead horizon; defaults to
            :data:`repro.sim.parallel.DEFAULT_HORIZON_NS`.  Must not
            exceed the minimum cross-cluster interaction latency of the
            scenario (the runner passes the connection interval).
        """
        if self._running:
            raise SimulationError("cannot reconfigure dispatch while running")
        if dispatch not in ("serial", "lookahead"):
            raise SimulationError(f"unknown dispatch mode {dispatch!r}")
        if self._executor is not None:
            self._executor.close()
            self._executor = None
        self._dispatch = dispatch
        if dispatch == "lookahead":
            from repro.sim.parallel import LookaheadExecutor

            self._executor = LookaheadExecutor(
                self, clusters=clusters, horizon_ns=horizon_ns, workers=workers
            )

    def run(self, until: Optional[int] = None) -> int:
        """Run the event loop.

        :param until: optional horizon in true ns.  Events scheduled at
            exactly ``until`` are *not* executed; on return ``now`` equals
            ``until`` (if given) or the time of the last executed event.
        :returns: the number of callbacks executed during this call.

        One of several specialized dispatch loops is selected here based on
        which instrumentation hubs are enabled, so the common uninstrumented
        run pays zero per-event predicate cascade; the selection is redone
        whenever a hub toggles (see :mod:`repro.obs.instr`).
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        executed = 0
        instr = self._instr
        try:
            if self._executor is not None:
                # Lookahead dispatch: the executor re-reads hub state at
                # every window boundary, so no re-selection loop is needed.
                executed = self._executor.run(until)
            else:
                while True:
                    version = instr.version
                    if self._trace.enabled or self._metrics.enabled:
                        executed += self._loop_instrumented(until, version)
                    elif self._profiler.enabled:
                        executed += self._loop_profiled(until, version)
                    else:
                        executed += self._loop_plain(until, version)
                    if instr.version == version:
                        break  # the loop returned because it is actually done
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False
        self.events_executed += executed
        return executed

    def _loop_plain(self, until: Optional[int], version: int) -> int:
        """Dispatch with no instrumentation enabled (the fast path)."""
        executed = 0
        instr = self._instr
        cur = self._cur
        while not self._stopped and instr.version == version:
            if not cur:
                if not self._advance():
                    break
                cur = self._cur
                continue
            entry = cur[0]
            timer = entry[2]
            if timer.cancelled:
                heappop(cur)
                self._n_items -= 1
                self._n_cancelled -= 1
                self._recycle(timer)
                continue
            when = entry[0]
            if until is not None and when >= until:
                break
            heappop(cur)
            self._n_items -= 1
            timer.queued = False
            self._now = when
            timer.callback(*timer.args)
            executed += 1
        return executed

    def _loop_profiled(self, until: Optional[int], version: int) -> int:
        """Dispatch with only the wall-clock profiler enabled.

        Attribution is batched in loop-local dicts keyed by the callback
        object (stable across ``rearm``) and flushed into the profiler via
        :meth:`Profiler.record_bulk` when the loop exits -- one dict update
        per event instead of a ``record`` call.
        """
        executed = 0
        instr = self._instr
        profiler = self._profiler
        record = profiler.record
        rec_counts: dict = {}
        rec_times: dict = {}
        cur = self._cur
        try:
            while not self._stopped and instr.version == version:
                if not cur:
                    if not self._advance():
                        break
                    cur = self._cur
                    continue
                entry = cur[0]
                timer = entry[2]
                if timer.cancelled:
                    heappop(cur)
                    self._n_items -= 1
                    self._n_cancelled -= 1
                    self._recycle(timer)
                    continue
                when = entry[0]
                if until is not None and when >= until:
                    break
                heappop(cur)
                self._n_items -= 1
                timer.queued = False
                self._now = when
                callback = timer.callback
                # simlint: allow-wallclock -- profiler attribution only; the
                # measured wall seconds stay in profile.json.
                t0 = perf_counter()
                callback(*timer.args)
                dt = perf_counter() - t0  # simlint: allow-wallclock -- profiler hook
                try:
                    if callback in rec_times:
                        rec_times[callback] += dt
                        rec_counts[callback] += 1
                    else:
                        rec_times[callback] = dt
                        rec_counts[callback] = 1
                except TypeError:  # unhashable callable
                    record(callback, dt)
                executed += 1
        finally:
            for callback, total in rec_times.items():
                profiler.record_bulk(callback, rec_counts[callback], total)
        return executed

    def _loop_instrumented(self, until: Optional[int], version: int) -> int:
        """Dispatch with tracing and/or metrics (and maybe the profiler)."""
        executed = 0
        instr = self._instr
        trace = self._trace
        metrics = self._metrics
        profiler = self._profiler
        cur = self._cur
        while not self._stopped and instr.version == version:
            if not cur:
                if not self._advance():
                    break
                cur = self._cur
                continue
            entry = cur[0]
            timer = entry[2]
            if timer.cancelled:
                heappop(cur)
                self._n_items -= 1
                self._n_cancelled -= 1
                self._recycle(timer)
                continue
            when = entry[0]
            if until is not None and when >= until:
                break
            heappop(cur)
            self._n_items -= 1
            timer.queued = False
            self._now = when
            if trace.enabled:
                trace.emit(
                    when,
                    "kernel",
                    "dispatch",
                    timer_seq=timer.seq,
                    callback=callback_name(timer.callback),
                )
            if profiler.enabled:
                # simlint: allow-wallclock -- profiler attribution only;
                # the measured wall seconds stay in profile.json.
                t0 = perf_counter()
                timer.callback(*timer.args)
                profiler.record(timer.callback, perf_counter() - t0)  # simlint: allow-wallclock -- profiler hook
            else:
                timer.callback(*timer.args)
            executed += 1
            if metrics.enabled:
                metrics.inc("sim", "kernel.events_dispatched")
        return executed

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def peek(self) -> Optional[int]:
        """Return the timestamp of the next pending event, or ``None``."""
        cur = self._cur
        while cur and cur[0][2].cancelled:
            entry = heappop(cur)
            self._n_items -= 1
            self._n_cancelled -= 1
            self._recycle(entry[2])
        if not cur:
            if not self._advance():
                return None
            return self.peek()
        return cur[0][0]

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue (O(1))."""
        return self._n_items - self._n_cancelled

    def queue_depth(self) -> int:
        """Queued timers including lazily-deleted ones (O(1)).

        The cancelled-inclusive sibling of :meth:`pending`: it bounds
        :meth:`pending` from above and tracks memory pressure.
        """
        return self._n_items
