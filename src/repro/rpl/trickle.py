"""The Trickle algorithm (RFC 6206), exactly as specified.

Trickle governs when RPL routers multicast DIOs: the interval doubles from
``Imin`` up to ``Imin * 2**Imax_doublings`` while the network is consistent,
transmissions are suppressed when at least ``k`` consistent messages were
heard this interval, and any inconsistency resets the interval to ``Imin``.

RFC 6206 §4.2, step by step:

1. start an interval of length I;
2. pick t uniformly from [I/2, I); reset counter c to 0;
3. on a consistent reception, increment c;
4. at time t, transmit if c < k;
5. at the end of the interval, double I (capped) and start over;
6. on an inconsistency (or external event), if I > Imin reset I to Imin and
   start a new interval.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.sim.kernel import Simulator, Timer


class TrickleTimer:
    """One Trickle instance driving a transmission callback.

    :param sim: simulation kernel.
    :param rng: randomness for t.
    :param on_transmit: called when the algorithm decides to transmit.
    :param imin_ns: minimum interval (RFC 6550 default for RPL: 8 ms;
        BLE meshes use larger values, see :class:`repro.rpl.rpl.RplConfig`).
    :param imax_doublings: number of doublings (RFC 6550 default 20).
    :param k: redundancy constant (RFC 6550 default 10).
    """

    def __init__(
        self,
        sim: Simulator,
        rng: random.Random,
        on_transmit: Callable[[], None],
        imin_ns: int,
        imax_doublings: int = 20,
        k: int = 10,
    ) -> None:
        if imin_ns <= 0:
            raise ValueError("Imin must be positive")
        if imax_doublings < 0 or k < 1:
            raise ValueError("bad Trickle constants")
        self.sim = sim
        self.rng = rng
        self.on_transmit = on_transmit
        self.imin_ns = imin_ns
        self.imax_ns = imin_ns << imax_doublings
        self.k = k
        self.interval_ns = imin_ns
        #: Dispatch-cluster owner of the timer callbacks; the creator sets
        #: it to the owning node's address (``None`` rides the global lane).
        self.cluster_addr: Optional[int] = None
        self._counter = 0
        self._running = False
        self._t_timer: Optional[Timer] = None
        self._end_timer: Optional[Timer] = None
        # Statistics.
        self.transmissions = 0
        self.suppressions = 0
        self.resets = 0

    # -- control -------------------------------------------------------------

    def start(self) -> None:
        """Begin with the minimum interval (RFC 6206 §4.2 step 1)."""
        if self._running:
            return
        self._running = True
        self.interval_ns = self.imin_ns
        self._begin_interval()

    def stop(self) -> None:
        """Halt the timer (node leaves the DODAG)."""
        self._running = False
        self._cancel()

    def hear_consistent(self) -> None:
        """A consistent message was received (step 3)."""
        self._counter += 1

    def reset(self) -> None:
        """An inconsistency occurred (step 6)."""
        if not self._running:
            return
        self.resets += 1
        if self.interval_ns > self.imin_ns:
            self.interval_ns = self.imin_ns
            self._cancel()
            self._begin_interval()
        # if I == Imin already, RFC 6206 keeps the current interval running

    # -- internals --------------------------------------------------------------

    def _cancel(self) -> None:
        if self._t_timer is not None:
            self._t_timer.cancel()
            self._t_timer = None  # cancelled handles must not be retained
        if self._end_timer is not None:
            self._end_timer.cancel()
            self._end_timer = None

    def _begin_interval(self) -> None:
        self._counter = 0
        half = self.interval_ns // 2
        t = half + self.rng.randrange(0, max(1, self.interval_ns - half))
        self._t_timer = self.sim.after(t, self._fire)
        self._end_timer = self.sim.after(self.interval_ns, self._interval_end)

    def _fire(self) -> None:
        if not self._running:
            return
        if self._counter < self.k:
            self.transmissions += 1
            self.on_transmit()
        else:
            self.suppressions += 1

    def _interval_end(self) -> None:
        if not self._running:
            return
        self.interval_ns = min(self.interval_ns * 2, self.imax_ns)
        self._begin_interval()
