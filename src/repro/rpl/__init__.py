"""RPL-lite: dynamic IPv6 routing for the mesh (the paper's future work).

The paper runs *static* routes (§4.3) and names RPL as the routing protocol
a real deployment would use, leaving "the coupling of BLE topologies with IP
routing" as future work (§9).  This package provides that coupling partner:
a deliberately small storing-mode RPL (RFC 6550) with

* DIO dissemination on a Trickle timer (:mod:`repro.rpl.trickle`,
  RFC 6206, implemented exactly),
* rank-based preferred-parent selection and default-route installation,
* DAO target advertisement up the DODAG with storing-mode host routes,
* parent-loss detection wired to the BLE connection lifecycle.

Together with :mod:`repro.core.dynconn` it forms networks from nothing:
nodes discover each other over BLE advertising, join the DODAG, and heal
after router failures -- the scenario of
``benchmarks/test_ext_dynamic_topology.py``.
"""

from repro.rpl.trickle import TrickleTimer
from repro.rpl.rpl import RplInstance, RplConfig, INFINITE_RANK

__all__ = ["TrickleTimer", "RplInstance", "RplConfig", "INFINITE_RANK"]
