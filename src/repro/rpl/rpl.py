"""Storing-mode RPL-lite (RFC 6550 subset) over ICMPv6.

One instance, one DODAG, OF0-style ranks (``rank = parent_rank +
MinHopRankIncrease``).  DIOs ride link-scope multicast on a Trickle timer;
DAOs unicast reachable targets to the preferred parent, and every router
installs storing-mode host routes for its sub-DODAG -- which reproduces, at
runtime, exactly the static route structure the paper configures by hand
(§4.3: default routes towards the root, host routes down the subtrees).

Deliberate simplifications (documented; this layer is the paper's *future
work*, not its evaluation): a single DODAG version, no DAO-ACKs, poison-
then-rejoin instead of local repair, and loop avoidance by the poison
cascade rather than the full rank-based datapath validation.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Callable, Dict, Optional, TYPE_CHECKING

from repro.net.icmpv6 import Icmpv6Message, RPL_CONTROL
from repro.rpl.trickle import TrickleTimer
from repro.sim.units import MSEC, SEC
from repro.sixlowpan.ipv6 import Ipv6Address

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import Node

#: The unreachable rank (RFC 6550 §17).
INFINITE_RANK = 0xFFFF
#: All-RPL-nodes link-scope multicast group.
ALL_RPL_NODES = Ipv6Address.from_string("ff02::1a")


class RplCode(enum.IntEnum):
    """ICMPv6 type-155 message codes (RFC 6550 §6)."""

    DIS = 0x00
    DIO = 0x01
    DAO = 0x02


_DIO = struct.Struct(">BBHBB2s16s")
_DAO_HEAD = struct.Struct(">BBBB16s")

#: Targets per DAO message.  A router announces its whole sub-DODAG, which
#: at the 500/1000-node scale tier can exceed the 1280-byte IPv6 MTU in a
#: single message (16 bytes per target); DAOs are therefore split into
#: chunks of at most this many targets.  64 keeps the largest chunk
#: (20-byte DAO head + 64 targets + ICMPv6/IPv6 headers) near 1.1 KB,
#: comfortably under the MTU.  Receivers merge target sets additively
#: (RFC 6550 permits targets spread over multiple DAOs), so chunking does
#: not change the installed routes.
DAO_MAX_TARGETS = 64


@dataclass
class RplConfig:
    """Protocol constants.

    Trickle defaults are scaled for BLE meshes (a 75 ms connection interval
    cannot carry 8 ms Trickle bursts): Imin 1 s, 8 doublings (max ~4.3 min),
    redundancy 3.
    """

    instance_id: int = 0
    min_hop_rank_increase: int = 256
    trickle_imin_ns: int = 1 * SEC
    trickle_doublings: int = 8
    trickle_k: int = 3
    #: Delay between a parent change / new target and the DAO transmission
    #: (aggregates rapid changes into one message).
    dao_delay_ns: int = 500 * MSEC
    #: Unjoined nodes multicast a DIS this often to solicit DIOs (RFC 6550
    #: §8.3); neighbours answer by resetting their Trickle timers, so
    #: (re-)joining does not have to wait out a grown Trickle interval.
    dis_interval_ns: int = 3 * SEC
    #: Hysteresis: a candidate must beat the current rank by this much
    #: before a joined node switches parents (prevents flapping).
    parent_switch_threshold: int = 128


class RplInstance:
    """One node's RPL router.

    :param node: the host node (provides ICMPv6, FIB, connections).
    :param is_root: whether this node roots the DODAG.
    :param config: protocol constants.
    """

    def __init__(
        self,
        node: "Node",
        is_root: bool = False,
        config: Optional[RplConfig] = None,
    ) -> None:
        self.node = node
        self.config = config or RplConfig()
        self.is_root = is_root
        self.rank = self.config.min_hop_rank_increase if is_root else INFINITE_RANK
        self.dodag_id: Optional[Ipv6Address] = node.mesh_local if is_root else None
        self.version = 0
        self.parent: Optional[Ipv6Address] = None
        #: Neighbour DIO cache: address -> advertised rank.
        self.neighbor_ranks: Dict[Ipv6Address, int] = {}
        #: Targets this node announces upstream (own address + sub-DODAG).
        self._dao_targets: Dict[Ipv6Address, Ipv6Address] = {}
        self._dao_seq = 0
        self._dao_timer = None
        self._running = False
        self._soliciting = False
        #: Called on every join/parent change: ``on_parent_change(parent)``.
        self.on_parent_change: Optional[Callable[[Optional[Ipv6Address]], None]] = None
        self.trickle = TrickleTimer(
            node.sim,
            node.controller.rng,
            on_transmit=self._send_dio,
            imin_ns=self.config.trickle_imin_ns,
            imax_doublings=self.config.trickle_doublings,
            k=self.config.trickle_k,
        )
        self.trickle.cluster_addr = node.node_id
        # Statistics.
        self.dios_sent = 0
        self.daos_sent = 0
        self.dis_sent = 0
        self.parent_changes = 0
        self.detaches = 0
        node.icmp.register(RPL_CONTROL, self._on_rpl)
        node.controller.conn_close_listeners.append(self._on_conn_close)

    @property
    def cluster_addr(self) -> int:
        """Dispatch-cluster owner (DIS/DAO timers run on the node)."""
        return self.node.node_id

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Begin operating (roots advertise; others solicit with DIS)."""
        self._running = True
        if self.is_root:
            self.trickle.start()
        elif not self._soliciting:
            # A restart racing a still-pending DIS timer must not fork the
            # solicitation chain -- the existing chain keeps going.
            self._solicit()

    def stop(self) -> None:
        """Halt the router."""
        self._running = False
        self.trickle.stop()

    def reset(self) -> None:
        """Forget all DODAG state (node re-arrival after a departure).

        A returning node must rejoin from scratch: stale parent, rank,
        neighbour ranks, and sub-DODAG routes all describe a topology that
        moved on while the node was gone.  The router must be stopped;
        call :meth:`start` afterwards to begin soliciting again.
        """
        if self._running:
            raise RuntimeError("reset() requires a stopped RPL instance")
        if not self.is_root:
            self.rank = INFINITE_RANK
            self.parent = None
            self.dodag_id = None
        self.neighbor_ranks.clear()
        for target in list(self._dao_targets):
            self.node.ip.fib.remove_host_route(target)
        self._dao_targets.clear()
        self.node.ip.fib.clear_default_route()
        if self._dao_timer is not None:
            self._dao_timer.cancel()
            self._dao_timer = None
        self.trickle.stop()

    @property
    def joined(self) -> bool:
        """Whether this node is part of the DODAG."""
        return self.rank < INFINITE_RANK

    def hops_to_root(self) -> Optional[int]:
        """The DODAG depth of this node (0 for the root, None if detached)."""
        if not self.joined:
            return None
        return self.rank // self.config.min_hop_rank_increase - 1

    # -- message encoding ----------------------------------------------------------

    def _dio_body(self, rank: Optional[int] = None) -> bytes:
        assert self.dodag_id is not None
        return _DIO.pack(
            self.config.instance_id,
            self.version,
            rank if rank is not None else self.rank,
            0,  # flags (grounded etc.)
            0,  # DTSN
            b"\x00\x00",
            self.dodag_id.packed,
        )

    def _send_dio(self) -> None:
        if not self._running or self.dodag_id is None:
            return
        self.dios_sent += 1
        self.node.icmp.send(
            ALL_RPL_NODES,
            Icmpv6Message(RPL_CONTROL, RplCode.DIO, self._dio_body()),
            hop_limit=255,
        )

    def _poison(self) -> None:
        """Advertise INFINITE rank so the sub-DODAG detaches too."""
        if self.dodag_id is None:
            return
        self.node.icmp.send(
            ALL_RPL_NODES,
            Icmpv6Message(RPL_CONTROL, RplCode.DIO, self._dio_body(INFINITE_RANK)),
            hop_limit=255,
        )

    def _solicit(self) -> None:
        """Multicast DIS periodically while detached (RFC 6550 §8.3)."""
        if not self._running or self.joined or self.is_root:
            self._soliciting = False
            return
        self._soliciting = True
        self.dis_sent += 1
        self.node.icmp.send(
            ALL_RPL_NODES, Icmpv6Message(RPL_CONTROL, RplCode.DIS, b"\x00\x00")
        )
        self.node.sim.after(self.config.dis_interval_ns, self._solicit)

    def _schedule_dao(self) -> None:
        if self._dao_timer is not None:
            self._dao_timer.cancel()
        self._dao_timer = self.node.sim.after(
            self.config.dao_delay_ns, self._send_dao
        )

    def _send_dao(self) -> None:
        if not self._running or self.parent is None or self.dodag_id is None:
            return
        targets = [self.node.mesh_local] + list(self._dao_targets)
        for start in range(0, len(targets), DAO_MAX_TARGETS):
            chunk = targets[start : start + DAO_MAX_TARGETS]
            self._dao_seq = (self._dao_seq + 1) & 0xFF
            body = _DAO_HEAD.pack(
                self.config.instance_id, 0, 0, self._dao_seq, self.dodag_id.packed
            ) + b"".join(t.packed for t in chunk)
            self.daos_sent += 1
            self.node.icmp.send(
                self.parent, Icmpv6Message(RPL_CONTROL, RplCode.DAO, body)
            )

    # -- message handling ------------------------------------------------------------

    def _on_rpl(self, message: Icmpv6Message, src: Ipv6Address) -> None:
        if not self._running:
            return
        if message.code == RplCode.DIO:
            self._on_dio(message.body, src)
        elif message.code == RplCode.DAO:
            self._on_dao(message.body, src)
        elif message.code == RplCode.DIS:
            self.trickle.reset()

    def _on_dio(self, body: bytes, src: Ipv6Address) -> None:
        if len(body) < _DIO.size:
            return
        instance, version, rank, _flags, _dtsn, _r, dodag_raw = _DIO.unpack_from(body)
        if instance != self.config.instance_id:
            return
        dodag_id = Ipv6Address(dodag_raw)
        if self.is_root:
            return  # the root never re-parents
        if self.dodag_id is not None and dodag_id != self.dodag_id:
            return  # foreign DODAG
        self.neighbor_ranks[src] = rank

        if rank >= INFINITE_RANK:
            # poison: the sender left; if it was our parent, cascade
            if src == self.parent:
                self.detach()
            return

        candidate = rank + self.config.min_hop_rank_increase
        if src == self.parent:
            # refresh from the current parent
            if candidate != self.rank:
                self.rank = candidate
                self.trickle.reset()
            else:
                self.trickle.hear_consistent()
            return
        threshold = (
            self.config.parent_switch_threshold if self.joined else 0
        )
        if candidate + threshold < self.rank:
            self._adopt(src, candidate, dodag_id)
        else:
            self.trickle.hear_consistent()

    def _adopt(self, parent: Ipv6Address, rank: int, dodag_id: Ipv6Address) -> None:
        first_join = not self.joined
        self.parent = parent
        self.rank = rank
        self.dodag_id = dodag_id
        self.parent_changes += 1
        self.node.ip.fib.set_default_route(parent)
        if first_join:
            self.trickle.start()
        self.trickle.reset()
        self._schedule_dao()
        if self.on_parent_change is not None:
            self.on_parent_change(parent)

    def _on_dao(self, body: bytes, src: Ipv6Address) -> None:
        if len(body) < _DAO_HEAD.size:
            return
        instance, _f, _r, _seq, _dodag = _DAO_HEAD.unpack_from(body)
        if instance != self.config.instance_id:
            return
        raw_targets = body[_DAO_HEAD.size :]
        changed = False
        for offset in range(0, len(raw_targets) - 15, 16):
            target = Ipv6Address(raw_targets[offset : offset + 16])
            if target == self.node.mesh_local:
                continue
            # storing mode: descendants are reached via the advertising child
            self.node.ip.fib.add_host_route(target, src)
            if self._dao_targets.get(target) != src:
                self._dao_targets[target] = src
                changed = True
        if changed and not self.is_root:
            self._schedule_dao()

    # -- link events -------------------------------------------------------------------

    def _on_conn_close(self, conn, reason) -> None:
        if not self._running or self.parent is None:
            return
        peer = conn.peer_of(self.node.controller).identity
        if Ipv6Address.mesh_local(peer) == self.parent:
            self.detach()
        else:
            # a child (or sibling) link went: withdraw its subtree
            child = Ipv6Address.mesh_local(peer)
            stale = [t for t, nh in self._dao_targets.items() if nh == child]
            for target in stale:
                del self._dao_targets[target]
                self.node.ip.fib.remove_host_route(target)
            self.neighbor_ranks.pop(child, None)
            if stale and not self.is_root:
                self._schedule_dao()

    def detach(self) -> None:
        """Leave the DODAG: poison the sub-DODAG and await a fresh DIO."""
        if self.is_root or not self.joined:
            return
        self.detaches += 1
        self._poison()
        self.rank = INFINITE_RANK
        self.parent = None
        self.neighbor_ranks.clear()
        # downstream state is stale now
        for target in list(self._dao_targets):
            self.node.ip.fib.remove_host_route(target)
        self._dao_targets.clear()
        self.node.ip.fib.clear_default_route()
        self.trickle.stop()
        if not self._soliciting:
            self._solicit()
        if self.on_parent_change is not None:
            self.on_parent_change(None)
