"""Streaming invariant checkers over the trace.

Each checker consumes a small set of record kinds and asserts one
spec-level property of the simulated stack:

* :class:`RadioExclusiveChecker` -- a node's single radio never services
  two overlapping claims (BT 5.2 Vol 6 Part B §4.5: one air interface);
* :class:`AnchorSpacingChecker` -- consecutive connection-event anchors are
  spaced by the negotiated interval, within window widening plus clock
  drift (§4.5.1 / paper §6.1);
* :class:`SeqAckChecker` -- the 1-bit SN/NESN acknowledgement scheme never
  skips: SN advances only on acknowledgement, NESN only on acceptance
  (§4.5.9);
* :class:`SupervisionChecker` -- the supervision timeout fires iff no
  CRC-valid PDU arrived for the timeout window (§4.5.2);
* :class:`FragmentReassemblyChecker` -- every reassembled 6LoWPAN datagram
  is byte-identical (by CRC32) to a previously fragmented original
  (RFC 4944 §5.3).

Checkers are streaming: they hold O(active connections) state, never the
trace itself, so they run inline as a sink (:class:`CheckerSink`) during
hour-long simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.trace.record import TraceRecord


@dataclass(frozen=True)
class Violation:
    """One invariant failure."""

    time_ns: int
    checker: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"[{self.time_ns}ns] {self.checker}: {self.message}"


class Checker:
    """Base class: collects violations, declares consumed record kinds."""

    name = "checker"
    #: Schema keys (``layer.kind``) this checker wants to observe.
    consumes: Tuple[str, ...] = ()

    def __init__(self) -> None:
        self.violations: List[Violation] = []
        self.records_seen = 0

    def observe(self, record: TraceRecord) -> None:  # pragma: no cover
        raise NotImplementedError

    def finish(self) -> None:
        """End-of-trace hook (default: nothing)."""

    def fail(self, record: TraceRecord, message: str) -> None:
        self.violations.append(Violation(record.time_ns, self.name, message))


class RadioExclusiveChecker(Checker):
    """A node's radio claims never overlap."""

    name = "radio-exclusive"
    consumes = ("ble.radio_claim",)

    def __init__(self) -> None:
        super().__init__()
        self._busy_until: Dict[str, int] = {}

    def observe(self, record: TraceRecord) -> None:
        self.records_seen += 1
        node = record.get("node")
        start = record.get("start")
        end = record.get("end")
        busy = self._busy_until.get(node, 0)
        if start < busy:
            self.fail(
                record,
                f"radio {node}: claim [{start}, {end}) overlaps previous "
                f"claim ending at {busy}",
            )
        if end < start:
            self.fail(record, f"radio {node}: negative claim [{start}, {end})")
        self._busy_until[node] = max(busy, end)


class AnchorSpacingChecker(Checker):
    """Consecutive anchors are one negotiated interval apart.

    The tolerance is the event's window widening (the spec's allowance for
    accumulated sleep-clock error) plus a 100 ppm drift term and a 1 µs
    slack for integer rounding in the drifting-clock conversion.
    """

    name = "anchor-spacing"
    consumes = ("ble.conn_event", "ble.conn_close")

    def __init__(self) -> None:
        super().__init__()
        self._last: Dict[int, Tuple[int, int]] = {}  # conn -> (event, anchor)

    def observe(self, record: TraceRecord) -> None:
        self.records_seen += 1
        conn = record.get("conn")
        if record.kind == "conn_close":
            self._last.pop(conn, None)
            return
        event = record.get("event")
        anchor = record.get("anchor")
        prev = self._last.get(conn)
        self._last[conn] = (event, anchor)
        if prev is None:
            return
        prev_event, prev_anchor = prev
        if event != prev_event + 1:
            self.fail(
                record,
                f"conn {conn}: event counter jumped {prev_event} -> {event}",
            )
            return
        interval = record.get("interval_ns")
        widening = record.get("widening", 0)
        spacing = anchor - prev_anchor
        tolerance = widening + interval // 10_000 + 1_000
        if abs(spacing - interval) > tolerance:
            self.fail(
                record,
                f"conn {conn} event {event}: anchor spacing {spacing}ns "
                f"deviates from interval {interval}ns by more than "
                f"{tolerance}ns",
            )


class SeqAckChecker(Checker):
    """The 1-bit SN/NESN handshake never skips a sequence number.

    Mirrors the spec's acknowledgement state machine per (connection,
    role): a transmitted PDU must carry exactly the model's SN/NESN; SN
    toggles only when the peer's NESN acknowledged it; NESN toggles only
    when a new-SN PDU was accepted.
    """

    name = "seq-ack"
    consumes = ("ble.conn_open", "ble.ll_tx", "ble.ll_rx", "ble.conn_close")

    def __init__(self) -> None:
        super().__init__()
        #: (conn, role) -> [sn, nesn] model state.
        self._state: Dict[Tuple[int, str], List[int]] = {}

    def _model(self, conn: int, role: str) -> List[int]:
        return self._state.setdefault((conn, role), [0, 0])

    def observe(self, record: TraceRecord) -> None:
        self.records_seen += 1
        conn = record.get("conn")
        if record.kind == "conn_open":
            self._state[(conn, "coordinator")] = [0, 0]
            self._state[(conn, "subordinate")] = [0, 0]
            return
        if record.kind == "conn_close":
            self._state.pop((conn, "coordinator"), None)
            self._state.pop((conn, "subordinate"), None)
            return
        role = record.get("role")
        model = self._model(conn, role)
        if record.kind == "ll_tx":
            if record.get("sn") != model[0]:
                self.fail(
                    record,
                    f"conn {conn} {role}: transmitted SN {record.get('sn')} "
                    f"but the acknowledgement state machine expects "
                    f"{model[0]} (SN advanced without an ack)",
                )
                model[0] = record.get("sn")  # resync to keep reporting useful
            if record.get("nesn") != model[1]:
                self.fail(
                    record,
                    f"conn {conn} {role}: transmitted NESN "
                    f"{record.get('nesn')} but the state machine expects "
                    f"{model[1]} (NESN moved without accepting a PDU)",
                )
                model[1] = record.get("nesn")
            return
        # ll_rx: the receiving role observed a CRC-valid peer PDU and will
        # update its SN/NESN exactly as the spec prescribes.
        pdu_sn = record.get("sn")
        pdu_nesn = record.get("nesn")
        my_sn = record.get("my_sn")
        my_nesn = record.get("my_nesn")
        if my_sn != model[0] or my_nesn != model[1]:
            self.fail(
                record,
                f"conn {conn} {role}: receiver state (sn={my_sn}, "
                f"nesn={my_nesn}) diverged from the model ({model[0]}, "
                f"{model[1]})",
            )
            model[0], model[1] = my_sn, my_nesn
        if pdu_nesn != model[0]:  # peer acknowledged our outstanding PDU
            model[0] ^= 1
        if pdu_sn == model[1]:  # new data accepted
            model[1] ^= 1


class SupervisionChecker(Checker):
    """Supervision timeout fires iff no valid PDU for the timeout window."""

    name = "supervision"
    consumes = (
        "ble.conn_open",
        "ble.ll_rx",
        "ble.conn_event",
        "ble.conn_event_end",
        "ble.conn_close",
    )

    def __init__(self) -> None:
        super().__init__()
        #: (conn, role) -> true time of the last CRC-valid reception.
        self._last_rx: Dict[Tuple[int, str], int] = {}
        #: conns whose last event ended with a timeout-sized silence; the
        #: connection MUST close before its next event.
        self._pending_close: Set[int] = set()

    def observe(self, record: TraceRecord) -> None:
        self.records_seen += 1
        conn = record.get("conn")
        kind = record.kind
        if kind == "conn_open":
            anchor0 = record.get("anchor0")
            self._last_rx[(conn, "coordinator")] = anchor0
            self._last_rx[(conn, "subordinate")] = anchor0
            return
        if kind == "ll_rx":
            self._last_rx[(conn, record.get("role"))] = record.time_ns
            return
        if kind == "conn_event":
            if conn in self._pending_close:
                self.fail(
                    record,
                    f"conn {conn}: connection event ran although the "
                    f"supervision timeout expired at the previous event",
                )
                self._pending_close.discard(conn)
            return
        if kind == "conn_event_end":
            now = record.get("now")
            timeout = record.get("timeout_ns")
            gaps = [
                now - self._last_rx.get((conn, role), now)
                for role in ("coordinator", "subordinate")
            ]
            if max(gaps) >= timeout:
                self._pending_close.add(conn)
            return
        if kind == "conn_close":
            if record.get("reason") == "supervision-timeout":
                if conn not in self._pending_close:
                    self.fail(
                        record,
                        f"conn {conn}: closed for supervision timeout "
                        f"without a timeout-sized silence in the trace",
                    )
            self._pending_close.discard(conn)
            self._last_rx.pop((conn, "coordinator"), None)
            self._last_rx.pop((conn, "subordinate"), None)


class FragmentReassemblyChecker(Checker):
    """Reassembled datagrams match a fragmented original byte-for-byte."""

    name = "frag-reassembly"
    consumes = ("sixlo.frag_tx", "sixlo.reassembled")

    def __init__(self) -> None:
        super().__init__()
        #: tag -> list of (size, digest) of fragmented originals.
        self._sent: Dict[int, List[Tuple[int, str]]] = {}

    def observe(self, record: TraceRecord) -> None:
        self.records_seen += 1
        tag = record.get("tag")
        if record.kind == "frag_tx":
            self._sent.setdefault(tag, []).append(
                (record.get("size"), record.get("digest"))
            )
            return
        originals = self._sent.get(tag)
        if originals is None:
            return  # origin outside the traced window; nothing to compare
        entry = (record.get("size"), record.get("digest"))
        if entry not in originals:
            self.fail(
                record,
                f"tag {tag}: reassembled datagram (size={entry[0]}, "
                f"crc32={entry[1]}) matches no fragmented original",
            )


class ReattachChecker(Checker):
    """Churn/rotation hygiene: departed nodes are silent, resolutions unique.

    Two spec-level properties of the workload layer
    (:mod:`repro.workload`):

    * **departed silence** -- between a ``workload.depart`` and the
      matching ``workload.arrive``, no data PDU is delivered to the node
      (no ``sixlo.rx`` with its id): a graceful departure closed every
      link, a fail-stop silenced the radio, and either way nothing may
      reach the stack of a node that is gone;
    * **resolution uniqueness** -- every ``ble.rpa_resolve`` maps a peer
      identity to an on-air address some ``workload.rotate`` actually
      assigned, and each observer resolves a given ``(identity, new)``
      pair at most once (exactly once per rotation per observer that
      hears the rotated node at all).
    """

    name = "reattach"
    consumes = (
        "workload.depart",
        "workload.arrive",
        "workload.rotate",
        "sixlo.rx",
        "ble.rpa_resolve",
    )

    def __init__(self) -> None:
        super().__init__()
        self._departed: Set[int] = set()
        #: identity -> every on-air address a rotation ever assigned it.
        self._assigned: Dict[int, Set[int]] = {}
        #: (observer, identity, new_addr) resolutions already seen.
        self._resolved: Set[Tuple[str, int, int]] = set()
        #: Whether any rotate record was seen; without one (e.g. a layer
        #: filter dropped the workload layer) the assignment cross-check
        #: would false-positive, so it only arms once rotations are visible.
        self._saw_rotation = False

    def observe(self, record: TraceRecord) -> None:
        self.records_seen += 1
        kind = record.kind
        if kind == "depart":
            self._departed.add(record.get("id"))
            return
        if kind == "arrive":
            self._departed.discard(record.get("id"))
            return
        if kind == "rotate":
            ident = record.get("id")
            self._assigned.setdefault(ident, {ident}).add(record.get("new"))
            self._saw_rotation = True
            return
        if kind == "rx":
            node = record.get("node")
            if node in self._departed:
                self.fail(
                    record,
                    f"node {node}: data PDU delivered while departed",
                )
            return
        # ble.rpa_resolve
        observer = record.get("node")
        ident = record.get("identity")
        new = record.get("new")
        assigned = self._assigned.get(ident)
        if self._saw_rotation and (assigned is None or new not in assigned):
            self.fail(
                record,
                f"{observer}: resolved identity {ident} to address {new}, "
                f"which no rotation ever assigned",
            )
        key = (observer, ident, new)
        if key in self._resolved:
            self.fail(
                record,
                f"{observer}: identity {ident} -> {new} resolved twice "
                f"(must be exactly once per rotation per observer)",
            )
        self._resolved.add(key)


def default_checkers() -> List[Checker]:
    """A fresh instance of every built-in checker."""
    return [
        RadioExclusiveChecker(),
        AnchorSpacingChecker(),
        SeqAckChecker(),
        SupervisionChecker(),
        FragmentReassemblyChecker(),
        ReattachChecker(),
    ]


class CheckerSink:
    """A sink that dispatches records to a suite of checkers."""

    def __init__(self, checkers: Optional[List[Checker]] = None) -> None:
        self.checkers = default_checkers() if checkers is None else checkers
        self._dispatch: Dict[str, List[Checker]] = {}
        for checker in self.checkers:
            for key in checker.consumes:
                self._dispatch.setdefault(key, []).append(checker)
        self._finished = False

    def accept(self, record: TraceRecord) -> None:
        for checker in self._dispatch.get(record.key, ()):
            checker.observe(record)

    def finish(self) -> None:
        """Run every checker's end-of-trace hook (idempotent)."""
        if not self._finished:
            self._finished = True
            for checker in self.checkers:
                checker.finish()

    def close(self) -> None:
        self.finish()

    @property
    def violations(self) -> List[Violation]:
        """All violations, in detection order across checkers."""
        out: List[Violation] = []
        for checker in self.checkers:
            out.extend(checker.violations)
        out.sort(key=lambda v: v.time_ns)
        return out


def check_records(records) -> List[Violation]:
    """Run the default checker suite over an in-memory record sequence."""
    sink = CheckerSink()
    for record in records:
        sink.accept(record)
    sink.finish()
    return sink.violations
