"""Trace sinks: ring buffer, JSONL stream, binary packet dump.

All sinks implement ``accept(record)`` and ``close()``.  The JSONL form is
the interchange format (one header line, then one object per record, field
order preserved); the packet dump is a compact pcap-like binary capture of
every record that carries raw on-link bytes in a ``data`` field, with
:func:`read_packet_dump` as the bundled decoder.
"""

from __future__ import annotations

import io
import json
import struct
from collections import deque
from pathlib import Path
from typing import Deque, Iterable, Iterator, List, Optional, Tuple, Union

from repro.trace.record import TraceRecord, schema_version

#: JSONL header: first line of every trace file.
JSONL_FORMAT_VERSION = 1

#: Packet dump file magic + format version.
PDUMP_MAGIC = b"RTRC"
PDUMP_VERSION = 1

_PDUMP_HEADER = struct.Struct("<4sHH")  # magic, version, reserved
_PDUMP_RECORD = struct.Struct("<QBBI")  # time_ns, layer_len, kind_len, data_len


def record_to_json(record: TraceRecord) -> dict:
    """The canonical JSON object form of one record.

    Field order is preserved (emission order), ``bytes`` values are
    hex-encoded, and the schema version rides along as ``v`` so a consumer
    can reject records it does not understand.
    """
    obj: dict = {
        "t": record.time_ns,
        "layer": record.layer,
        "kind": record.kind,
        "seq": record.seq,
        "v": record.version,
    }
    for key, value in record.fields:
        if isinstance(value, (bytes, bytearray)):
            value = bytes(value).hex()
        obj[key] = value
    return obj


def record_to_jsonl_line(record: TraceRecord) -> str:
    """One JSONL line (no trailing newline)."""
    return json.dumps(record_to_json(record), separators=(",", ":"))


def jsonl_header() -> str:
    """The file-identifying first line of a JSONL trace."""
    return json.dumps(
        {"trace": "repro.trace", "format": JSONL_FORMAT_VERSION},
        separators=(",", ":"),
    )


def records_to_jsonl(records: Iterable[TraceRecord]) -> str:
    """A complete JSONL trace document (header + records)."""
    lines = [jsonl_header()]
    lines.extend(record_to_jsonl_line(r) for r in records)
    return "\n".join(lines) + "\n"


class RingBufferSink:
    """Keeps the most recent ``capacity`` records in memory.

    The default capacity is unbounded (``None``) -- the experiment runner
    uses this sink to ship a run's full trace through
    :class:`~repro.exp.portable.PortableResult`.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self.dropped = 0
        self._capacity = capacity

    def accept(self, record: TraceRecord) -> None:
        if self._capacity is not None and len(self._records) == self._capacity:
            self.dropped += 1
        self._records.append(record)

    def records(self) -> List[TraceRecord]:
        """The buffered records, oldest first."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def close(self) -> None:
        """No-op (memory sink)."""


class JsonlSink:
    """Streams records to a JSONL file as they arrive."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh: Optional[io.TextIOBase] = self.path.open("w")
        self._fh.write(jsonl_header() + "\n")
        self.records_written = 0

    def accept(self, record: TraceRecord) -> None:
        if self._fh is None:
            raise RuntimeError("sink is closed")
        self._fh.write(record_to_jsonl_line(record) + "\n")
        self.records_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def read_jsonl(path: Union[str, Path]) -> List[dict]:
    """Decode a JSONL trace file back into record objects.

    Validates the header and each record's schema version against the
    current registry; raises ``ValueError`` on mismatch.
    """
    lines = Path(path).read_text().splitlines()
    if not lines:
        raise ValueError("empty trace file")
    header = json.loads(lines[0])
    if header.get("trace") != "repro.trace":
        raise ValueError("not a repro.trace JSONL file")
    if header.get("format") != JSONL_FORMAT_VERSION:
        raise ValueError(f"unsupported trace format {header.get('format')}")
    records = []
    for line in lines[1:]:
        obj = json.loads(line)
        expected = schema_version(obj["layer"], obj["kind"])
        if expected and obj.get("v") != expected:
            raise ValueError(
                f"schema mismatch for {obj['layer']}.{obj['kind']}: "
                f"file has v{obj.get('v')}, registry has v{expected}"
            )
        records.append(obj)
    return records


class PacketDumpSink:
    """Binary capture of records carrying on-link bytes (``data`` field).

    Layout: one file header (magic, version), then per packet::

        u64 time_ns | u8 layer_len | u8 kind_len | u32 data_len
        layer bytes | kind bytes | data bytes

    Records without a ``data`` field are skipped, so this sink can share a
    tracer with full-trace sinks.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh: Optional[io.BufferedWriter] = self.path.open("wb")
        self._fh.write(_PDUMP_HEADER.pack(PDUMP_MAGIC, PDUMP_VERSION, 0))
        self.packets_written = 0

    def accept(self, record: TraceRecord) -> None:
        data = record.get("data")
        if data is None:
            return
        if self._fh is None:
            raise RuntimeError("sink is closed")
        if isinstance(data, str):  # pre-hexed (e.g. replayed from JSONL)
            data = bytes.fromhex(data)
        layer = record.layer.encode("ascii")
        kind = record.kind.encode("ascii")
        self._fh.write(
            _PDUMP_RECORD.pack(record.time_ns, len(layer), len(kind), len(data))
        )
        self._fh.write(layer)
        self._fh.write(kind)
        self._fh.write(bytes(data))
        self.packets_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def read_packet_dump(
    path: Union[str, Path],
) -> Iterator[Tuple[int, str, str, bytes]]:
    """Decode a packet dump; yields ``(time_ns, layer, kind, data)``."""
    raw = Path(path).read_bytes()
    if len(raw) < _PDUMP_HEADER.size:
        raise ValueError("truncated packet dump header")
    magic, version, _ = _PDUMP_HEADER.unpack_from(raw)
    if magic != PDUMP_MAGIC:
        raise ValueError("not a repro.trace packet dump")
    if version != PDUMP_VERSION:
        raise ValueError(f"unsupported packet dump version {version}")
    offset = _PDUMP_HEADER.size
    while offset < len(raw):
        if offset + _PDUMP_RECORD.size > len(raw):
            raise ValueError("truncated packet record header")
        time_ns, layer_len, kind_len, data_len = _PDUMP_RECORD.unpack_from(
            raw, offset
        )
        offset += _PDUMP_RECORD.size
        end = offset + layer_len + kind_len + data_len
        if end > len(raw):
            raise ValueError("truncated packet record body")
        layer = raw[offset : offset + layer_len].decode("ascii")
        offset += layer_len
        kind = raw[offset : offset + kind_len].decode("ascii")
        offset += kind_len
        data = raw[offset : offset + data_len]
        offset += data_len
        yield time_ns, layer, kind, data
