"""Typed trace records with stable schemas.

A :class:`TraceRecord` is one structured observation from inside the
simulator: a timer dispatch, a connection event, a K-frame, an IP hop.
Records carry a ``(layer, kind)`` pair that identifies their schema in
:data:`SCHEMAS`; every schema has an explicit version so downstream
consumers (golden traces, invariant checkers, external tooling) can detect
incompatible producers instead of silently misreading fields.

This module -- like the whole ``repro.trace`` package -- depends only on
the standard library: the kernel itself imports it, so it must sit below
every other layer of the stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

#: Schema registry: ``"layer.kind" -> version``.  Bump a version whenever a
#: record's field set or meaning changes; golden traces embed the versions
#: through :func:`repro.trace.sinks.record_to_json`.
SCHEMAS = {
    # -- kernel -----------------------------------------------------------
    "kernel.dispatch": 1,  # timer_seq, callback
    # -- PHY --------------------------------------------------------------
    "phy.packet": 1,  # channel, nbytes, lost
    # -- BLE link layer ---------------------------------------------------
    "ble.conn_open": 1,  # conn, coordinator, subordinate, interval_ns,
    #                      anchor0, timeout_ns
    "ble.conn_event": 1,  # conn, event, anchor, channel, interval_ns,
    #                       widening, window_hit, coord_runs, sub_listens
    "ble.conn_event_end": 1,  # conn, event, end, now, timeout_ns
    "ble.conn_close": 1,  # conn, reason
    "ble.param_update": 1,  # conn, interval_ns
    "ble.ll_tx": 1,  # conn, role, sn, nesn, len, retx
    "ble.ll_rx": 1,  # conn, role, sn, nesn, len, my_sn, my_nesn
    "ble.crc_loss": 1,  # conn, role, channel, len
    "ble.radio_claim": 1,  # node, start, end
    "ble.radio_deny": 1,  # node
    "ble.rpa_resolve": 1,  # node, identity, old, new
    # -- L2CAP ------------------------------------------------------------
    "l2cap.kframe_tx": 1,  # conn, node, frame_len, credits_left, last
    "l2cap.credits": 1,  # conn, node, granted
    "l2cap.sdu_rx": 1,  # conn, node, len, frames
    "l2cap.sdu_sent": 1,  # conn, node, len
    # -- 6LoWPAN ----------------------------------------------------------
    "sixlo.tx": 1,  # node, peer, in_len, out_len, data
    "sixlo.rx": 1,  # node, peer, len, data
    "sixlo.frag_tx": 1,  # tag, size, n_frags, digest
    "sixlo.frag_rx": 1,  # sender, tag, offset, len
    "sixlo.reassembled": 1,  # sender, tag, size, digest
    "sixlo.reasm_timeout": 1,  # sender, tag
    # -- IP ---------------------------------------------------------------
    "ip.originate": 1,  # node, dst
    "ip.forward": 1,  # node, dst, hop_limit
    "ip.deliver": 1,  # node, proto
    "ip.drop": 1,  # node, cause, dst
    # -- CoAP -------------------------------------------------------------
    "coap.request": 1,  # node, mid, token, path, confirmable
    "coap.response": 1,  # node, mid, rtt_ns
    "coap.retransmit": 1,  # node, mid, retransmits_left
    "coap.timeout": 1,  # node, mid
    # -- workload (scenario dynamics; see repro.workload) ------------------
    "workload.depart": 1,  # node, id, fail
    "workload.arrive": 1,  # node, id
    "workload.reattach": 1,  # node, id, latency_ns
    "workload.rotate": 1,  # node, id, old, new
    "workload.move": 1,  # node, x, y
}


def schema_version(layer: str, kind: str) -> int:
    """Version of the ``layer.kind`` schema (0 for unregistered kinds)."""
    return SCHEMAS.get(f"{layer}.{kind}", 0)


def callback_name(callback: Any) -> str:
    """A deterministic, address-free label for a timer callback.

    ``repr(bound_method)`` embeds the object's memory address, which would
    make otherwise identical traces differ between runs; the qualified name
    is stable across processes.
    """
    name = getattr(callback, "__qualname__", None)
    if name is None:
        func = getattr(callback, "func", None)  # functools.partial
        if func is not None:
            return callback_name(func)
        name = type(callback).__name__
    return name


@dataclass(frozen=True)
class TraceRecord:
    """One structured observation.

    :param time_ns: true simulation time of the observation.
    :param layer: producing layer (``kernel``, ``phy``, ``ble``, ...).
    :param kind: record kind within the layer.
    :param seq: dense per-run emission index (total order tie-breaker).
    :param fields: the schema-specific payload as an ordered tuple.
    """

    time_ns: int
    layer: str
    kind: str
    seq: int
    fields: Tuple[Tuple[str, Any], ...]

    @property
    def key(self) -> str:
        """The schema key, ``layer.kind``."""
        return f"{self.layer}.{self.kind}"

    @property
    def version(self) -> int:
        """Schema version of this record."""
        return schema_version(self.layer, self.kind)

    def get(self, name: str, default: Any = None) -> Any:
        """Field lookup by name."""
        for k, v in self.fields:
            if k == name:
                return v
        return default
