"""The process-wide tracer.

Instrumented code paths throughout the stack guard their emissions with::

    if TRACE.enabled:
        TRACE.emit(t, "ble", "ll_tx", conn=..., ...)

:data:`TRACE` is a module-level singleton that is *never replaced*, so the
hot-path cost with tracing disabled is one attribute load and one branch --
the near-zero-overhead requirement.  :meth:`Tracer.configure` arms it with
sinks (ring buffer, JSONL file, packet dump, invariant checkers);
:meth:`Tracer.reset` disarms it again.  The experiment runner brackets every
traced run with this pair, so worker processes of the parallel engine see
exactly the same configuration as an in-process run -- which is what makes
traces byte-identical across worker counts.

Connection ids are normalized on emission: :class:`repro.ble.conn.Connection`
draws its ``conn_id`` from a process-global counter that is *not* reset
between runs, so raw ids would differ between a fresh process and a warm
one.  The tracer maps them to dense first-seen indices per configuration.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Set

from repro.obs.instr import INSTR
from repro.trace.record import TraceRecord


class Tracer:
    """Emission gate, layer filter, and fan-out to sinks."""

    __slots__ = (
        "enabled",
        "_sinks",
        "_sim",
        "_layers",
        "_conn_ids",
        "_seq",
        "records_emitted",
    )

    def __init__(self) -> None:
        #: The hot-path gate; instrumented code checks this before building
        #: any record fields.
        self.enabled = False
        self._sinks: tuple = ()
        self._sim = None
        self._layers: Optional[Set[str]] = None
        self._conn_ids: Dict[int, int] = {}
        self._seq = 0
        #: Total records emitted since the last :meth:`configure`.
        self.records_emitted = 0

    def configure(
        self,
        sinks: Iterable[Any],
        sim: Any = None,
        layers: Optional[Iterable[str]] = None,
    ) -> None:
        """Arm the tracer: install sinks, reset per-run state, enable.

        :param sinks: objects with ``accept(record)``; closed by the caller.
        :param sim: optional simulator for :meth:`now` (layers without a
            time source of their own, e.g. the IP stack, use it).
        :param layers: restrict emission to these layers (``None`` = all).
        """
        self._sinks = tuple(sinks)
        self._sim = sim
        self._layers = set(layers) if layers is not None else None
        self._conn_ids = {}
        self._seq = 0
        self.records_emitted = 0
        self.enabled = True
        INSTR.bump()

    def attach_sim(self, sim: Any) -> None:
        """Late-bind the simulator (the runner knows it after net build)."""
        self._sim = sim

    def reset(self) -> None:
        """Disarm the tracer and drop sink references (sinks stay open)."""
        self.enabled = False
        INSTR.bump()
        self._sinks = ()
        self._sim = None
        self._layers = None
        self._conn_ids = {}

    def now(self) -> int:
        """Current simulation time, or 0 when no simulator is attached."""
        sim = self._sim
        return sim.now if sim is not None else 0

    def conn_ref(self, conn_id: int) -> int:
        """Dense per-run id for a process-global connection id."""
        ref = self._conn_ids.get(conn_id)
        if ref is None:
            ref = len(self._conn_ids)
            self._conn_ids[conn_id] = ref
        return ref

    def emit(self, time_ns: Optional[int], layer: str, kind: str, **fields: Any) -> None:
        """Build one record and fan it out to every sink.

        ``time_ns=None`` stamps the record with :meth:`now`.  The reserved
        ``conn`` field is normalized through :meth:`conn_ref`.
        """
        if not self.enabled:
            return
        if self._layers is not None and layer not in self._layers:
            return
        if time_ns is None:
            time_ns = self.now()
        conn = fields.get("conn")
        if conn is not None:
            fields["conn"] = self.conn_ref(conn)
        record = TraceRecord(time_ns, layer, kind, self._seq, tuple(fields.items()))
        self._seq += 1
        self.records_emitted += 1
        for sink in self._sinks:
            sink.accept(record)


#: The singleton every instrumented module imports.  Never rebind it.
TRACE = Tracer()
