"""Cross-layer structured tracing and invariant checking.

The paper's central observation -- connection shading -- was only found
because the authors' firmware dumped structured per-connection-event
timelines (§4.2).  This package is the simulation counterpart: every layer
of the stack emits typed :class:`~repro.trace.record.TraceRecord` s through
the process-wide :data:`~repro.trace.tracer.TRACE` singleton into pluggable
sinks, and streaming invariant checkers assert spec-level properties over
the stream.

The package depends only on the standard library so that even
``repro.sim.kernel`` can import it without cycles.
"""

from repro.trace.record import SCHEMAS, TraceRecord, callback_name, schema_version
from repro.trace.tracer import TRACE, Tracer
from repro.trace.sinks import (
    JsonlSink,
    PacketDumpSink,
    RingBufferSink,
    jsonl_header,
    read_jsonl,
    read_packet_dump,
    record_to_json,
    record_to_jsonl_line,
    records_to_jsonl,
)
from repro.trace.invariants import (
    AnchorSpacingChecker,
    Checker,
    CheckerSink,
    FragmentReassemblyChecker,
    RadioExclusiveChecker,
    SeqAckChecker,
    SupervisionChecker,
    Violation,
    check_records,
    default_checkers,
)

__all__ = [
    "SCHEMAS",
    "TraceRecord",
    "callback_name",
    "schema_version",
    "TRACE",
    "Tracer",
    "JsonlSink",
    "PacketDumpSink",
    "RingBufferSink",
    "jsonl_header",
    "read_jsonl",
    "read_packet_dump",
    "record_to_json",
    "record_to_jsonl_line",
    "records_to_jsonl",
    "AnchorSpacingChecker",
    "Checker",
    "CheckerSink",
    "FragmentReassemblyChecker",
    "RadioExclusiveChecker",
    "SeqAckChecker",
    "SupervisionChecker",
    "Violation",
    "check_records",
    "default_checkers",
]
