"""repro -- Multi-hop IPv6 over BLE, in simulation.

A from-scratch discrete-event reproduction of *"Mind the Gap: Multi-hop IPv6
over BLE in the IoT"* (Petersen, Schmidt, Wählisch; CoNEXT '21): the full
Figure-5 stack -- BLE link layer with connection events and drifting clocks,
L2CAP credit-based channels, 6LoWPAN/IPHC, IPv6 forwarding, UDP, CoAP, the
statconn connection manager -- plus the IEEE 802.15.4 comparison stack, the
energy model, and an experiment framework that regenerates every figure and
table of the paper's evaluation.

Quick start::

    from repro import ExperimentConfig, run_experiment

    result = run_experiment(ExperimentConfig(duration_s=600))
    print(result.coap_pdr(), result.num_connection_losses())

See ``examples/`` for richer entry points and ``benchmarks/`` for the
figure-by-figure reproduction harness.
"""

from repro.core import (
    Node,
    RandomWindowIntervalPolicy,
    Statconn,
    StatconnConfig,
    StaticIntervalPolicy,
)
from repro.exp import ExperimentConfig, ExperimentResult, run_experiment
from repro.testbed import (
    BleNetwork,
    Consumer,
    Producer,
    TrafficConfig,
    line_topology_edges,
    star_topology_edges,
    tree_topology_edges,
)

__version__ = "1.0.0"

__all__ = [
    "Node",
    "Statconn",
    "StatconnConfig",
    "StaticIntervalPolicy",
    "RandomWindowIntervalPolicy",
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "BleNetwork",
    "Producer",
    "Consumer",
    "TrafficConfig",
    "tree_topology_edges",
    "line_topology_edges",
    "star_topology_edges",
    "__version__",
]
