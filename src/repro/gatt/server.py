"""A minimal GATT database: primary services with readable values."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class Service:
    """One primary service occupying a handle range."""

    uuid: int
    start: int
    end: int
    #: Readable attribute values inside the range: handle -> bytes.
    values: Dict[int, bytes] = field(default_factory=dict)


class GattServer:
    """One node's GATT database (shared across its connections).

    Handles are allocated sequentially; each service reserves its declared
    handle plus one handle per value.
    """

    def __init__(self) -> None:
        self.services: List[Service] = []
        self._next_handle = 1

    def add_service(self, uuid: int, values: Optional[List[bytes]] = None) -> Service:
        """Register a primary service; returns the allocated service."""
        values = values or []
        start = self._next_handle
        end = start + len(values)
        service = Service(
            uuid=uuid,
            start=start,
            end=end,
            values={start + 1 + i: v for i, v in enumerate(values)},
        )
        self.services.append(service)
        self._next_handle = end + 1
        return service

    def services_in_range(self, start: int, end: int) -> List[Service]:
        """Primary services whose declaration falls in [start, end]."""
        return [s for s in self.services if start <= s.start <= end]

    def has_service(self, uuid: int) -> bool:
        """Whether a service with ``uuid`` is registered."""
        return any(s.uuid == uuid for s in self.services)

    def read(self, handle: int) -> Optional[bytes]:
        """The value at ``handle`` (service declarations read their UUID)."""
        for service in self.services:
            if handle == service.start:
                return service.uuid.to_bytes(2, "little")
            value = service.values.get(handle)
            if value is not None:
                return value
        return None
