"""GATT / ATT and the Internet Protocol Support Service (Figure 2).

The paper's stack diagram shows GATT and the **Internet Protocol Support
Service (IPSS)** beside L2CAP: before treating a peer as an IP router, a
node checks (via GATT service discovery) that the peer exposes the IPSS --
"the Internet Service Support Profile specifies how nodes can check for
neighbor's IP capabilities" (§3).  Table 2 lists GATT-service support as a
differentiator between IP-over-BLE implementations.

* :mod:`repro.gatt.att` -- the Attribute Protocol subset needed for service
  discovery (Exchange MTU, Read By Group Type, Read, Error Response) over
  the fixed L2CAP channel 0x0004,
* :mod:`repro.gatt.server` / :mod:`repro.gatt.client` -- a minimal GATT
  database and discovery client,
* :mod:`repro.gatt.ipss` -- the IPSS definition (UUID 0x1820) and the
  IP-capability check used by the connection managers.
"""

from repro.gatt.att import AttServer, AttClient
from repro.gatt.server import GattServer, Service
from repro.gatt.client import GattClient
from repro.gatt.ipss import IPSS_UUID, add_ipss, check_ip_support

__all__ = [
    "AttServer",
    "AttClient",
    "GattServer",
    "Service",
    "GattClient",
    "IPSS_UUID",
    "add_ipss",
    "check_ip_support",
]
