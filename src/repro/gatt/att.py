"""The Attribute Protocol (ATT) subset GATT discovery needs.

ATT rides the fixed L2CAP channel 0x0004.  Implemented opcodes:

===========================  ======  =======================================
Exchange MTU Request/Resp.   02/03   negotiate the ATT_MTU
Read By Group Type Req/Rsp   10/11   primary-service discovery (UUID 0x2800)
Read Request/Response        0A/0B   read one attribute value
Error Response               01      e.g. Attribute Not Found (0x0A)
===========================  ======  =======================================

All requests are strictly sequential per the spec (one outstanding request
per ATT bearer); the client enforces that.
"""

from __future__ import annotations

import struct
from typing import Callable, List, Optional, Tuple

from repro.ble.controller import BleController
from repro.l2cap.coc import L2capCoc

#: The ATT fixed channel id.
ATT_CID = 0x0004

# opcodes
OP_ERROR = 0x01
OP_MTU_REQ = 0x02
OP_MTU_RSP = 0x03
OP_READ_BY_GROUP_REQ = 0x10
OP_READ_BY_GROUP_RSP = 0x11
OP_READ_REQ = 0x0A
OP_READ_RSP = 0x0B

#: GATT primary-service group type.
PRIMARY_SERVICE_UUID = 0x2800

# error codes
ERR_ATTRIBUTE_NOT_FOUND = 0x0A
ERR_INVALID_HANDLE = 0x01

#: Default ATT_MTU (BT 5.2 Vol 3 Part F §3.2.8).
DEFAULT_ATT_MTU = 23


class AttServer:
    """Serves a flat attribute table over one connection.

    :param coc: the connection's L2CAP object (provides the fixed channel).
    :param controller: the serving side.
    :param database: the owning :class:`~repro.gatt.server.GattServer`.
    """

    def __init__(self, coc: L2capCoc, controller: BleController, database) -> None:
        self.coc = coc
        self.controller = controller
        self.database = database
        self.requests_served = 0
        coc.register_fixed_channel(ATT_CID, controller, self._on_pdu)

    def _send(self, body: bytes) -> None:
        self.coc.send_fixed(self.controller, ATT_CID, body)

    def _error(self, request_op: int, handle: int, code: int) -> None:
        self._send(struct.pack("<BBHB", OP_ERROR, request_op, handle, code))

    def _on_pdu(self, body: bytes) -> None:
        if not body:
            return
        op = body[0]
        self.requests_served += 1
        if op == OP_MTU_REQ:
            self._send(struct.pack("<BH", OP_MTU_RSP, DEFAULT_ATT_MTU))
        elif op == OP_READ_BY_GROUP_REQ and len(body) >= 7:
            start, end, group = struct.unpack_from("<HHH", body, 1)
            self._read_by_group(start, end, group)
        elif op == OP_READ_REQ and len(body) >= 3:
            (handle,) = struct.unpack_from("<H", body, 1)
            self._read(handle)
        else:
            self._error(op, 0, ERR_INVALID_HANDLE)

    def _read_by_group(self, start: int, end: int, group: int) -> None:
        if group != PRIMARY_SERVICE_UUID:
            self._error(OP_READ_BY_GROUP_REQ, start, ERR_ATTRIBUTE_NOT_FOUND)
            return
        matches = self.database.services_in_range(start, end)
        if not matches:
            self._error(OP_READ_BY_GROUP_REQ, start, ERR_ATTRIBUTE_NOT_FOUND)
            return
        # each entry: attribute handle (2) + end group handle (2) + UUID16 (2)
        body = bytearray([OP_READ_BY_GROUP_RSP, 6])
        for service in matches:
            body += struct.pack("<HHH", service.start, service.end, service.uuid)
        self._send(bytes(body))

    def _read(self, handle: int) -> None:
        value = self.database.read(handle)
        if value is None:
            self._error(OP_READ_REQ, handle, ERR_INVALID_HANDLE)
            return
        self._send(bytes([OP_READ_RSP]) + value)


class AttClient:
    """Issues sequential ATT requests over one connection."""

    def __init__(self, coc: L2capCoc, controller: BleController) -> None:
        self.coc = coc
        self.controller = controller
        self._pending: Optional[Callable[[bytes], None]] = None
        coc.register_fixed_channel(ATT_CID, controller, self._on_pdu)

    @property
    def busy(self) -> bool:
        """Whether a request is outstanding (ATT allows exactly one)."""
        return self._pending is not None

    def request(self, body: bytes, on_response: Callable[[bytes], None]) -> None:
        """Send one request; ``on_response`` gets the raw response PDU."""
        if self._pending is not None:
            raise RuntimeError("ATT allows one outstanding request")
        self._pending = on_response
        self.coc.send_fixed(self.controller, ATT_CID, body)

    def read_by_group_type(
        self,
        start: int,
        end: int,
        on_response: Callable[[bytes], None],
        group: int = PRIMARY_SERVICE_UUID,
    ) -> None:
        """Issue a Read By Group Type request (service discovery step)."""
        self.request(
            struct.pack("<BHHH", OP_READ_BY_GROUP_REQ, start, end, group),
            on_response,
        )

    def read(self, handle: int, on_response: Callable[[bytes], None]) -> None:
        """Issue a Read request for one attribute handle."""
        self.request(struct.pack("<BH", OP_READ_REQ, handle), on_response)

    def _on_pdu(self, body: bytes) -> None:
        pending, self._pending = self._pending, None
        if pending is not None:
            pending(body)


def parse_read_by_group_response(body: bytes) -> Optional[List[Tuple[int, int, int]]]:
    """(start, end, uuid16) triples from a response, or None on ATT error."""
    if len(body) < 2 or body[0] != OP_READ_BY_GROUP_RSP:
        return None
    length = body[1]
    if length != 6:
        return None
    out = []
    for offset in range(2, len(body) - 5, 6):
        out.append(struct.unpack_from("<HHH", body, offset))
    return out
