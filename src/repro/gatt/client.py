"""GATT discovery client: enumerate a peer's primary services."""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.ble.controller import BleController
from repro.gatt.att import AttClient, parse_read_by_group_response
from repro.l2cap.coc import L2capCoc


class GattClient:
    """Runs primary-service discovery over one connection."""

    def __init__(self, coc: L2capCoc, controller: BleController) -> None:
        self.att = AttClient(coc, controller)

    def discover_primary_services(
        self, on_done: Callable[[List[Tuple[int, int, int]]], None]
    ) -> None:
        """Enumerate (start, end, uuid16) of every primary service.

        Issues Read By Group Type requests walking the handle space until
        the server answers Attribute Not Found, then calls ``on_done``.
        """
        found: List[Tuple[int, int, int]] = []

        def step(start_handle: int) -> None:
            self.att.read_by_group_type(
                start_handle, 0xFFFF, lambda body: handle_response(body)
            )

        def handle_response(body: bytes) -> None:
            groups = parse_read_by_group_response(body)
            if not groups:
                on_done(found)  # error response ends discovery
                return
            found.extend(groups)
            last_end = groups[-1][1]
            if last_end >= 0xFFFF:
                on_done(found)
                return
            step(last_end + 1)

        step(0x0001)

    def has_service(
        self, uuid: int, on_done: Callable[[bool], None]
    ) -> None:
        """Discover and report whether ``uuid`` is among the services."""
        self.discover_primary_services(
            lambda services: on_done(any(u == uuid for _, _, u in services))
        )
