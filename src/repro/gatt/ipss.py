"""The Internet Protocol Support Service (IPSS).

A marker service (UUID 0x1820, no characteristics): exposing it declares
"I speak IPv6 over L2CAP on the IPSP PSM" (Internet Protocol Support
Profile; paper §2.1 Figure 2 and §3).  Connection managers use
:func:`check_ip_support` to avoid adopting peers that cannot route.
"""

from __future__ import annotations

from typing import Callable

from repro.ble.controller import BleController
from repro.gatt.client import GattClient
from repro.gatt.server import GattServer
from repro.l2cap.coc import L2capCoc

#: The Bluetooth SIG-assigned UUID of the Internet Protocol Support Service.
IPSS_UUID = 0x1820


def add_ipss(server: GattServer) -> None:
    """Register the IPSS on a node's GATT database."""
    if not server.has_service(IPSS_UUID):
        server.add_service(IPSS_UUID)


def check_ip_support(
    coc: L2capCoc,
    controller: BleController,
    on_done: Callable[[bool], None],
) -> None:
    """Discover the peer's services and report whether IPSS is present."""
    GattClient(coc, controller).has_service(IPSS_UUID, on_done)
