"""Time-unit inference: the lattice behind rule SL007.

Every simulator timestamp is integer nanoseconds, but the codebase also
carries microsecond spec fields (``conn_interval`` units), millisecond
config knobs, and float seconds in reports.  The convention is the name
suffix: ``*_ns``, ``*_us``, ``*_ms``, ``*_s``.  This module types
expressions against that convention and flags the mixes the convention
exists to prevent:

* ``a_ns + b_ms`` (cross-unit arithmetic; also ``-``, ``%``, comparisons),
* ``x_ms = <ns-typed expression>`` (suffix lies about the content),
* ``return <ms-typed>`` from ``def ..._ns()`` (API suffix lies),
* ``f(x_us)`` binding to a parameter named ``y_ms`` (cross-API mix), and
* a unit-typed value crossing a *public* project API into a parameter
  with no unit suffix at all (the unit is erased at the boundary).

The lattice: ``UNITLESS`` (plain numbers, ratios) is bottom; ``ns``,
``us``, ``ms``, ``s`` are incomparable points; ``UNKNOWN`` is top (no
opinion -- never flagged).  Inference is a single forward pass per
function: parameter and local names type from their suffixes and
assignments; ``repro.sim.units`` constants (``USEC`` et al.) are
ns-valued scale factors, so ``150 * USEC`` is ``ns`` -- exactly the
conversion idiom; ``t_ns / SEC`` divides ns by ns and yields a unitless
ratio -- exactly the reporting idiom; the ``ns_to_s`` family maps between
points.  Anything the pass cannot prove stays ``UNKNOWN`` and silent:
SL007 is tuned to only speak when both sides are known.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.graph import FunctionInfo, Project, dotted, terminal_name

#: Lattice points.
UNITLESS = "unitless"
NS = "ns"
US = "us"
MS = "ms"
S = "s"
UNKNOWN = "unknown"

UNIT_POINTS = (NS, US, MS, S)

#: name suffix -> unit point.
SUFFIXES: Dict[str, str] = {"_ns": NS, "_us": US, "_ms": MS, "_s": S}

#: bare names the integer-time convention types as ns (mirrors SL004).
BARE_NS_NAMES = frozenset({"now", "when", "deadline", "anchor_point"})

#: repro.sim.units scale constants: ns-valued multipliers.
SCALE_CONSTANTS = frozenset({"NSEC", "USEC", "MSEC", "SEC"})

#: scale constant -> the unit it converts *from*: a count in that unit
#: times the constant yields ns (``window_s * SEC``, ``len_ms * MSEC``).
_SCALE_SOURCE: Dict[str, str] = {"NSEC": NS, "USEC": US, "MSEC": MS, "SEC": S}

#: repro.sim.units converters: function name -> result unit.
CONVERTERS: Dict[str, str] = {
    "ns_to_s": S,
    "ns_to_ms": MS,
    "ns_to_us": US,
    "s_to_ns": NS,
    "ms_to_ns": NS,
    "us_to_ns": NS,
}

#: builtins transparent to units (unit of the join of their arguments).
TRANSPARENT_CALLS = frozenset({"min", "max", "abs", "round", "int", "sum", "float"})


def suffix_unit(name: str) -> str:
    """Unit implied by an identifier's suffix (or bare-name convention)."""
    for suffix, unit in SUFFIXES.items():
        if name.endswith(suffix) and len(name) > len(suffix):
            return unit
    if name.lstrip("_") in BARE_NS_NAMES:
        return NS
    return UNKNOWN


@dataclass(frozen=True)
class UnitMix:
    """One detected cross-unit defect."""

    line: int
    col: int
    message: str


class FunctionUnits:
    """Forward unit-inference over one function (or module) body."""

    def __init__(
        self,
        body: List[ast.stmt],
        fn_name: Optional[str],
        param_names: List[str],
        project: Optional[Project],
        module: str,
    ) -> None:
        self.project = project
        self.module = module
        self.fn_name = fn_name
        self.env: Dict[str, str] = {}
        self.mixes: List[UnitMix] = []
        for param in param_names:
            unit = suffix_unit(param)
            if unit is not UNKNOWN:
                self.env[param] = unit
        for stmt in body:
            self._visit_stmt(stmt)

    # -- statements ----------------------------------------------------

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value_unit = self.unit_of(stmt.value)
            for target in stmt.targets:
                self._bind_target(target, value_unit, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            value_unit = self.unit_of(stmt.value) if stmt.value else UNKNOWN
            self._bind_target(stmt.target, value_unit, stmt)
        elif isinstance(stmt, ast.AugAssign):
            target_unit = self.unit_of(stmt.target)
            value_unit = self.unit_of(stmt.value)
            if isinstance(stmt.op, (ast.Add, ast.Sub, ast.Mod)):
                self._check_mix(target_unit, value_unit, stmt, "augmented assignment")
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            self._visit_expr(stmt.value)
            if self.fn_name is not None:
                declared = suffix_unit(self.fn_name)
                actual = self.unit_of(stmt.value)
                if (
                    declared in UNIT_POINTS
                    and actual in UNIT_POINTS
                    and declared != actual
                ):
                    self.mixes.append(
                        UnitMix(
                            stmt.lineno,
                            stmt.col_offset,
                            f"function '{self.fn_name}' is suffixed"
                            f" '{declared}' but returns a value inferred as"
                            f" '{actual}' -- convert (repro.sim.units) or fix"
                            " the name",
                        )
                    )
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    self._visit_stmt(child)
                elif isinstance(child, ast.expr):
                    self._visit_expr(child)

    def _bind_target(self, target: ast.expr, value_unit: str, stmt: ast.stmt) -> None:
        name = target.id if isinstance(target, ast.Name) else None
        if name is None:
            if isinstance(target, ast.Attribute):
                name = target.attr
            else:
                return
        declared = suffix_unit(name)
        if declared in UNIT_POINTS and value_unit in UNIT_POINTS and declared != value_unit:
            self.mixes.append(
                UnitMix(
                    stmt.lineno,
                    stmt.col_offset,
                    f"'{name}' is suffixed '{declared}' but is assigned a value"
                    f" inferred as '{value_unit}' -- convert via repro.sim.units"
                    " or rename",
                )
            )
        if isinstance(target, ast.Name):
            if value_unit is not UNKNOWN:
                self.env[name] = value_unit
            elif declared is not UNKNOWN:
                self.env[name] = declared

    # -- expressions ---------------------------------------------------

    def _visit_expr(self, expr: ast.expr) -> None:
        """Walk for defects without needing the resulting unit."""
        self.unit_of(expr)

    def _check_mix(
        self, left: str, right: str, node: ast.AST, what: str
    ) -> None:
        if left in UNIT_POINTS and right in UNIT_POINTS and left != right:
            self.mixes.append(
                UnitMix(
                    getattr(node, "lineno", 1),
                    getattr(node, "col_offset", 0),
                    f"cross-unit {what}: '{left}' vs '{right}' -- convert one"
                    " side via repro.sim.units before combining",
                )
            )

    def unit_of(self, expr: Optional[ast.expr]) -> str:
        if expr is None:
            return UNKNOWN
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, bool) or not isinstance(expr.value, (int, float)):
                return UNKNOWN
            return UNITLESS
        if isinstance(expr, ast.Name):
            if expr.id in SCALE_CONSTANTS and self._is_units_name(expr.id):
                return NS
            if expr.id in self.env:
                return self.env[expr.id]
            return suffix_unit(expr.id)
        if isinstance(expr, ast.Attribute):
            if expr.attr in SCALE_CONSTANTS:
                return NS
            return suffix_unit(expr.attr)
        if isinstance(expr, ast.UnaryOp):
            return self.unit_of(expr.operand)
        if isinstance(expr, ast.BinOp):
            return self._binop_unit(expr)
        if isinstance(expr, ast.Compare):
            self._compare_units(expr)
            return UNKNOWN
        if isinstance(expr, ast.Call):
            return self._call_unit(expr)
        if isinstance(expr, ast.IfExp):
            self._visit_expr(expr.test)
            a = self.unit_of(expr.body)
            b = self.unit_of(expr.orelse)
            return a if a == b else UNKNOWN
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for item in expr.elts:
                self._visit_expr(item)
            return UNKNOWN
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._visit_expr(child)
        return UNKNOWN

    def _scale_const_name(self, expr: ast.expr) -> Optional[str]:
        name = terminal_name(expr)
        if name in SCALE_CONSTANTS and (
            isinstance(expr, ast.Attribute) or self._is_units_name(name)
        ):
            return name
        return None

    def _is_units_name(self, name: str) -> bool:
        """Is a bare ``SEC``-style name plausibly the repro.sim.units one?

        Without a project we assume yes (the constants are idiomatic); with
        one we check the import actually resolves to ``repro.sim.units``.
        """
        if self.project is None:
            return True
        resolved = self.project.resolve_module_name(self.module, name)
        return resolved is None or resolved.startswith("repro.sim.units")

    def _binop_unit(self, expr: ast.BinOp) -> str:
        left = self.unit_of(expr.left)
        right = self.unit_of(expr.right)
        op = expr.op
        if isinstance(op, (ast.Add, ast.Sub)):
            self._check_mix(left, right, expr, "arithmetic")
            if left in UNIT_POINTS:
                return left
            if right in UNIT_POINTS:
                return right
            if left is UNITLESS and right is UNITLESS:
                return UNITLESS
            return UNKNOWN
        if isinstance(op, ast.Mod):
            self._check_mix(left, right, expr, "arithmetic")
            if left in UNIT_POINTS and right in (left, UNITLESS, UNKNOWN):
                return left
            if left is UNITLESS and right is UNITLESS:
                return UNITLESS
            return UNKNOWN
        if isinstance(op, ast.Mult):
            # conversion idiom: a count in unit U times the ns-per-U scale
            # constant is ns (`window_s * SEC`, `max_event_len_ms * MSEC`).
            for value, scale in ((expr.left, expr.right), (expr.right, expr.left)):
                sname = self._scale_const_name(scale)
                if sname is not None and self.unit_of(value) == _SCALE_SOURCE[sname]:
                    return NS
            if left in UNIT_POINTS and right in UNIT_POINTS and left != right:
                self._check_mix(left, right, expr, "product")
                return UNKNOWN
            if left in UNIT_POINTS and right is UNITLESS:
                return left
            if right in UNIT_POINTS and left is UNITLESS:
                return right
            if left is UNITLESS and right is UNITLESS:
                return UNITLESS
            return UNKNOWN
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            if left in UNIT_POINTS and right == left:
                return UNITLESS  # ratio: the reporting idiom t_ns / SEC
            if left in UNIT_POINTS and right in UNIT_POINTS and left != right:
                self._check_mix(left, right, expr, "division")
                return UNKNOWN
            if left in UNIT_POINTS and right is UNITLESS:
                return left
            if left is UNITLESS and right is UNITLESS:
                return UNITLESS
            return UNKNOWN
        if isinstance(op, (ast.LShift, ast.RShift, ast.BitAnd, ast.BitOr, ast.BitXor)):
            return UNKNOWN  # slot indexes, masks: deliberately untyped
        return UNKNOWN

    def _compare_units(self, expr: ast.Compare) -> None:
        operands = [expr.left, *expr.comparators]
        units = [self.unit_of(op) for op in operands]
        for op, (a, b) in zip(expr.ops, zip(units, units[1:])):
            if isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)):
                self._check_mix(a, b, expr, "comparison")

    def _call_unit(self, expr: ast.Call) -> str:
        for arg in expr.args:
            self._visit_expr(arg)
        for kw in expr.keywords:
            self._visit_expr(kw.value)
        fname = terminal_name(expr.func)
        if fname in CONVERTERS:
            return CONVERTERS[fname]
        if fname in TRANSPARENT_CALLS and expr.args:
            units = [self.unit_of(a) for a in expr.args]
            known = [u for u in units if u in UNIT_POINTS]
            if known and all(u == known[0] for u in known):
                return known[0]
            return UNKNOWN
        self._check_call_params(expr)
        # a call to an unknown function with a unit-suffixed name types
        # its result by that suffix (conn_interval_ns(), elapsed_ms()).
        if fname is not None:
            return suffix_unit(fname)
        return UNKNOWN

    def _check_call_params(self, expr: ast.Call) -> None:
        """Cross-API checks: argument units vs project parameter names."""
        if self.project is None:
            return
        target = self._resolve_call_target(expr)
        if target is None:
            return
        fn = self.project.functions.get(target)
        if fn is None:
            return
        for index, arg in enumerate(expr.args):
            if isinstance(arg, ast.Starred) or index >= len(fn.params):
                break
            self._check_one_binding(fn, fn.params[index], arg, expr)
        for kw in expr.keywords:
            if kw.arg is not None and kw.arg in fn.params:
                self._check_one_binding(fn, kw.arg, kw.value, expr)

    def _check_one_binding(
        self, fn: FunctionInfo, param: str, arg: ast.expr, call: ast.Call
    ) -> None:
        arg_unit = self.unit_of(arg)
        if arg_unit not in UNIT_POINTS:
            return
        param_unit = suffix_unit(param)
        name = fn.name
        if param_unit in UNIT_POINTS:
            if param_unit != arg_unit:
                self.mixes.append(
                    UnitMix(
                        call.lineno,
                        call.col_offset,
                        f"argument inferred as '{arg_unit}' is passed to"
                        f" parameter '{param}' of {name}() which is suffixed"
                        f" '{param_unit}' -- convert via repro.sim.units",
                    )
                )
        elif param in fn.seq_params:
            # collection-annotated parameter: a unit-polymorphic
            # aggregation boundary (mean, percentile, cdf), not erasure.
            return
        elif fn.is_public and isinstance(arg, ast.Name):
            # high-confidence only: a *named*, suffixed value crossing a
            # public API into an unsuffixed parameter erases its unit.
            self.mixes.append(
                UnitMix(
                    call.lineno,
                    call.col_offset,
                    f"'{arg.id}' carries unit '{arg_unit}' but parameter"
                    f" '{param}' of public {name}() has no unit suffix --"
                    f" rename the parameter (e.g. '{param}_{arg_unit}') so"
                    " the unit survives the API boundary",
                )
            )

    def _resolve_call_target(self, expr: ast.Call) -> Optional[str]:
        assert self.project is not None
        func = expr.func
        if isinstance(func, ast.Name):
            resolved = self.project.resolve_module_name(self.module, func.id)
            return resolved if resolved in self.project.functions else None
        if isinstance(func, ast.Attribute):
            chain = dotted(func)
            head, _, rest = chain.partition(".")
            if not rest or "." in rest:
                return None
            resolved = self.project.resolve_module_name(self.module, head)
            if resolved is None:
                return None
            candidate = f"{resolved}.{rest}"
            return candidate if candidate in self.project.functions else None
        return None


def infer_module_units(
    tree: ast.Module, module: str, project: Optional[Project]
) -> Iterator[Tuple[UnitMix, Optional[str]]]:
    """Yield ``(mix, enclosing_function_name)`` for a whole module.

    Module level and each function body are inferred independently; class
    bodies contribute their methods.  Deduplication happens in the engine.
    """
    module_level = [
        stmt
        for stmt in tree.body
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    ]
    top = FunctionUnits(module_level, None, [], project, module)
    for mix in top.mixes:
        yield mix, None

    def walk_functions(
        body: List[ast.stmt],
    ) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield stmt
                yield from walk_functions(stmt.body)
            elif isinstance(stmt, ast.ClassDef):
                yield from walk_functions(stmt.body)

    for fn_node in walk_functions(tree.body):
        params = [
            a.arg
            for a in fn_node.args.posonlyargs + fn_node.args.args + fn_node.args.kwonlyargs
            if a.arg not in ("self", "cls")
        ]
        inference = FunctionUnits(fn_node.body, fn_node.name, params, project, module)
        for mix in inference.mixes:
            yield mix, fn_node.name
