"""Baseline files: grandfather existing findings, fail only on new ones.

A baseline is a small JSON document mapping finding fingerprints (see
:meth:`repro.lint.core.Finding.fingerprint`) to enough context to review
them by hand.  ``python -m repro lint --baseline FILE`` subtracts the
baselined fingerprints from the run; ``--write-baseline`` regenerates the
file from the current findings.  An *empty* file (zero bytes) is a valid
baseline with no entries -- the acceptance state this repo ships in.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Set

from repro.lint.core import Finding

#: Schema marker written into every non-empty baseline file.
BASELINE_SCHEMA = "repro.lint.baseline/1"


class BaselineError(ValueError):
    """Raised when a baseline file exists but cannot be understood."""


def load_baseline(path: Path | str) -> Set[str]:
    """Return the set of grandfathered fingerprints in ``path``.

    Zero-byte and whitespace-only files load as the empty baseline; a
    missing file is an error (create one with ``--write-baseline`` or
    ``touch``).
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if not text.strip():
        return set()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("schema") != BASELINE_SCHEMA:
        raise BaselineError(
            f"baseline {path} lacks the {BASELINE_SCHEMA!r} schema marker"
        )
    entries = doc.get("entries")
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {path} has no 'entries' list")
    fingerprints: Set[str] = set()
    for entry in entries:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise BaselineError(
                f"baseline {path}: every entry needs a 'fingerprint' key"
            )
        fingerprints.add(str(entry["fingerprint"]))
    return fingerprints


def write_baseline(path: Path | str, findings: Iterable[Finding]) -> int:
    """Write a baseline grandfathering ``findings``; returns the entry count.

    Entries are keyed and sorted by fingerprint so regeneration is
    byte-stable regardless of scan order; duplicate fingerprints (identical
    offending lines) collapse to one entry.
    """
    by_fp = {}
    for finding in sorted(
        findings, key=lambda f: (f.fingerprint(), f.module, f.line)
    ):
        by_fp.setdefault(
            finding.fingerprint(),
            {
                "fingerprint": finding.fingerprint(),
                "code": finding.code,
                "module": finding.module,
                "text": finding.text.strip(),
                "message": finding.message,
            },
        )
    doc = {"schema": BASELINE_SCHEMA, "entries": list(by_fp.values())}
    Path(path).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return len(by_fp)
