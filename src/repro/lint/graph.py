"""Project symbol table and call graph for whole-program simlint rules.

A :class:`Project` parses every file handed to the linter once, builds a
symbol table (modules, functions, classes, methods, imports), and resolves
call sites into a deterministic call graph.  The graph is deliberately
*syntactic and conservative*: it never executes code, and it only records
edges it can resolve with high confidence --

* direct calls to module-level functions (local or imported, honouring
  ``as`` aliases),
* method dispatch on ``self``/``cls`` through the project-class MRO,
* method dispatch on locals whose class is statically evident (assigned
  from ``ClassName(...)`` or annotated with a project class),
* ``functools.partial`` wrapping (a ``partial(f, ...)`` counts as an edge
  to ``f``: the wrapped callable runs with the creator's data flow), and
* bare function references passed as call arguments (``sim.at(when, cb)``)
  as weaker ``ref`` edges -- used for reachability (SL009) but not for
  taint, since a registered callback executes in the dispatcher's context,
  not the registrar's.

Everything is keyed by dotted *qualnames* (``repro.ble.conn.Connection.
_tick``) and iterated in sorted order, so downstream fixpoints -- the
taint engine in :mod:`repro.lint.taint`, the guard/purity analyses in
:mod:`repro.lint.purity` -- produce byte-identical results regardless of
filesystem enumeration order.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guards
    from repro.lint.core import FileContext
    from repro.lint.taint import TaintAnalysis


def terminal_name(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def dotted(node: ast.AST) -> str:
    """Render a Name/Attribute chain as ``a.b.c`` (best effort)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


#: Call-edge kinds, strongest first.
EDGE_CALL = "call"
EDGE_PARTIAL = "partial"
EDGE_REF = "ref"


@dataclass(frozen=True)
class CallSite:
    """One resolved outgoing edge of a function."""

    #: Resolved dotted target: a project qualname (``repro.x.f``) or an
    #: external dotted path (``time.time``, ``os.environ``).
    callee: str
    #: 1-based source line of the call/reference.
    line: int
    #: 0-based column.
    col: int
    #: :data:`EDGE_CALL`, :data:`EDGE_PARTIAL`, or :data:`EDGE_REF`.
    kind: str


@dataclass
class FunctionInfo:
    """Symbol-table entry for one function or method."""

    qualname: str
    module: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    #: Positional-or-keyword parameter names, ``self``/``cls`` stripped.
    params: List[str]
    #: Parameters annotated as collections (Sequence[...], list, ...):
    #: unit-polymorphic aggregation boundaries for SL007.
    seq_params: FrozenSet[str] = frozenset()
    #: Enclosing project class qualname, or None for module-level functions.
    class_qualname: Optional[str] = None
    #: Outgoing resolved edges, in source order.
    calls: List[CallSite] = field(default_factory=list)
    #: True when the function's return type is a set (annotation or a
    #: returned set expression); refined interprocedurally by the taint pass.
    returns_set: bool = False

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")


@dataclass
class ClassInfo:
    """Symbol-table entry for one class."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    #: Base classes, as dotted names resolved in module scope (best effort).
    bases: List[str] = field(default_factory=list)
    #: method name -> function qualname.
    methods: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """Per-module slice of the symbol table."""

    module: str
    ctx: "FileContext"
    #: local name -> fully-qualified dotted target for imports.
    imports: Dict[str, str] = field(default_factory=dict)
    #: top-level function name -> qualname.
    functions: Dict[str, str] = field(default_factory=dict)
    #: class name -> qualname.
    classes: Dict[str, str] = field(default_factory=dict)


class Project:
    """Whole-program context shared by the interprocedural rules.

    Build once per lint invocation via :meth:`from_contexts`; the taint,
    unit, and purity analyses hang off it and are computed lazily (and at
    most once) by their rule's first ``check`` call.
    """

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: Lazily-attached analyses (set by the owning modules).
        self._taint: Optional["TaintAnalysis"] = None
        self._analysis_cache: Dict[str, object] = {}

    # -- construction --------------------------------------------------

    @classmethod
    def from_contexts(cls, contexts: List["FileContext"]) -> "Project":
        project = cls()
        for ctx in sorted(contexts, key=lambda c: c.module):
            project._index_module(ctx)
        for qualname in sorted(project.functions):
            project._resolve_calls(project.functions[qualname])
        return project

    def _index_module(self, ctx: "FileContext") -> None:
        info = ModuleInfo(module=ctx.module, ctx=ctx)
        self.modules[ctx.module] = info
        for node in ctx.tree.body:
            self._index_statement(info, node, class_info=None)
        # imports can appear anywhere (function-local imports are common
        # for cycle breaking); collect them module-wide.
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    local = (item.asname or item.name).split(".")[0]
                    target = item.name if item.asname else item.name.split(".")[0]
                    info.imports.setdefault(local, target)
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for item in node.names:
                    if item.name == "*":
                        continue
                    local = item.asname or item.name
                    info.imports.setdefault(local, f"{node.module}.{item.name}")

    def _index_statement(
        self, info: ModuleInfo, node: ast.stmt, class_info: Optional[ClassInfo]
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if class_info is None:
                qualname = f"{info.module}.{node.name}"
                info.functions[node.name] = qualname
            else:
                qualname = f"{class_info.qualname}.{node.name}"
                class_info.methods.setdefault(node.name, qualname)
            args = node.args.posonlyargs + node.args.args
            params = [a.arg for a in args]
            if class_info is not None and params and params[0] in ("self", "cls"):
                params = params[1:]
            seq_params = frozenset(
                a.arg for a in args + node.args.kwonlyargs
                if _annotation_is_sequence(a.annotation)
            )
            self.functions[qualname] = FunctionInfo(
                qualname=qualname,
                module=info.module,
                name=node.name,
                node=node,
                params=params,
                seq_params=seq_params,
                class_qualname=class_info.qualname if class_info else None,
                returns_set=_annotation_is_set(node.returns),
            )
        elif isinstance(node, ast.ClassDef) and class_info is None:
            qualname = f"{info.module}.{node.name}"
            cinfo = ClassInfo(
                qualname=qualname,
                module=info.module,
                name=node.name,
                node=node,
                bases=[dotted(b) for b in node.bases if dotted(b)],
            )
            info.classes[node.name] = qualname
            self.classes[qualname] = cinfo
            for child in node.body:
                self._index_statement(info, child, class_info=cinfo)

    # -- resolution ----------------------------------------------------

    def resolve_module_name(self, module: str, name: str) -> Optional[str]:
        """Resolve a bare name in ``module`` scope to a dotted target."""
        info = self.modules.get(module)
        if info is None:
            return None
        if name in info.functions:
            return info.functions[name]
        if name in info.classes:
            return info.classes[name]
        if name in info.imports:
            return info.imports[name]
        return None

    def _class_mro(self, qualname: str) -> Iterator[ClassInfo]:
        """The project-visible MRO of a class (naive DFS, cycles guarded)."""
        seen: Set[str] = set()
        stack = [qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cinfo = self.classes.get(current)
            if cinfo is None:
                continue
            yield cinfo
            for base in cinfo.bases:
                head, _, tail = base.partition(".")
                resolved = self.resolve_module_name(cinfo.module, head)
                if resolved is None:
                    continue
                stack.append(f"{resolved}.{tail}" if tail else resolved)

    def resolve_method(self, class_qualname: str, method: str) -> Optional[str]:
        """Resolve ``method`` through the class's project MRO."""
        for cinfo in self._class_mro(class_qualname):
            if method in cinfo.methods:
                return cinfo.methods[method]
        return None

    def _resolve_calls(self, fn: FunctionInfo) -> None:
        resolver = _CallResolver(self, fn)
        resolver.run()

    # -- queries -------------------------------------------------------

    def callers_of(self, qualname: str) -> List[Tuple[FunctionInfo, CallSite]]:
        """Every (caller, call-site) pair targeting ``qualname``, sorted."""
        out: List[Tuple[FunctionInfo, CallSite]] = []
        for caller_name in sorted(self.functions):
            caller = self.functions[caller_name]
            for site in caller.calls:
                if site.callee == qualname:
                    out.append((caller, site))
        return out

    def analysis(self, key: str, factory: object) -> object:
        """Memoize a project-level analysis under ``key``."""
        if key not in self._analysis_cache:
            self._analysis_cache[key] = factory()  # type: ignore[operator]
        return self._analysis_cache[key]


def _annotation_is_set(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    target = node.value if isinstance(node, ast.Subscript) else node
    name = terminal_name(target)
    return name in ("set", "Set", "frozenset", "FrozenSet", "AbstractSet", "MutableSet")


_SEQUENCE_ANNOTATIONS = frozenset(
    {
        "Sequence",
        "List",
        "list",
        "Tuple",
        "tuple",
        "Iterable",
        "Iterator",
        "Collection",
        "Set",
        "set",
        "FrozenSet",
        "frozenset",
        "Dict",
        "dict",
        "Mapping",
    }
)


def _annotation_is_sequence(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    target = node.value if isinstance(node, ast.Subscript) else node
    return terminal_name(target) in _SEQUENCE_ANNOTATIONS


class _CallResolver(ast.NodeVisitor):
    """Resolve the outgoing edges of one function body."""

    def __init__(self, project: Project, fn: FunctionInfo) -> None:
        self.project = project
        self.fn = fn
        self.module = project.modules[fn.module]
        #: local name -> project class qualname (statically evident types).
        self.local_types: Dict[str, str] = {}
        #: local name -> qualname wrapped by a functools.partial binding.
        self.partial_locals: Dict[str, str] = {}
        self._collect_param_types()

    def run(self) -> None:
        node = self.fn.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for stmt in node.body:
            self.visit(stmt)

    # -- type seeding --------------------------------------------------

    def _collect_param_types(self) -> None:
        node = self.fn.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for arg in node.args.posonlyargs + node.args.args + node.args.kwonlyargs:
            cls = self._class_from_annotation(arg.annotation)
            if cls is not None:
                self.local_types[arg.arg] = cls

    def _class_from_annotation(self, ann: Optional[ast.expr]) -> Optional[str]:
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            # string annotation: "Connection" / "conn.Connection"
            name = ann.value.split("[")[0].strip()
        else:
            target = ann.value if isinstance(ann, ast.Subscript) else ann
            name = dotted(target)
        if not name:
            return None
        head, _, tail = name.partition(".")
        resolved = self.project.resolve_module_name(self.fn.module, head)
        candidate = f"{resolved}.{tail}" if resolved and tail else resolved
        if candidate in self.project.classes:
            return candidate
        return None

    # -- expression resolution -----------------------------------------

    def _resolve_callable(self, func: ast.expr) -> Optional[str]:
        """Dotted target of a call/reference expression, or None."""
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.partial_locals:
                return self.partial_locals[name]
            resolved = self.project.resolve_module_name(self.fn.module, name)
            return resolved or None
        if isinstance(func, ast.Attribute):
            chain = dotted(func)
            if not chain:
                return None
            head, _, rest = chain.partition(".")
            if head in ("self", "cls") and self.fn.class_qualname and rest:
                if "." in rest:
                    return None  # self.a.b(): attribute of an attribute
                return self.project.resolve_method(self.fn.class_qualname, rest)
            if head in self.local_types and rest and "." not in rest:
                return self.project.resolve_method(self.local_types[head], rest)
            resolved = self.project.resolve_module_name(self.fn.module, head)
            if resolved is not None and rest:
                target = f"{resolved}.{rest}"
                # narrow "module attr" chains onto known project symbols
                if target in self.project.functions or target in self.project.classes:
                    return target
                parts = rest.split(".")
                if len(parts) == 2:
                    cls_or_fn = f"{resolved}.{parts[0]}"
                    if cls_or_fn in self.project.classes:
                        return self.project.resolve_method(cls_or_fn, parts[1])
                return target  # external dotted path (time.time, os.environ)
            return None
        return None

    def _add_edge(self, target: str, node: ast.AST, kind: str) -> None:
        self.fn.calls.append(
            CallSite(
                callee=target,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                kind=kind,
            )
        )

    # -- visitors ------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # nested defs get their own symbol only if top-level; their bodies
        # still execute in this function's context often enough (closures
        # scheduled as callbacks) that we fold their calls into the parent.
        for stmt in node.body:
            self.visit(stmt)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.visit(node.body)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._note_binding(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            cls = self._class_from_annotation(node.annotation)
            if cls is not None:
                self.local_types[node.target.id] = cls
        if node.value is not None:
            self._note_binding([node.target], node.value)
        self.generic_visit(node)

    def _note_binding(self, targets: List[ast.expr], value: ast.expr) -> None:
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names:
            return
        if isinstance(value, ast.Call):
            target = self._resolve_callable(value.func)
            if target in self.project.classes:
                for name in names:
                    self.local_types[name] = target  # type: ignore[assignment]
            elif self._is_partial_call(value):
                wrapped = self._partial_target(value)
                if wrapped is not None:
                    for name in names:
                        self.partial_locals[name] = wrapped

    def _is_partial_call(self, node: ast.Call) -> bool:
        target = self._resolve_callable(node.func)
        return target in ("functools.partial", "functools.partialmethod")

    def _partial_target(self, node: ast.Call) -> Optional[str]:
        if not node.args:
            return None
        inner = node.args[0]
        target = self._resolve_callable(inner)
        if target in self.project.functions:
            return target
        if target in self.project.classes:
            return target
        return None

    def visit_Call(self, node: ast.Call) -> None:
        if self._is_partial_call(node):
            wrapped = self._partial_target(node)
            if wrapped is not None:
                self._add_edge(wrapped, node, EDGE_PARTIAL)
            # partial's remaining args may still reference callables
            for arg in node.args[1:]:
                self._note_ref(arg)
        else:
            target = self._resolve_callable(node.func)
            if target is not None:
                if target in self.project.classes:
                    init = self.project.resolve_method(target, "__init__")
                    self._add_edge(init if init else target, node, EDGE_CALL)
                else:
                    self._add_edge(target, node, EDGE_CALL)
            for arg in node.args:
                self._note_ref(arg)
            for kw in node.keywords:
                self._note_ref(kw.value)
        self.generic_visit(node)

    def _note_ref(self, expr: ast.expr) -> None:
        """A bare function reference passed as an argument -> ``ref`` edge."""
        if not isinstance(expr, (ast.Name, ast.Attribute)):
            return
        target = self._resolve_callable(expr)
        if target is not None and (
            target in self.project.functions or target in self.project.classes
        ):
            self._add_edge(target, expr, EDGE_REF)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None and _returns_set_expr(node.value):
            self.fn.returns_set = True
        self.generic_visit(node)


def _returns_set_expr(node: ast.expr) -> bool:
    """Is the returned expression evidently a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    return False
