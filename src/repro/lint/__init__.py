"""simlint: determinism & unit-discipline static analysis for the simulator.

Every number this reproduction publishes -- shading onsets, the Fig. 8
sweeps, byte-identical ``metrics.json`` merges -- rests on two properties
that ordinary tests only probe, never guarantee:

* **Determinism.**  Same seed, same config, same bytes.  One stray
  ``time.time()``, one unseeded ``random`` draw, one iteration over a
  ``set`` that reaches the event schedule, and the result cache silently
  serves poisoned entries while the golden traces drift.
* **Integer-time discipline.**  Simulation time is integer nanoseconds
  (:mod:`repro.sim.units`); float arithmetic or float equality on a time
  value reintroduces the rounding the integer base was chosen to exclude.

``simlint`` enforces both *statically*, as an AST pass over the source,
so a regression is caught at lint time instead of three cached sweeps
later.  Run it as ``python -m repro lint``; suppress a finding inline with
``# simlint: allow-<rule> -- <reason>`` (the reason is mandatory).

Public surface:

* :func:`lint_source` / :func:`lint_path` / :func:`lint_paths` -- the engine
* :class:`Finding` -- one diagnostic
* :func:`default_rules` / :data:`RULES` -- the rule registry (SL001..SL006)
"""

from __future__ import annotations

from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.core import (
    Finding,
    lint_path,
    lint_paths,
    lint_source,
    module_name_for,
)
from repro.lint.rules import RULES, default_rules

__all__ = [
    "Finding",
    "RULES",
    "default_rules",
    "lint_path",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "module_name_for",
    "write_baseline",
]
