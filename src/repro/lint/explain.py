"""``python -m repro lint --explain SL00X``: per-rule rationale pages.

Each entry answers the three questions a developer hitting a finding
actually has: *why does this rule exist* (what simulator property it
protects), *what does a violation look like*, and *how do I make it go
away* -- the real fix first, the suppression escape hatch last, always
with its mandatory reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.lint.rules import RULES


@dataclass(frozen=True)
class Explanation:
    """One rule's rationale page."""

    rationale: str
    example: str
    fix: str


_E: Dict[str, Explanation] = {
    "SL001": Explanation(
        rationale=(
            "Simulation time is Simulator.now (integer ns); any host-clock\n"
            "read that reaches simulated state makes runs irreproducible\n"
            "across machines and re-runs.  Since simlint 2.0 the rule is\n"
            "flow-aware: a helper that wraps time.time() taints every caller\n"
            "through the project call graph (including functools.partial\n"
            "wrapping), and each tainted call site reports its full chain."
        ),
        example=(
            "    def _now():            # tainted: wraps the host clock\n"
            "        return time.time()\n"
            "    def jitter():\n"
            "        return _now() * 2  # SL001: chain jitter -> _now -> time.time"
        ),
        fix=(
            "Pass sim time in as a parameter, or route the read through\n"
            "repro.obs.wallclock / repro.obs.profiler (the sanctioned homes;\n"
            "taint never escapes them).  Escape hatch:\n"
            "    # simlint: allow-wallclock -- <why this read is justified>"
        ),
    ),
    "SL002": Explanation(
        rationale=(
            "All randomness must derive from (experiment_seed, stream_name)\n"
            "via repro.sim.rng.RngRegistry; module-level random.*, unseeded\n"
            "Random(), and numpy.random break bit-for-bit repetition.  The\n"
            "flow-aware half flags calls into helpers that launder such\n"
            "draws, with the call chain as evidence."
        ),
        example=(
            "    def _pick():              # tainted: global stream\n"
            "        return random.random()\n"
            "    def backoff():\n"
            "        return _pick() * 7    # SL002: chain backoff -> _pick -> ..."
        ),
        fix=(
            "Take a seeded random.Random from RngRegistry.stream(name) and\n"
            "pass it down.  Escape hatch:\n"
            "    # simlint: allow-rng -- <why this draw is justified>"
        ),
    ),
    "SL003": Explanation(
        rationale=(
            "Set iteration order is hash-randomized (PYTHONHASHSEED) and can\n"
            "leak host state into event scheduling or serialized output.\n"
            "The rule tracks set-valued names, set algebra, generator\n"
            "expressions over sets, and -- via the call graph -- calls to\n"
            "project functions proven to return sets."
        ),
        example=(
            "    def neighbours():\n"
            "        return {2, 3, 5}\n"
            "    for n in neighbours():     # SL003: set-returning call\n"
            "        schedule(n)\n"
            "    for n in sorted(neighbours()):  # clean: sorted() launders"
        ),
        fix=(
            "Wrap the iterable in sorted(...) at the consumer (or sort once\n"
            "at the producer and return a list).  Escape hatch:\n"
            "    # simlint: allow-set-order -- <why order cannot matter here>"
        ),
    ),
    "SL004": Explanation(
        rationale=(
            "Sim time is integer nanoseconds; float arithmetic or equality\n"
            "on *_ns names introduces rounding that varies by platform and\n"
            "breaks exact-replay guarantees."
        ),
        example=(
            "    if t_ns == 1.5:        # SL004: float equality on sim time\n"
            "    t_ns + 0.5 * span_ns   # SL004: float scaling"
        ),
        fix=(
            "Scale in integer ns (repro.sim.units constants); true division\n"
            "is exempt as the explicit float-conversion idiom (t_ns / SEC).\n"
            "Escape hatch: # simlint: allow-float-time -- <reason>"
        ),
    ),
    "SL005": Explanation(
        rationale=(
            "Cached results replay only if the config hash captures every\n"
            "input; os.environ / os.cpu_count reads are inputs the hash\n"
            "cannot see.  repro.exp.cli is the one sanctioned reader.  The\n"
            "flow-aware half catches helpers that launder env reads, at\n"
            "depth, including through functools.partial."
        ),
        example=(
            "    def _debug():                     # tainted\n"
            "        return os.environ.get('DBG')\n"
            "    def run():\n"
            "        if _debug(): ...              # SL005: chain run -> _debug -> os.environ"
        ),
        fix=(
            "Read the environment in repro.exp.cli and pass the value as\n"
            "explicit config.  Escape hatch:\n"
            "    # simlint: allow-env -- <why this read is justified>"
        ),
    ),
    "SL006": Explanation(
        rationale=(
            "BLE/802.15.4 timing literals (150_000 ns T_IFS, 1_250_000 ns\n"
            "connection-interval unit, ...) must be referenced by name so\n"
            "spec changes update one definition, not a scatter of literals."
        ),
        example=(
            "    t += 150_000          # SL006: that's T_IFS_NS\n"
            "    t += 150 * USEC       # SL006: same value, product form"
        ),
        fix=(
            "Reference the named constant (repro.sim.units / protocol\n"
            "config).  ALL_CAPS defining assignments are exempt -- naming\n"
            "the constant *is* the fix.  Escape hatch:\n"
            "    # simlint: allow-magic-time -- <reason>"
        ),
    ),
    "SL007": Explanation(
        rationale=(
            "Time values carry their unit in the name suffix (_ns/_us/_ms/_s).\n"
            "The inference lattice types expressions from suffixes,\n"
            "repro.sim.units constants and converters, and arithmetic\n"
            "propagation; it flags cross-unit mixes and unit-typed values\n"
            "crossing public APIs into suffix-less parameters.  Conversion\n"
            "idioms type correctly: 150 * USEC is ns, x_ms * MSEC is ns,\n"
            "t_ns / SEC is a unitless ratio."
        ),
        example=(
            "    t_ns + delay_ms            # SL007: ns + ms\n"
            "    x_ms = conn_interval_ns()  # SL007: suffix lies\n"
            "    api(x_us)                  # SL007 if api's param is 'delay_ms'"
        ),
        fix=(
            "Convert one side via repro.sim.units (ms_to_ns, x_ms * MSEC, ...)\n"
            "or fix the misleading name.  Escape hatch:\n"
            "    # simlint: allow-unit-mix -- <reason>"
        ),
    ),
    "SL008": Explanation(
        rationale=(
            "The disabled-instrumentation overhead budget (<2%) holds only\n"
            "if every METRICS/TRACE/SPANS touch on the hot dispatch path\n"
            "(repro.sim.kernel, repro.ble, repro.l2cap, repro.net) is behind\n"
            "its .enabled predicate.  The proof accepts direct guards,\n"
            "hoisted locals (on = TRACE.enabled), compound tests, early\n"
            "returns (if not TRACE.enabled: return), and caller-side guards\n"
            "via a greatest fixpoint over the call graph."
        ),
        example=(
            "    def on_rx(pdu):\n"
            "        TRACE.emit(...)        # SL008: unguarded hot-path call\n"
            "    def ok(pdu):\n"
            "        if TRACE.enabled:\n"
            "            TRACE.emit(...)    # clean"
        ),
        fix=(
            "Guard the touch (or hoist one guard around the block); a helper\n"
            "is exempt when every hot call site is provably guarded.\n"
            "Escape hatch: # simlint: allow-instr-guard -- <reason>"
        ),
    ),
    "SL009": Explanation(
        rationale=(
            "A lookahead-parallel kernel dispatches independent connection\n"
            "clusters concurrently; any module-level mutable object reachable\n"
            "from Simulator dispatch is shared state and a data race in\n"
            "waiting.  Every such global must be made immutable, moved into\n"
            "per-run state, or explicitly sanctioned -- the sanction\n"
            "inventory is the parallel-kernel PR's work list, and\n"
            "--shared-state-report emits the full machine-readable survey\n"
            "(including per-class mutable instance state in repro.sim.kernel\n"
            "and repro.ble)."
        ),
        example=(
            "    _CACHE = {}                # SL009 if dispatch-reachable\n"
            "    def lookup(k):\n"
            "        return _CACHE.get(k)"
        ),
        fix=(
            "Prefer immutability (tuple/frozenset/Mapping) or per-run state;\n"
            "otherwise sanction with the mandatory reason:\n"
            "    # simlint: allow-shared-state -- <sharding/locking plan>"
        ),
    ),
}


def explain(code_or_alias: str) -> Optional[str]:
    """The rationale page for a rule, by code or alias; None if unknown."""
    wanted = code_or_alias.strip().upper()
    rule = RULES.get(wanted)
    if rule is None:
        for candidate in RULES.values():
            if candidate.alias == code_or_alias.strip().lower():
                rule = candidate
                break
    if rule is None or rule.code not in _E:
        return None
    entry = _E[rule.code]
    return (
        f"{rule.code} ({rule.alias}) [{rule.severity}]\n"
        f"{rule.summary}\n"
        f"\nWhy\n---\n{entry.rationale}\n"
        f"\nExample\n-------\n{entry.example}\n"
        f"\nFix\n---\n{entry.fix}\n"
    )
