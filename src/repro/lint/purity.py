"""Instrumentation-guard proof (SL008) and shared-state inventory (SL009).

**SL008** makes the <2% disabled-overhead bar a *static* invariant.  The
hot-path contract (DESIGN.md) is: every ``METRICS``/``TRACE``/``SPANS``
hub call on the kernel/BLE/L2CAP/IP dispatch path sits behind its
``.enabled`` predicate, so a disabled subsystem costs one attribute load
and one branch.  ``--ab-check`` measures that; this rule proves it.  The
analysis accepts the idioms the codebase actually uses:

* a direct guard -- ``if TRACE.enabled: TRACE.emit(...)``,
* a hoisted local -- ``trace_on = TRACE.enabled`` ... ``if trace_on:``,
* compound tests -- ``if pdu.payload and METRICS.enabled:``, and
* *delegated* guards: a helper whose body emits unguarded is fine when
  every one of its hot-path call sites is itself guarded.  That proof is
  a greatest fixpoint over the call graph (assume every called helper is
  always-guarded, discard any with an unguarded hot call site, repeat),
  so guard delegation composes through chains of helpers.

**SL009** inventories the state a lookahead-parallel kernel would share
across concurrently-dispatched connection clusters: module-level mutable
globals (and mutable class attributes) referenced by functions reachable
from ``Simulator`` dispatch.  Hub singletons are exactly such state --
they stay sanctioned via ``# simlint: allow-shared-state -- <reason>``
suppressions, which double as the greppable inventory.  The full machine-
readable report (including per-class mutable *instance* state in
``repro.sim.kernel`` and ``repro.ble``, the dispatch path's own caches)
is emitted by ``python -m repro lint --shared-state-report`` for the
parallel-kernel PR to consume.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.lint.graph import EDGE_REF, FunctionInfo, Project, terminal_name

#: The guarded instrumentation hubs, by conventional singleton name.
HUB_NAMES = ("METRICS", "SPANS", "TRACE")

#: Module prefixes that constitute the hot dispatch path for SL008.
HOT_PREFIXES = ("repro.sim.kernel", "repro.ble", "repro.l2cap", "repro.net")

#: Dispatch roots for SL009 reachability.
DISPATCH_MODULE = "repro.sim.kernel"

#: Constructors whose results are mutable containers.
_MUTABLE_CTORS = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter", "OrderedDict"}
)
_IMMUTABLE_CTORS = frozenset({"tuple", "frozenset", "frozenset", "bytes", "int", "float", "str"})


def is_hot_module(module: str) -> bool:
    """Hot-path scope: the named prefixes, plus anything outside ``repro``
    (fixtures and ad-hoc files lint with the rule active)."""
    if not module.startswith("repro"):
        return True
    return any(
        module == p or module.startswith(p + ".") for p in HOT_PREFIXES
    )


# ---------------------------------------------------------------------------
# SL008: guard analysis
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HubTouch:
    """One call/store on an instrumentation hub inside a function."""

    hub: str
    line: int
    col: int
    #: hubs whose ``.enabled`` predicates dominate this site.
    guarded_by: FrozenSet[str]
    #: ``call`` or ``store`` (attribute assignment such as ``SPANS.now_hint``).
    kind: str


class _GuardWalker:
    """Collect hub touches and per-call-site guard sets for one function."""

    def __init__(self, fn: FunctionInfo) -> None:
        self.fn = fn
        self.touches: List[HubTouch] = []
        #: (line, col) of resolved call sites -> dominating guard set.
        self.call_guards: Dict[Tuple[int, int], FrozenSet[str]] = {}
        #: local alias name -> hubs its truthiness implies.
        self.aliases: Dict[str, FrozenSet[str]] = {}
        self._collect_aliases()
        node = fn.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        self._walk_body(node.body, frozenset())

    # -- aliases -------------------------------------------------------

    def _collect_aliases(self) -> None:
        node = self.fn.node
        for child in ast.walk(node):  # type: ignore[arg-type]
            if isinstance(child, ast.Assign) and len(child.targets) == 1:
                target = child.targets[0]
                if isinstance(target, ast.Name):
                    hubs = self._hubs_in_test(child.value, negated=False)
                    if hubs:
                        self.aliases[target.id] = hubs

    def _hubs_in_test(self, test: ast.expr, negated: bool) -> FrozenSet[str]:
        """Hubs whose enabled-ness the (possibly compound) test implies."""
        found: Set[str] = set()

        def scan(node: ast.expr, neg: bool) -> None:
            if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
                scan(node.operand, not neg)
                return
            if neg:
                return
            if isinstance(node, ast.Attribute) and node.attr == "enabled":
                hub = terminal_name(node.value)
                if hub in HUB_NAMES:
                    found.add(hub)
                return
            if isinstance(node, ast.Name) and node.id in self.aliases:
                found.update(self.aliases[node.id])
                return
            if isinstance(node, ast.BoolOp):
                for value in node.values:
                    scan(value, neg)
                return
            if isinstance(node, ast.Compare):
                return  # `x.enabled == False` style: not a sanctioned guard

        scan(test, negated)
        return frozenset(found)

    # -- structural walk -----------------------------------------------

    def _walk_body(self, body: List[ast.stmt], guarded: FrozenSet[str]) -> None:
        for stmt in body:
            self._walk_stmt(stmt, guarded)
            # early-return guard: `if not HUB.enabled: return` dominates
            # everything after it in this block with HUB's negation.
            if (
                isinstance(stmt, ast.If)
                and not stmt.orelse
                and all(
                    isinstance(s, (ast.Return, ast.Raise, ast.Continue, ast.Break))
                    for s in stmt.body
                )
            ):
                guarded = guarded | self._hubs_in_test(stmt.test, negated=True)

    def _walk_stmt(self, stmt: ast.stmt, guarded: FrozenSet[str]) -> None:
        if isinstance(stmt, ast.If):
            pos = self._hubs_in_test(stmt.test, negated=False)
            neg = self._hubs_in_test(stmt.test, negated=True)
            self._walk_expr(stmt.test, guarded)
            self._walk_body(stmt.body, guarded | pos)
            self._walk_body(stmt.orelse, guarded | neg)
        elif isinstance(stmt, (ast.While,)):
            pos = self._hubs_in_test(stmt.test, negated=False)
            self._walk_expr(stmt.test, guarded)
            self._walk_body(stmt.body, guarded | pos)
            self._walk_body(stmt.orelse, guarded)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._walk_expr(stmt.iter, guarded)
            self._walk_body(stmt.body, guarded)
            self._walk_body(stmt.orelse, guarded)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._walk_body(stmt.body, guarded)
        elif isinstance(stmt, ast.ClassDef):
            self._walk_body(stmt.body, guarded)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._walk_expr(item.context_expr, guarded)
            self._walk_body(stmt.body, guarded)
        elif isinstance(stmt, ast.Try):
            self._walk_body(stmt.body, guarded)
            for handler in stmt.handlers:
                self._walk_body(handler.body, guarded)
            self._walk_body(stmt.orelse, guarded)
            self._walk_body(stmt.finalbody, guarded)
        elif isinstance(stmt, ast.Assign):
            self._note_store(stmt.targets, stmt, guarded)
            self._walk_expr(stmt.value, guarded)
        elif isinstance(stmt, ast.AugAssign):
            self._note_store([stmt.target], stmt, guarded)
            self._walk_expr(stmt.value, guarded)
        elif isinstance(stmt, ast.AnnAssign):
            self._note_store([stmt.target], stmt, guarded)
            if stmt.value is not None:
                self._walk_expr(stmt.value, guarded)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._walk_expr(stmt.value, guarded)
        elif isinstance(stmt, ast.Expr):
            self._walk_expr(stmt.value, guarded)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._walk_expr(child, guarded)
                elif isinstance(child, ast.stmt):
                    self._walk_stmt(child, guarded)

    def _note_store(
        self, targets: List[ast.expr], stmt: ast.stmt, guarded: FrozenSet[str]
    ) -> None:
        for target in targets:
            if isinstance(target, ast.Attribute):
                hub = terminal_name(target.value)
                if hub in HUB_NAMES:
                    self.touches.append(
                        HubTouch(
                            hub=hub,
                            line=stmt.lineno,
                            col=stmt.col_offset,
                            guarded_by=guarded,
                            kind="store",
                        )
                    )

    def _walk_expr(self, expr: ast.expr, guarded: FrozenSet[str]) -> None:
        if isinstance(expr, ast.BoolOp) and isinstance(expr.op, ast.And):
            acc = guarded
            for value in expr.values:
                self._walk_expr(value, acc)
                acc = acc | self._hubs_in_test(value, negated=False)
            return
        if isinstance(expr, ast.IfExp):
            pos = self._hubs_in_test(expr.test, negated=False)
            neg = self._hubs_in_test(expr.test, negated=True)
            self._walk_expr(expr.test, guarded)
            self._walk_expr(expr.body, guarded | pos)
            self._walk_expr(expr.orelse, guarded | neg)
            return
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Attribute):
                hub = terminal_name(func.value)
                if hub in HUB_NAMES and isinstance(func.value, ast.Name):
                    self.touches.append(
                        HubTouch(
                            hub=hub,
                            line=expr.lineno,
                            col=expr.col_offset,
                            guarded_by=guarded,
                            kind="call",
                        )
                    )
            self.call_guards[(expr.lineno, expr.col_offset)] = guarded
            self._walk_expr(func, guarded)
            for arg in expr.args:
                self._walk_expr(arg, guarded)
            for kw in expr.keywords:
                self._walk_expr(kw.value, guarded)
            return
        if isinstance(expr, (ast.FunctionDef,)):  # pragma: no cover - defensive
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._walk_expr(child, guarded)


@dataclass
class GuardAnalysis:
    """Project-wide SL008 facts."""

    project: Project
    walkers: Dict[str, _GuardWalker] = field(default_factory=dict)
    #: hub -> set of functions proven always-called-under-guard.
    always_guarded: Dict[str, Set[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for qualname in sorted(self.project.functions):
            self.walkers[qualname] = _GuardWalker(self.project.functions[qualname])
        for hub in HUB_NAMES:
            self.always_guarded[hub] = self._fixpoint_always_guarded(hub)

    def _call_sites_of(self, qualname: str) -> List[Tuple[FunctionInfo, int, int, str]]:
        out = []
        for caller_name in sorted(self.project.functions):
            caller = self.project.functions[caller_name]
            for site in caller.calls:
                if site.callee == qualname:
                    out.append((caller, site.line, site.col, site.kind))
        return out

    def _fixpoint_always_guarded(self, hub: str) -> Set[str]:
        # greatest fixpoint: start from "every called function is guarded",
        # peel off any with an unguarded hot-path call site whose caller is
        # not itself always-guarded.
        candidates: Set[str] = set()
        sites: Dict[str, List[Tuple[FunctionInfo, int, int, str]]] = {}
        for qualname in sorted(self.project.functions):
            found = self._call_sites_of(qualname)
            if found:
                sites[qualname] = found
                candidates.add(qualname)
        changed = True
        while changed:
            changed = False
            for qualname in sorted(candidates):
                for caller, line, col, kind in sites[qualname]:
                    if not is_hot_module(caller.module):
                        continue  # cold call sites don't hit the hot path
                    walker = self.walkers[caller.qualname]
                    guard = walker.call_guards.get((line, col), frozenset())
                    if kind == EDGE_REF:
                        # a callback registration: the function later runs
                        # in the dispatcher's (unguarded) context.
                        guard = frozenset()
                    if hub in guard:
                        continue
                    if caller.qualname in candidates and caller.qualname != qualname:
                        continue  # caller itself only ever runs under guard
                    candidates.discard(qualname)
                    changed = True
                    break
        return candidates

    def unguarded_touches(self, module: str) -> Iterator[Tuple[FunctionInfo, HubTouch, str]]:
        """Yield SL008 violations in ``module``: (function, touch, detail)."""
        if not is_hot_module(module):
            return
        for qualname in sorted(self.walkers):
            fn = self.project.functions[qualname]
            if fn.module != module:
                continue
            walker = self.walkers[qualname]
            for touch in walker.touches:
                if touch.hub in touch.guarded_by:
                    continue
                if qualname in self.always_guarded[touch.hub]:
                    continue
                detail = self._unguarded_reason(qualname, touch.hub)
                yield fn, touch, detail

    def _unguarded_reason(self, qualname: str, hub: str) -> str:
        sites = self._call_sites_of(qualname)
        if not sites:
            return (
                "and the function has no statically-known call sites"
                " (dispatch callbacks must guard internally)"
            )
        for caller, line, col, kind in sites:
            if not is_hot_module(caller.module):
                continue
            walker = self.walkers.get(caller.qualname)
            guard = (
                walker.call_guards.get((line, col), frozenset())
                if walker is not None and kind != EDGE_REF
                else frozenset()
            )
            if hub not in guard and caller.qualname not in self.always_guarded[hub]:
                return (
                    f"and it is called unguarded from"
                    f" {caller.qualname.split('.')[-1]}() at line {line}"
                )
        return "and not every call site could be proven guarded"


def compute_guards(project: Project) -> GuardAnalysis:
    return project.analysis("guards", lambda: GuardAnalysis(project))  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# SL009: shared mutable state
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SharedStateEntry:
    """One piece of statically-visible shared mutable state."""

    #: ``module-global`` | ``class-attr`` | ``instance-attr``.
    kind: str
    module: str
    qualname: str
    line: int
    #: best-effort description of the value (``dict literal``, ``Tracer()``).
    value_type: str
    #: reachable from Simulator dispatch (module-global/class-attr only).
    dispatch_reachable: bool = False
    #: sanctioned via an inline allow-shared-state suppression.
    sanctioned: bool = False
    reason: str = ""

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "module": self.module,
            "qualname": self.qualname,
            "line": self.line,
            "value_type": self.value_type,
            "dispatch_reachable": self.dispatch_reachable,
            "sanctioned": self.sanctioned,
            "reason": self.reason,
        }


def _mutable_value_type(node: ast.expr) -> Optional[str]:
    """Describe ``node`` if it constructs a mutable object, else None."""
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list literal"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict literal"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set literal"
    if isinstance(node, ast.Call):
        name = terminal_name(node.func)
        if name in _MUTABLE_CTORS:
            return f"{name}()"
        if name in _IMMUTABLE_CTORS:
            return None
        if name and name[0].isupper():
            return f"{name}() instance"
    return None


class SharedStateAnalysis:
    """Project-wide SL009 facts and the shared-state report."""

    #: Instance-attribute inventory scope (the parallel-kernel dispatch path).
    INSTANCE_SCOPE = ("repro.sim.kernel", "repro.ble")

    def __init__(self, project: Project) -> None:
        self.project = project
        self.globals: List[SharedStateEntry] = []
        self.instance_attrs: List[SharedStateEntry] = []
        self._names_cache: Dict[str, Set[str]] = {}
        self._reachable_functions = self._compute_reachable()
        self._suppression_reasons = self._collect_suppression_reasons()
        self._collect_globals()
        self._collect_instance_attrs()

    # -- reachability ---------------------------------------------------

    def _compute_reachable(self) -> Set[str]:
        """Functions reachable from Simulator dispatch (call+partial+ref).

        When the linted set has no ``repro.sim.kernel``, the fallback
        depends on what *is* there: for ad-hoc/fixture files (no ``repro``
        modules at all) every function counts as reachable -- the local,
        conservative reading -- while a partial slice of the repro tree
        (a pre-commit run on changed files) stays silent rather than
        pretending it can see the dispatch path.
        """
        roots = [
            q
            for q, fn in self.project.functions.items()
            if fn.module == DISPATCH_MODULE
        ]
        if not roots:
            if any(m.startswith("repro") for m in self.project.modules):
                return set()
            return set(self.project.functions)
        seen: Set[str] = set()
        stack = sorted(roots)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            fn = self.project.functions.get(current)
            if fn is None:
                continue
            for site in fn.calls:
                if site.callee in self.project.functions and site.callee not in seen:
                    stack.append(site.callee)
                elif site.callee in self.project.classes:
                    init = self.project.resolve_method(site.callee, "__init__")
                    if init and init not in seen:
                        stack.append(init)
        return seen

    def _collect_suppression_reasons(self) -> Dict[str, Dict[int, str]]:
        from repro.lint.core import parse_suppressions
        from repro.lint.taint import _suppression_alias_map

        out: Dict[str, Dict[int, str]] = {}
        alias_map = _suppression_alias_map()
        for module in sorted(self.project.modules):
            ctx = self.project.modules[module].ctx
            sup = parse_suppressions(ctx, alias_map)
            out[module] = {
                line: sup.reasons.get(line, "")
                for line, codes in sup.by_line.items()
                if "SL009" in codes
            }
        return out

    # -- collection -----------------------------------------------------

    def _collect_globals(self) -> None:
        for module in sorted(self.project.modules):
            info = self.project.modules[module]
            for stmt in info.ctx.tree.body:
                self._note_global(module, stmt, class_prefix=None)
                if isinstance(stmt, ast.ClassDef):
                    for child in stmt.body:
                        self._note_global(module, child, class_prefix=stmt.name)
        self.globals.sort(key=lambda e: (e.module, e.line, e.qualname))

    def _note_global(
        self, module: str, stmt: ast.stmt, class_prefix: Optional[str]
    ) -> None:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            return
        value_type = _mutable_value_type(value)
        if value_type is None:
            return
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id.startswith("__"):
                continue  # __all__ and friends: import-time only
            qual = (
                f"{module}.{class_prefix}.{target.id}"
                if class_prefix
                else f"{module}.{target.id}"
            )
            sanction = self._suppression_reasons.get(module, {})
            self.globals.append(
                SharedStateEntry(
                    kind="class-attr" if class_prefix else "module-global",
                    module=module,
                    qualname=qual,
                    line=stmt.lineno,
                    value_type=value_type,
                    dispatch_reachable=self._global_is_reachable(module, target.id),
                    sanctioned=stmt.lineno in sanction,
                    reason=sanction.get(stmt.lineno, ""),
                )
            )

    def _global_is_reachable(self, module: str, name: str) -> bool:
        """Is the global referenced by any dispatch-reachable function?"""
        fq = f"{module}.{name}"
        for qualname in self._reachable_functions:
            fn = self.project.functions.get(qualname)
            if fn is None:
                continue
            if fn.module == module and name in self._names_used(fn):
                return True
            minfo = self.project.modules.get(fn.module)
            if minfo is None:
                continue
            for local, target in minfo.imports.items():
                if target == fq and local in self._names_used(fn):
                    return True
        return False

    def _names_used(self, fn: FunctionInfo) -> Set[str]:
        cached = self._names_cache.get(fn.qualname)
        if cached is None:
            cached = {
                node.id
                for node in ast.walk(fn.node)
                if isinstance(node, ast.Name)
            }
            self._names_cache[fn.qualname] = cached
        return cached

    def _collect_instance_attrs(self) -> None:
        seen: Set[Tuple[str, str]] = set()
        for cls_name in sorted(self.project.classes):
            cinfo = self.project.classes[cls_name]
            if not cinfo.module.startswith(self.INSTANCE_SCOPE):
                continue
            for method_qual in sorted(cinfo.methods.values()):
                fn = self.project.functions.get(method_qual)
                if fn is None:
                    continue
                for node in ast.walk(fn.node):  # type: ignore[arg-type]
                    if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                        continue
                    targets = (
                        node.targets if isinstance(node, ast.Assign) else [node.target]
                    )
                    value = node.value
                    if value is None:
                        continue
                    value_type = _mutable_value_type(value)
                    if value_type is None:
                        continue
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            key = (cls_name, target.attr)
                            if key in seen:
                                continue
                            seen.add(key)
                            self.instance_attrs.append(
                                SharedStateEntry(
                                    kind="instance-attr",
                                    module=cinfo.module,
                                    qualname=f"{cls_name}.{target.attr}",
                                    line=node.lineno,
                                    value_type=value_type,
                                    dispatch_reachable=method_qual
                                    in self._reachable_functions,
                                )
                            )
        self.instance_attrs.sort(key=lambda e: (e.module, e.qualname))

    # -- outputs --------------------------------------------------------

    def violations(self, module: str) -> Iterator[SharedStateEntry]:
        """Unsanctioned dispatch-reachable shared globals in ``module``."""
        for entry in self.globals:
            if (
                entry.module == module
                and entry.dispatch_reachable
                and not entry.sanctioned
            ):
                yield entry

    def report(self) -> dict:
        """The deterministic shared-state report document."""
        return {
            "schema": "repro.lint.shared-state/1",
            "dispatch_roots": DISPATCH_MODULE,
            "globals": [e.to_dict() for e in self.globals],
            "instance_state": [e.to_dict() for e in self.instance_attrs],
        }


def compute_shared_state(project: Project) -> SharedStateAnalysis:
    analysis = project.analysis("shared-state", lambda: SharedStateAnalysis(project))
    return analysis  # type: ignore[return-value]
