"""Interprocedural taint: wall-clock, RNG, env-read, and set-order flow.

PR 4's rules catch ``time.time()`` where it is *written*; this engine
catches it where it is *laundered*.  A helper that wraps a wall-clock read
(or an unseeded draw, or an ``os.environ`` access) taints itself, every
function that calls it taints transitively, and the flow-aware variants of
SL001/SL002/SL005 report each call into the tainted region with the full
call chain as evidence (``_jitter -> _now_hack -> time.time``).

Semantics, deliberately conservative and deterministic:

* **Sources** are the same syntactic patterns the intra-file rules match
  (shared predicates below), so the two layers can never disagree about
  what counts as a read.
* **Barriers** are each rule's sanctioned modules (``repro.obs.wallclock``
  and ``repro.obs.profiler`` for wall-clock, ``repro.sim.rng`` for
  randomness, ``repro.exp.cli`` for env): taint never propagates *out of*
  a barrier module, because routing through it is exactly the sanctioned
  fix.  An inline suppression on the source line is likewise a barrier --
  a justified read must not re-flag every caller.
* **Propagation** follows ``call`` and ``partial`` edges of the
  :class:`repro.lint.graph.Project` graph (a ``partial(f, ...)`` bakes the
  creator's context into ``f``); bare callback references do not
  propagate, since the callback runs in the dispatcher's context.
* The fixpoint is a worklist over sorted qualnames; ties in chain length
  break lexicographically, so evidence chains are stable across runs.

Set-order taint is different in kind: a function *returning* a set makes
its call sites order-hazardous.  :attr:`TaintAnalysis.set_returning`
closes ``returns_set`` over wrapper functions (``def g(): return f()``)
and feeds SL003's ``_is_setish``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.graph import EDGE_REF, FunctionInfo, Project, dotted, terminal_name

#: Taint kinds.
WALLCLOCK = "wallclock"
RNG = "rng"
ENV = "env"

KINDS = (WALLCLOCK, RNG, ENV)

#: kind -> modules taint never escapes from (the sanctioned homes).
BARRIER_MODULES: Dict[str, frozenset] = {
    WALLCLOCK: frozenset({"repro.obs.profiler", "repro.obs.wallclock"}),
    RNG: frozenset({"repro.sim.rng"}),
    ENV: frozenset({"repro.exp.cli"}),
}

#: ``time`` module functions that read the host clock (mirror of SL001).
WALLCLOCK_TIME_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
    }
)
DATETIME_FACTORIES = frozenset({"now", "utcnow", "today"})
ENV_FUNCS = frozenset(
    {"getenv", "cpu_count", "sched_getaffinity", "process_cpu_count", "putenv"}
)


def source_kind(callee: str) -> Optional[Tuple[str, str]]:
    """Classify an *external* dotted call target as a taint source.

    Returns ``(kind, canonical_source)`` or None.  Operates on the resolved
    dotted path (``time.perf_counter``, ``random.random``, ``os.environ``),
    which the call resolver produces for imported externals.
    """
    head, _, rest = callee.partition(".")
    if head == "time" and rest in WALLCLOCK_TIME_FUNCS:
        return WALLCLOCK, callee
    if head in ("datetime", "date") and rest in DATETIME_FACTORIES:
        return WALLCLOCK, callee
    if head == "datetime" and rest.startswith(("datetime.", "date.")):
        tail = rest.rsplit(".", 1)[-1]
        if tail in DATETIME_FACTORIES:
            return WALLCLOCK, callee
    if head == "random":
        if rest == "Random":
            return None  # seeded construction is fine; unseeded caught below
        if rest:
            return RNG, callee
    if head == "numpy" and rest.startswith("random"):
        return RNG, callee
    if head == "os":
        if rest == "environ" or rest.startswith("environ."):
            return ENV, "os.environ"
        if rest in ENV_FUNCS:
            return ENV, callee
    return None


@dataclass
class Taint:
    """Why one function is tainted for one kind."""

    kind: str
    #: Qualname chain from this function down to the source call,
    #: ending with the canonical source (``time.time``).
    chain: Tuple[str, ...]
    #: Line of the call (or source read) inside this function.
    line: int

    def render_chain(self) -> str:
        return " -> ".join(self.chain)


class TaintAnalysis:
    """Fixpoint taint facts over one :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project
        #: kind -> {qualname -> Taint}.
        self.tainted: Dict[str, Dict[str, Taint]] = {k: {} for k in KINDS}
        #: qualnames whose calls evaluate to sets (interprocedural SL003).
        self.set_returning: Set[str] = set()
        self._suppressed_lines = self._collect_suppressed_source_lines()
        self._seed_direct_sources()
        self._propagate()
        self._close_set_returning()

    # -- seeding -------------------------------------------------------

    def _collect_suppressed_source_lines(self) -> Dict[str, Set[int]]:
        """module -> lines carrying a simlint suppression (any rule).

        A suppressed source read is *sanctioned*: it must not seed taint,
        or every caller of e.g. the profiled dispatch loop would light up
        despite the justified inline allow.
        """
        from repro.lint.core import parse_suppressions

        out: Dict[str, Set[int]] = {}
        alias_to_code = _suppression_alias_map()
        for module in sorted(self.project.modules):
            ctx = self.project.modules[module].ctx
            sup = parse_suppressions(ctx, alias_to_code)
            out[module] = set(sup.by_line)
        return out

    def _seed_direct_sources(self) -> None:
        for qualname in sorted(self.project.functions):
            fn = self.project.functions[qualname]
            for kind, source, line in _direct_sources(fn):
                if line in self._suppressed_lines.get(fn.module, ()):
                    continue
                if fn.module in BARRIER_MODULES[kind]:
                    continue
                current = self.tainted[kind].get(qualname)
                if current is None or line < current.line:
                    self.tainted[kind][qualname] = Taint(
                        kind=kind, chain=(qualname, source), line=line
                    )

    # -- propagation ---------------------------------------------------

    def _propagate(self) -> None:
        for kind in KINDS:
            barriers = BARRIER_MODULES[kind]
            facts = self.tainted[kind]
            changed = True
            while changed:
                changed = False
                for qualname in sorted(self.project.functions):
                    fn = self.project.functions[qualname]
                    if fn.module in barriers:
                        continue
                    best = facts.get(qualname)
                    for site in fn.calls:
                        if site.kind == EDGE_REF:
                            continue
                        callee_fact = facts.get(site.callee)
                        if callee_fact is None:
                            continue
                        callee = self.project.functions.get(site.callee)
                        if callee is not None and callee.module in barriers:
                            continue
                        if site.line in self._suppressed_lines.get(fn.module, ()):
                            continue
                        candidate = Taint(
                            kind=kind,
                            chain=(qualname,) + callee_fact.chain,
                            line=site.line,
                        )
                        if best is None or _chain_key(candidate) < _chain_key(best):
                            best = candidate
                    if best is not None and best is not facts.get(qualname):
                        facts[qualname] = best
                        changed = True

    def _close_set_returning(self) -> None:
        self.set_returning = {
            q for q, fn in self.project.functions.items() if fn.returns_set
        }
        changed = True
        while changed:
            changed = False
            for qualname in sorted(self.project.functions):
                if qualname in self.set_returning:
                    continue
                fn = self.project.functions[qualname]
                if _returns_call_to(fn, self.set_returning, self.project):
                    self.set_returning.add(qualname)
                    changed = True

    # -- queries -------------------------------------------------------

    def taint_of(self, kind: str, qualname: str) -> Optional[Taint]:
        return self.tainted[kind].get(qualname)

    def call_site_findings(
        self, module: str
    ) -> List[Tuple[str, FunctionInfo, "CallSiteTaint"]]:
        """Tainted project-function calls made from ``module``, sorted.

        Each item is ``(kind, caller, site_taint)``; the direct source
        inside the tainted callee is reported separately by the intra-file
        rule, so only *project-internal* callees appear here.
        """
        out: List[Tuple[str, FunctionInfo, CallSiteTaint]] = []
        for qualname in sorted(self.project.functions):
            fn = self.project.functions[qualname]
            if fn.module != module:
                continue
            for kind in KINDS:
                if fn.module in BARRIER_MODULES[kind]:
                    continue
                facts = self.tainted[kind]
                for site in fn.calls:
                    if site.kind == EDGE_REF:
                        continue
                    fact = facts.get(site.callee)
                    if fact is None:
                        continue
                    callee = self.project.functions.get(site.callee)
                    if callee is None or callee.module in BARRIER_MODULES[kind]:
                        continue
                    out.append(
                        (
                            kind,
                            fn,
                            CallSiteTaint(
                                line=site.line,
                                col=site.col,
                                callee=site.callee,
                                via_partial=site.kind != "call",
                                chain=(qualname,) + fact.chain,
                            ),
                        )
                    )
        out.sort(key=lambda item: (item[2].line, item[2].col, item[0], item[2].callee))
        return out


@dataclass(frozen=True)
class CallSiteTaint:
    """One tainted call site, ready to become a finding."""

    line: int
    col: int
    callee: str
    via_partial: bool
    chain: Tuple[str, ...]

    def render_chain(self) -> str:
        return " -> ".join(_short(q) for q in self.chain)


def _short(qualname: str) -> str:
    """Compress ``repro.ble.conn.Connection._tick`` to ``conn.Connection._tick``."""
    parts = qualname.split(".")
    if parts[0] == "repro" and len(parts) > 3:
        return ".".join(parts[2:])
    return qualname


def _chain_key(taint: Taint) -> Tuple[int, Tuple[str, ...]]:
    return (len(taint.chain), taint.chain)


def _suppression_alias_map() -> Dict[str, str]:
    from repro.lint.core import _alias_map
    from repro.lint.rules import default_rules

    return _alias_map(default_rules())


def _returns_call_to(fn: FunctionInfo, targets: Set[str], project: Project) -> bool:
    """Does ``fn`` return the result of a call into ``targets``?"""
    node = fn.node
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    resolver_calls = {(c.line, c.col): c.callee for c in fn.calls}
    for child in ast.walk(node):
        if isinstance(child, ast.Return) and isinstance(child.value, ast.Call):
            callee = resolver_calls.get(
                (child.value.lineno, child.value.col_offset)
            )
            if callee in targets:
                return True
    return False


# -- direct-source detection (shared with the intra-file rules) -------------


def _direct_sources(fn: FunctionInfo) -> List[Tuple[str, str, int]]:
    """``(kind, canonical_source, line)`` for every source read in ``fn``.

    Works from the resolved call edges where possible (imports already
    honoured by the resolver) plus a small AST pass for the patterns that
    are not calls (``os.environ[...]`` subscripts, attribute reads).
    """
    out: List[Tuple[str, str, int]] = []
    for site in fn.calls:
        if site.kind == EDGE_REF:
            continue
        classified = source_kind(site.callee)
        if classified is not None:
            out.append((classified[0], classified[1], site.line))
    node = fn.node
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and child.attr == "environ":
            root = terminal_name(child.value)
            if root == "os":
                out.append((ENV, "os.environ", child.lineno))
        elif isinstance(child, ast.Call):
            func = child.func
            # unseeded random.Random() / Random()
            callee = dotted(func)
            if callee.endswith("Random") and not child.args and not child.keywords:
                tail = callee.rsplit(".", 1)[-1]
                if tail == "Random" and callee in ("Random", "random.Random"):
                    out.append((RNG, "random.Random()", child.lineno))
                elif tail == "SystemRandom":
                    out.append((RNG, "random.SystemRandom", child.lineno))
    out.sort(key=lambda item: (item[2], item[0], item[1]))
    return out


def compute_taint(project: Project) -> TaintAnalysis:
    """The memoized entry point used by the flow-aware rules."""
    return project.analysis("taint", lambda: TaintAnalysis(project))  # type: ignore[return-value]
