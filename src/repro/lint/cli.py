"""``python -m repro lint``: argument wiring, output formats, exit codes.

The subcommand is registered by :mod:`repro.exp.cli`; this module owns the
flags and the run loop so the lint layer stays importable without the
experiment stack.

Exit codes: 0 clean (or every finding baselined/suppressed), 1 findings,
2 usage/configuration problems (unreadable baseline, missing paths).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import List, Optional, TextIO

from repro.lint.baseline import BaselineError, load_baseline, write_baseline
from repro.lint.core import SEVERITY_ERROR, Finding, lint_paths
from repro.lint.rules import default_rules


def default_target() -> Path:
    """The ``repro`` package directory (lint target when no paths given)."""
    import repro

    return Path(repro.__file__).resolve().parent


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``lint`` flags to an (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=[],
        help="files/directories to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="subtract grandfathered findings recorded in FILE "
        "(an empty file is a valid, empty baseline)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate --baseline FILE from the current findings and exit 0",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as errors for the exit code",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="SL00X",
        help="print one rule's rationale/example/suppression page and exit",
    )
    parser.add_argument(
        "--shared-state-report",
        default=None,
        metavar="FILE",
        help="write the SL009 shared-state survey (JSON) to FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="FILE",
        help="reuse/store findings in FILE, keyed on a hash of every target"
        " and linter source file (warm re-lints are sub-second)",
    )


def _print_rules(stream: TextIO) -> None:
    for rule in default_rules():
        allowed = ", ".join(sorted(rule.allowed_modules)) or "-"
        stream.write(
            f"{rule.code}  allow-{rule.alias:<11} [{rule.severity}] "
            f"{rule.summary}  (exempt: {allowed})\n"
        )


def _render_text(
    findings: List[Finding], baselined: int, files_hint: str, stream: TextIO
) -> None:
    for finding in findings:
        stream.write(finding.render() + "\n")
        if finding.text:
            stream.write(f"    {finding.text}\n")
    by_code = Counter(f.code for f in findings)
    breakdown = ", ".join(f"{code} x{n}" for code, n in sorted(by_code.items()))
    summary = f"simlint: {len(findings)} finding(s)"
    if breakdown:
        summary += f" ({breakdown})"
    if baselined:
        summary += f", {baselined} baselined"
    summary += f" in {files_hint}"
    stream.write(summary + "\n")


def _write_shared_state_report(
    targets: List[Path], destination: str, out: TextIO
) -> None:
    """Emit the SL009 survey (module globals + instance state) as JSON."""
    from repro.lint.core import build_project
    from repro.lint.purity import compute_shared_state

    report = compute_shared_state(build_project(targets)).report()
    text = json.dumps(report, indent=2) + "\n"
    if destination == "-":
        out.write(text)
    else:
        Path(destination).write_text(text, encoding="utf-8")
        print(
            f"simlint: shared-state report written to {destination}",
            file=sys.stderr,
        )


def run_lint(args: argparse.Namespace, stream: Optional[TextIO] = None) -> int:
    """Execute the lint subcommand; returns the process exit code."""
    out = stream if stream is not None else sys.stdout
    if args.list_rules:
        _print_rules(out)
        return 0
    if args.explain:
        from repro.lint.explain import explain

        page = explain(args.explain)
        if page is None:
            print(f"simlint: unknown rule {args.explain!r}", file=sys.stderr)
            return 2
        out.write(page)
        return 0
    targets = [Path(p) for p in args.paths] or [default_target()]
    missing = [str(p) for p in targets if not p.exists()]
    if missing:
        print(f"simlint: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    if args.shared_state_report:
        _write_shared_state_report(targets, args.shared_state_report, out)
        if args.shared_state_report == "-":
            return 0  # report-only mode: keep stdout pure JSON

    findings: Optional[List[Finding]] = None
    cache_key: Optional[str] = None
    if args.cache:
        from repro.lint.cache import load_cached, source_hash
        from repro.lint.core import iter_python_files

        cache_key = source_hash(list(iter_python_files(targets)))
        findings = load_cached(Path(args.cache), cache_key)
    if findings is None:
        findings = lint_paths(targets)
        if args.cache and cache_key is not None:
            from repro.lint.cache import store

            store(Path(args.cache), cache_key, findings)

    if args.write_baseline:
        if not args.baseline:
            print("simlint: --write-baseline requires --baseline FILE", file=sys.stderr)
            return 2
        count = write_baseline(args.baseline, findings)
        print(
            f"simlint: baseline with {count} entr{'y' if count == 1 else 'ies'} "
            f"written to {args.baseline}",
            file=sys.stderr,
        )
        return 0

    baselined = 0
    if args.baseline:
        try:
            grandfathered = load_baseline(args.baseline)
        except FileNotFoundError:
            print(
                f"simlint: baseline {args.baseline} does not exist "
                "(touch it for an empty baseline, or --write-baseline)",
                file=sys.stderr,
            )
            return 2
        except BaselineError as exc:
            print(f"simlint: {exc}", file=sys.stderr)
            return 2
        fresh = [f for f in findings if f.fingerprint() not in grandfathered]
        baselined = len(findings) - len(fresh)
        findings = fresh

    files_hint = ", ".join(str(t) for t in targets)
    if args.format == "sarif":
        from repro.lint.sarif import render_sarif

        out.write(render_sarif(findings))
    elif args.format == "json":
        doc = {
            "schema": "repro.lint.report/1",
            "targets": [str(t) for t in targets],
            "baselined": baselined,
            "findings": [f.to_dict() for f in findings],
        }
        out.write(json.dumps(doc, indent=2) + "\n")
    else:
        _render_text(findings, baselined, files_hint, out)

    failing = [
        f
        for f in findings
        if f.severity == SEVERITY_ERROR or args.strict
    ]
    return 1 if failing else 0
