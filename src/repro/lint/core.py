"""The simlint engine: file contexts, findings, suppressions, dispatch.

The engine is deliberately rule-agnostic.  A rule is any object with a
``code`` (``SL001``), an ``alias`` (``wallclock``), a ``severity``, an
``allowed_modules`` frozenset (modules the rule never applies to), and a
``check(ctx)`` iterator of :class:`Finding` objects.  The engine parses a
file once, hands every rule the same :class:`FileContext`, filters the
union of findings through inline suppressions, and returns them sorted.

Suppression grammar (one comment, same line or the line directly above)::

    # simlint: allow-wallclock -- profiler measures real elapsed time
    # simlint: allow-wallclock,allow-env -- reason covering both

The reason after ``--`` is mandatory: a suppression without one, or one
naming an unknown rule, is itself reported as an ``SL000`` finding.  This
keeps the suppression inventory greppable *and* justified.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.lint.graph import Project
    from repro.lint.rules import Rule

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: Code used for engine-level diagnostics (parse failures, bad suppressions).
META_CODE = "SL000"
META_ALIAS = "meta"


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule (or by the engine itself).

    :param code: rule code, e.g. ``SL001``.
    :param alias: human alias, e.g. ``wallclock`` (used in suppressions).
    :param severity: ``"error"`` or ``"warning"``.
    :param path: the path the file was linted under (display only).
    :param module: canonical dotted module name (stable across checkouts;
        feeds the baseline fingerprint).
    :param line: 1-based source line.
    :param col: 0-based column.
    :param message: what is wrong and what to do instead.
    :param text: the stripped offending source line.
    """

    code: str
    alias: str
    severity: str
    path: str
    module: str
    line: int
    col: int
    message: str
    text: str = ""

    def fingerprint(self) -> str:
        """Location-independent identity used by ``--baseline`` files.

        Deliberately excludes the line *number* so unrelated edits above a
        grandfathered finding do not invalidate the baseline; two identical
        offending lines in one module share a fingerprint (both are then
        grandfathered together, which is the conservative direction).
        """
        blob = f"{self.code}|{self.module}|{self.text.strip()}"
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict:
        """JSON-safe representation (used by ``--format=json``)."""
        return {
            "code": self.code,
            "alias": self.alias,
            "severity": self.severity,
            "path": self.path,
            "module": self.module,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "text": self.text,
            "fingerprint": self.fingerprint(),
        }

    def render(self) -> str:
        """One-line human rendering: ``path:line:col: CODE message``."""
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.code} [{self.severity}] {self.message}"
        )


@dataclass
class FileContext:
    """Everything a rule may inspect about one source file."""

    path: Path
    module: str
    source: str
    lines: list[str]
    tree: ast.Module
    #: Whole-program context (symbol table, call graph, lazy analyses).
    #: Always set by the engine -- a single-file lint gets a single-file
    #: project -- but Optional so hand-built contexts stay constructible.
    project: Optional["Project"] = None

    def line_text(self, lineno: int) -> str:
        """The stripped source text of a 1-based line (empty if out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


def _anchored_parts(path: Path) -> list[str]:
    """Path components below the source root (``src/`` or the ``repro`` pkg)."""
    parts = list(path.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        last_src = len(parts) - 1 - parts[::-1].index("src")
        parts = parts[last_src + 1 :]
    elif "repro" in parts:
        parts = parts[parts.index("repro") :]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return parts


def module_name_for(path: Path) -> str:
    """Best-effort dotted module name for ``path``.

    ``src/repro/ble/conn.py`` -> ``repro.ble.conn``; a file outside any
    recognised root keeps its stem (fixture files lint as themselves).
    """
    return ".".join(_anchored_parts(Path(path))) or Path(path).stem


# -- suppressions ------------------------------------------------------------

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*(?P<items>allow-[^#]*?)\s*(?:--\s*(?P<reason>.*\S))?\s*$"
)
_MALFORMED_RE = re.compile(r"#\s*simlint\b")


@dataclass
class Suppressions:
    """Parsed inline suppressions for one file."""

    #: line (1-based) -> set of suppressed rule codes on that line.
    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: line (1-based) -> the mandatory reason text (feeds the SL009 report).
    reasons: dict[int, str] = field(default_factory=dict)
    #: engine findings about the suppressions themselves (missing reason, ...).
    problems: list[Finding] = field(default_factory=list)

    def suppresses(self, finding: Finding) -> bool:
        return finding.code in self.by_line.get(finding.line, ())


def parse_suppressions(
    ctx: FileContext, alias_to_code: dict[str, str]
) -> Suppressions:
    """Scan ``ctx`` for ``# simlint:`` comments.

    A comment on a code line covers that line; a comment standing alone on
    its own line covers the next line as well (decorator style).
    """
    out = Suppressions()

    def meta(lineno: int, message: str) -> Finding:
        return Finding(
            META_CODE,
            META_ALIAS,
            SEVERITY_ERROR,
            str(ctx.path),
            ctx.module,
            lineno,
            0,
            message,
            ctx.line_text(lineno),
        )

    # real comments only (via tokenize): 'simlint:' inside a string literal
    # or docstring must not create or satisfy a suppression.
    comments: list[tuple[int, str, bool]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(ctx.source).readline):
            if tok.type == tokenize.COMMENT:
                lineno, col = tok.start
                standalone = not tok.line[:col].strip()
                comments.append((lineno, tok.string, standalone))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # unparseable tails already surface as SL000 parse findings

    for lineno, raw, standalone in comments:
        if "simlint" not in raw:
            continue
        match = _SUPPRESS_RE.search(raw)
        if match is None:
            if _MALFORMED_RE.search(raw):
                out.problems.append(
                    meta(
                        lineno,
                        "malformed simlint comment; expected "
                        "'# simlint: allow-<rule> -- <reason>'",
                    )
                )
            continue
        if not match.group("reason"):
            out.problems.append(
                meta(
                    lineno,
                    "simlint suppression is missing its mandatory reason "
                    "('# simlint: allow-<rule> -- <reason>')",
                )
            )
            continue
        codes: set[str] = set()
        ok = True
        for item in match.group("items").split(","):
            item = item.strip()
            if not item:
                continue
            if not item.startswith("allow-"):
                out.problems.append(
                    meta(lineno, f"simlint suppression item {item!r} must be 'allow-<rule>'")
                )
                ok = False
                continue
            name = item[len("allow-") :].strip()
            code = alias_to_code.get(name.lower())
            if code is None:
                known = ", ".join(sorted(set(alias_to_code.values())))
                out.problems.append(
                    meta(
                        lineno,
                        f"simlint suppression names unknown rule {name!r} "
                        f"(known: {known})",
                    )
                )
                ok = False
                continue
            codes.add(code)
        if not ok or not codes:
            continue
        reason = match.group("reason") or ""
        out.by_line.setdefault(lineno, set()).update(codes)
        out.reasons.setdefault(lineno, reason)
        if standalone:
            # standalone comment: covers the code line it annotates, skipping
            # over the rest of the comment block and any blank lines.
            j = lineno + 1
            while j <= len(ctx.lines):
                out.by_line.setdefault(j, set()).update(codes)
                out.reasons.setdefault(j, reason)
                stripped = ctx.lines[j - 1].strip()
                if stripped and not stripped.startswith("#"):
                    break
                j += 1
    return out


# -- engine ------------------------------------------------------------------


def _resolve_rules(rules: Optional[Iterable["Rule"]]) -> list["Rule"]:
    if rules is None:
        from repro.lint.rules import default_rules

        return default_rules()
    return list(rules)


def _alias_map(rules: Sequence["Rule"]) -> dict[str, str]:
    mapping: dict[str, str] = {}
    for rule in rules:
        mapping[rule.alias.lower()] = rule.code
        mapping[rule.code.lower()] = rule.code
    mapping.setdefault(META_ALIAS, META_CODE)
    mapping.setdefault(META_CODE.lower(), META_CODE)
    return mapping


def _parse_context(
    source: str, path: Path, modname: str
) -> tuple[Optional[FileContext], Optional[Finding]]:
    """Parse one file into a context, or an SL000 parse finding."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return None, Finding(
            META_CODE,
            META_ALIAS,
            SEVERITY_ERROR,
            str(path),
            modname,
            exc.lineno or 1,
            (exc.offset or 1) - 1,
            f"could not parse file: {exc.msg}",
        )
    ctx = FileContext(
        path=path,
        module=modname,
        source=source,
        lines=source.splitlines(),
        tree=tree,
    )
    return ctx, None


def _check_context(ctx: FileContext, active: Sequence["Rule"]) -> list[Finding]:
    """Run every rule over one parsed context; filter suppressions, sort."""
    suppressions = parse_suppressions(ctx, _alias_map(active))
    findings: list[Finding] = []
    for rule in active:
        if ctx.module in rule.allowed_modules:
            continue
        findings.extend(rule.check(ctx))
    # nested expressions (e.g. chained BinOps) can report one defect several
    # times on a line; keep the first occurrence of each (code, line, message).
    seen: set[tuple[str, int, str]] = set()
    kept: list[Finding] = []
    for f in findings:
        key = (f.code, f.line, f.message)
        if key in seen or suppressions.suppresses(f):
            continue
        seen.add(key)
        kept.append(f)
    kept.extend(suppressions.problems)
    kept.sort(key=lambda f: (f.line, f.col, f.code))
    return kept


def lint_source(
    source: str,
    path: Path | str,
    *,
    rules: Optional[Iterable["Rule"]] = None,
    module: Optional[str] = None,
    project: Optional["Project"] = None,
) -> list[Finding]:
    """Lint ``source`` as if it lived at ``path``; returns sorted findings.

    The ``path``/``module`` indirection is what makes the mutation tests
    possible: callers can lint hypothetical file contents under a real
    module identity (e.g. a ``time.time()`` grafted into ``repro.ble.conn``)
    without touching the working tree.  Without an explicit ``project``
    the file is analysed as a single-file program, so the interprocedural
    rules still see laundering chains that live within the file.
    """
    from repro.lint.graph import Project

    active = _resolve_rules(rules)
    path = Path(path)
    modname = module if module is not None else module_name_for(path)
    ctx, parse_failure = _parse_context(source, path, modname)
    if ctx is None:
        assert parse_failure is not None
        return [parse_failure]
    ctx.project = project if project is not None else Project.from_contexts([ctx])
    return _check_context(ctx, active)


def lint_path(
    path: Path | str, *, rules: Optional[Iterable["Rule"]] = None
) -> list[Finding]:
    """Lint one file on disk (as a single-file program)."""
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), path, rules=rules)


def iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    """Expand files/directories into a deterministic list of ``.py`` files."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            yield from sorted(
                p
                for p in entry.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        else:
            yield entry


def build_project(paths: Iterable[Path | str]) -> "Project":
    """Parse every file under ``paths`` into one whole-program Project.

    Used by ``--shared-state-report`` (and tests) to run the analyses
    without collecting findings; unparseable files are skipped.
    """
    from repro.lint.graph import Project

    contexts: list[FileContext] = []
    for file in iter_python_files(paths):
        ctx, _ = _parse_context(
            Path(file).read_text(encoding="utf-8"), Path(file), module_name_for(file)
        )
        if ctx is not None:
            contexts.append(ctx)
    project = Project.from_contexts(contexts)
    for ctx in contexts:
        ctx.project = project
    return project


def lint_paths(
    paths: Iterable[Path | str], *, rules: Optional[Iterable["Rule"]] = None
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` as ONE program.

    All files parse first, one :class:`~repro.lint.graph.Project` is built
    over the whole set, and every rule then sees each file with the shared
    whole-program context -- this is what lets SL001/SL002/SL005 taint flow
    across modules and SL009 trace reachability from the kernel.
    """
    from repro.lint.graph import Project

    active = _resolve_rules(rules)
    findings: list[Finding] = []
    contexts: list[FileContext] = []
    for file in iter_python_files(paths):
        modname = module_name_for(file)
        ctx, parse_failure = _parse_context(
            file.read_text(encoding="utf-8"), Path(file), modname
        )
        if ctx is None:
            assert parse_failure is not None
            findings.append(parse_failure)
        else:
            contexts.append(ctx)
    project = Project.from_contexts(contexts)
    for ctx in contexts:
        ctx.project = project
        findings.extend(_check_context(ctx, active))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings
