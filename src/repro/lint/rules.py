"""The simlint rule set: SL001..SL009.

Each rule targets a property the simulator's results actually depend on
(see :mod:`repro.lint`).  Rules are AST walkers over a shared
:class:`repro.lint.core.FileContext`; they never execute the code under
analysis.  Since simlint 2.0 every context also carries a whole-program
:class:`repro.lint.graph.Project`, so SL001/SL002/SL005 flag *laundered*
sources through call chains (:mod:`repro.lint.taint`), SL003 sees
set-returning functions, and SL007..SL009 are interprocedural by nature.
False-positive escapes are inline suppressions with a mandatory reason --
the rules err toward flagging, the suppression inventory stays auditable.

+--------+----------------+-----------------------------------------------+
| code   | alias          | property enforced                             |
+========+================+===============================================+
| SL001  | wallclock      | no wall-clock reads outside profiler modules  |
| SL002  | rng            | all randomness flows through repro.sim.rng    |
| SL003  | set-order      | no order-sensitive iteration over sets        |
| SL004  | float-time     | no float arith/equality on integer sim time   |
| SL005  | env            | no env/CPU introspection outside the CLI      |
| SL006  | magic-time     | timing literals must be named constants       |
| SL007  | unit-mix       | no cross-unit time arithmetic/API crossings   |
| SL008  | instr-guard    | hot-path hub calls sit behind .enabled        |
| SL009  | shared-state   | dispatch-reachable mutable globals sanctioned |
+--------+----------------+-----------------------------------------------+
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.core import SEVERITY_ERROR, FileContext, Finding


class Rule:
    """Base class: identity, severity, per-module exemptions."""

    code: str = "SL000"
    alias: str = "meta"
    severity: str = SEVERITY_ERROR
    summary: str = ""
    #: Dotted modules the rule never applies to (the sanctioned homes of
    #: the behaviour the rule forbids elsewhere).
    allowed_modules: frozenset = frozenset()

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        return Finding(
            self.code,
            self.alias,
            self.severity,
            str(ctx.path),
            ctx.module,
            lineno,
            getattr(node, "col_offset", 0),
            message,
            ctx.line_text(lineno),
        )

    def finding_at(
        self, ctx: FileContext, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            self.code,
            self.alias,
            self.severity,
            str(ctx.path),
            ctx.module,
            line,
            col,
            message,
            ctx.line_text(line),
        )

    def _taint_findings(self, ctx: FileContext, kind: str, fix: str) -> Iterator[Finding]:
        """Flow-aware half of SL001/SL002/SL005: tainted project calls."""
        if ctx.project is None:
            return
        from repro.lint.taint import compute_taint

        analysis = compute_taint(ctx.project)
        for found_kind, _fn, site in analysis.call_site_findings(ctx.module):
            if found_kind != kind:
                continue
            how = "wrapped in functools.partial" if site.via_partial else "called"
            yield self.finding_at(
                ctx,
                site.line,
                site.col,
                f"'{site.chain[1].rsplit('.', 1)[-1]}' is {how} here and"
                f" launders {site.chain[-1]} (chain:"
                f" {site.render_chain()}) -- {fix}",
            )


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _dotted(node: ast.AST) -> str:
    """Render a Name/Attribute chain as ``a.b.c`` (best effort)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _module_aliases(tree: ast.Module, module: str) -> Set[str]:
    """Local names bound to ``import <module>`` (honouring ``as`` aliases)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == module or item.name.startswith(module + "."):
                    aliases.add((item.asname or item.name).split(".")[0])
    return aliases


# -- SL001: wall clock -------------------------------------------------------

#: ``time`` module functions that read the host clock.
_WALLCLOCK_TIME_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
    }
)
#: ``datetime``/``date`` class methods that read the host clock.
_DATETIME_FACTORIES = frozenset({"now", "utcnow", "today"})


class WallclockRule(Rule):
    """SL001: simulated code must never read the host clock.

    Simulation time is :attr:`repro.sim.kernel.Simulator.now`; wall-clock
    reads belong to the profiler modules (which are allowlisted) and make
    any value they touch non-reproducible.
    """

    code = "SL001"
    alias = "wallclock"
    summary = "no wall-clock reads (time.time, perf_counter, datetime.now)"
    allowed_modules = frozenset({"repro.obs.profiler", "repro.obs.wallclock"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        time_aliases = _module_aliases(ctx.tree, "time")
        datetime_aliases = {"datetime", "date"}
        from_imported: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for item in node.names:
                        if item.name in _WALLCLOCK_TIME_FUNCS:
                            from_imported.add(item.asname or item.name)
                            yield self.finding(
                                ctx,
                                node,
                                f"wall-clock import 'from time import {item.name}'"
                                " -- sim code must use Simulator.now; wall-clock"
                                " reads live in repro.obs.profiler/wallclock",
                            )
                elif node.module == "datetime":
                    for item in node.names:
                        if item.name in ("datetime", "date"):
                            datetime_aliases.add(item.asname or item.name)
            elif isinstance(node, ast.Call):
                func = node.func
                called = _dotted(func)
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in time_aliases
                    and func.attr in _WALLCLOCK_TIME_FUNCS
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"wall-clock read '{called}()' -- use Simulator.now"
                        " (sim time) or route through repro.obs.wallclock",
                    )
                elif isinstance(func, ast.Name) and func.id in from_imported:
                    yield self.finding(
                        ctx,
                        node,
                        f"wall-clock read '{func.id}()' -- use Simulator.now"
                        " (sim time) or route through repro.obs.wallclock",
                    )
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr in _DATETIME_FACTORIES
                    and _terminal_name(func.value) in datetime_aliases
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"wall-clock read '{called}()' -- timestamps must come"
                        " from sim time, not the host calendar",
                    )
        yield from self._taint_findings(
            ctx,
            "wallclock",
            "route through repro.obs.wallclock or take sim time as a parameter",
        )


# -- SL002: randomness -------------------------------------------------------


class RngRule(Rule):
    """SL002: no global/unseeded randomness; use :mod:`repro.sim.rng`.

    The module-level ``random.*`` functions share one hidden global stream,
    ``random.Random()`` with no arguments seeds from the OS, and every
    ``numpy.random`` entry point either is global or hides its own seed
    plumbing -- all three break the ``(experiment_seed, stream_name)``
    derivation that makes repetitions bit-for-bit reproducible.
    """

    code = "SL002"
    alias = "rng"
    summary = "no global/unseeded random or numpy.random"
    allowed_modules = frozenset({"repro.sim.rng"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        random_aliases = _module_aliases(ctx.tree, "random")
        numpy_aliases = _module_aliases(ctx.tree, "numpy")
        from_imported: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for item in node.names:
                        if item.name == "Random":
                            continue
                        from_imported.add(item.asname or item.name)
                        yield self.finding(
                            ctx,
                            node,
                            f"'from random import {item.name}' pulls from the"
                            " global stream -- take a random.Random from"
                            " repro.sim.rng.RngRegistry.stream() instead",
                        )
                elif node.module in ("numpy", "numpy.random") and any(
                    item.name == "random" or node.module == "numpy.random"
                    for item in node.names
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "numpy.random is not routed through repro.sim.rng --"
                        " derive draws from an RngRegistry stream",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in random_aliases
                ):
                    if func.attr == "Random":
                        if not node.args and not node.keywords:
                            yield self.finding(
                                ctx,
                                node,
                                "unseeded random.Random() seeds from the OS --"
                                " pass an explicit seed or use"
                                " repro.sim.rng.RngRegistry.stream()",
                            )
                    elif func.attr == "SystemRandom":
                        yield self.finding(
                            ctx,
                            node,
                            "random.SystemRandom is OS entropy, never"
                            " reproducible -- use a seeded stream from"
                            " repro.sim.rng",
                        )
                    else:
                        yield self.finding(
                            ctx,
                            node,
                            f"global 'random.{func.attr}()' shares hidden state"
                            " across the process -- use a named stream from"
                            " repro.sim.rng.RngRegistry",
                        )
                elif isinstance(func, ast.Name):
                    if func.id in from_imported:
                        yield self.finding(
                            ctx,
                            node,
                            f"'{func.id}()' draws from the global random stream"
                            " -- use a named stream from repro.sim.rng",
                        )
                    elif func.id == "Random" and not node.args and not node.keywords:
                        yield self.finding(
                            ctx,
                            node,
                            "unseeded Random() seeds from the OS -- pass an"
                            " explicit seed derived from the experiment seed",
                        )
                elif isinstance(func, ast.Attribute):
                    value = func.value
                    if (
                        isinstance(value, ast.Attribute)
                        and value.attr == "random"
                        and isinstance(value.value, ast.Name)
                        and value.value.id in numpy_aliases
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"'{_dotted(func)}()' bypasses repro.sim.rng --"
                            " all randomness must derive from the experiment"
                            " seed via RngRegistry",
                        )
        yield from self._taint_findings(
            ctx,
            "rng",
            "take a seeded random.Random from repro.sim.rng instead",
        )


# -- SL003: set iteration order ----------------------------------------------


def _is_sorted_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "sorted"
    )


def _is_setish(
    node: ast.AST,
    tainted: Set[str],
    is_set_call: Optional["_SetCallPredicate"] = None,
) -> bool:
    """Does ``node`` evaluate to a set (literal, ctor, tainted local, or a
    call to a set-returning project function)?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        # interprocedural: `helper()` where helper is proven set-returning.
        # sorted(...) is a Call and lands here too -> never setish, so
        # `sorted(helper())` launders at every consumer.
        return is_set_call is not None and is_set_call(node)
    if isinstance(node, ast.Name) and node.id in tainted:
        return True
    if isinstance(node, ast.GeneratorExp) and node.generators:
        # a genexp streams its source's order; one wrapping an immediate
        # sorted(...) is deterministic and must stay clean.
        source = node.generators[0].iter
        if _is_sorted_call(source):
            return False
        return _is_setish(source, tainted, is_set_call)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        # set algebra propagates taint: (a | b) is a set if either side is.
        return _is_setish(node.left, tainted, is_set_call) or _is_setish(
            node.right, tainted, is_set_call
        )
    return False


def _is_set_annotation(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    name = _terminal_name(node if not isinstance(node, ast.Subscript) else node.value)
    return name in ("set", "Set", "frozenset", "FrozenSet", "AbstractSet", "MutableSet")


class _SetCallPredicate:
    """Resolve a call node to "returns a set" via the project call graph.

    Covers bare names (``neighbours(...)``) and single-dotted module
    attributes (``topo.neighbours(...)``); deeper chains and method calls
    stay unresolved -- conservative silence, not a false positive.
    """

    def __init__(self, ctx: FileContext) -> None:
        self._project = ctx.project
        self._module = ctx.module
        self._returning: frozenset = frozenset()
        if self._project is not None:
            from repro.lint.taint import compute_taint

            self._returning = frozenset(compute_taint(self._project).set_returning)

    def __call__(self, node: ast.Call) -> bool:
        if not self._returning or self._project is None:
            return False
        func = node.func
        if isinstance(func, ast.Name):
            target = self._project.resolve_module_name(self._module, func.id)
            return target in self._returning
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            head = self._project.resolve_module_name(self._module, func.value.id)
            return head is not None and f"{head}.{func.attr}" in self._returning
        return False


class SetIterRule(Rule):
    """SL003: iteration order over a set is hash-randomized -- sort first.

    ``dict`` iteration is insertion-ordered (deterministic given a
    deterministic program) and deliberately not flagged; ``set`` iteration
    order depends on ``PYTHONHASHSEED`` for str/bytes members and on
    insertion history for ints, either of which lets host state reach event
    scheduling or serialized output.  The taint heuristic is local to each
    function: names bound to set expressions are tracked, attribute loads
    are not (annotate those sites or sort at the source).
    """

    code = "SL003"
    alias = "set-order"
    summary = "no order-sensitive iteration over sets (wrap in sorted())"

    #: calls whose argument order becomes output order.
    _ORDER_SINKS = frozenset({"list", "tuple", "iter", "enumerate"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # pass 1: collect tainted names file-wide (set-valued assignments,
        # set-annotated targets and parameters).  File-global taint is the
        # "lite" in taint-lite: a rare same-name collision across functions
        # over-flags, and the escape hatch is an annotated suppression.
        is_set_call = _SetCallPredicate(ctx)
        tainted: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                if _is_setish(node.value, tainted, is_set_call):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            tainted.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if _is_set_annotation(node.annotation) or (
                    node.value is not None
                    and _is_setish(node.value, tainted, is_set_call)
                ):
                    tainted.add(node.target.id)
            elif isinstance(node, ast.arg) and _is_set_annotation(node.annotation):
                tainted.add(node.arg)
        # pass 2: find order-sensitive consumers of set-ish iterables.
        for node in ast.walk(ctx.tree):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                func = node.func
                name = func.id if isinstance(func, ast.Name) else None
                attr = func.attr if isinstance(func, ast.Attribute) else None
                if (name in self._ORDER_SINKS or attr == "join") and node.args:
                    iters.append(node.args[0])
            for it in iters:
                # sorted(...) / sorted(..., key=...) launders the taint --
                # including sorted(<set-returning call>).
                if _is_sorted_call(it):
                    continue
                if _is_setish(it, tainted, is_set_call):
                    yield self.finding(
                        ctx,
                        it,
                        "iteration over a set is hash-order dependent and can"
                        " reach event scheduling or serialized output -- wrap"
                        " the iterable in sorted(...)",
                    )


# -- SL004: float time -------------------------------------------------------

#: name suffixes of the integer-time naming convention.
_TIME_SUFFIXES = ("_ns", "_us", "_ms")
#: bare names treated as sim-time values after stripping leading underscores.
_TIME_BARE_NAMES = frozenset({"now", "when", "deadline", "anchor_point"})


def _is_time_identifier(name: str) -> bool:
    stripped = name.lstrip("_")
    return name.endswith(_TIME_SUFFIXES) or stripped in _TIME_BARE_NAMES


#: builtins that preserve integer-ness: a time name inside these is still time.
_INT_PRESERVING_CALLS = frozenset({"min", "max", "abs", "round", "int", "sum"})


def _mentions_time_name(node: ast.AST) -> Optional[str]:
    """Find a time-named identifier in ``node`` without crossing conversions.

    Descends into arithmetic and integer-preserving builtins but *not* into
    arbitrary calls: ``ns_to_s(t_ns) * 1e6`` is an explicit conversion whose
    result is no longer integer sim time.
    """
    if isinstance(node, ast.Name):
        return node.id if _is_time_identifier(node.id) else None
    if isinstance(node, ast.Attribute):
        if _is_time_identifier(node.attr):
            return node.attr
        return None
    if isinstance(node, ast.Call):
        func_name = node.func.id if isinstance(node.func, ast.Name) else None
        if func_name not in _INT_PRESERVING_CALLS:
            return None
        for arg in node.args:
            hit = _mentions_time_name(arg)
            if hit is not None:
                return hit
        return None
    for child in ast.iter_child_nodes(node):
        hit = _mentions_time_name(child)
        if hit is not None:
            return hit
    return None


def _float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _float_literal(node.operand)
    return False


class FloatTimeRule(Rule):
    """SL004: sim time is integer ns -- keep floats away from ``*_ns`` names.

    Flags ``==``/``!=`` against a float literal and ``+ - * %`` with a
    float-literal operand whenever the other side mentions a time-named
    variable (``*_ns``/``*_us``/``*_ms``, ``now``, ``when``).  True
    division is deliberately exempt: ``t_ns / SEC`` is the sanctioned
    idiom for producing float *reporting* values (:mod:`repro.sim.units`).
    """

    code = "SL004"
    alias = "float-time"
    summary = "no float equality/arithmetic on integer sim-time variables"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for op, left, right in zip(node.ops, operands, operands[1:]):
                    if not isinstance(op, (ast.Eq, ast.NotEq)):
                        continue
                    for a, b in ((left, right), (right, left)):
                        if _float_literal(a):
                            name = _mentions_time_name(b)
                            if name is not None:
                                yield self.finding(
                                    ctx,
                                    node,
                                    f"float equality against integer sim time"
                                    f" '{name}' -- compare integer nanoseconds"
                                    " (repro.sim.units), never floats",
                                )
                                break
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub, ast.Mult, ast.Mod)
            ):
                for a, b in ((node.left, node.right), (node.right, node.left)):
                    if _float_literal(a):
                        name = _mentions_time_name(b)
                        if name is not None:
                            yield self.finding(
                                ctx,
                                node,
                                f"float arithmetic on integer sim time"
                                f" '{name}' -- scale in integer ns (or divide,"
                                " which is the explicit float-conversion"
                                " idiom)",
                            )
                            break


# -- SL005: environment ------------------------------------------------------

_ENV_FUNCS = frozenset(
    {"getenv", "cpu_count", "sched_getaffinity", "process_cpu_count", "putenv"}
)


class EnvRule(Rule):
    """SL005: configuration must be explicit -- no env/CPU introspection.

    A cached result is only replayable if its config hash captures every
    input; a sneaky ``os.environ`` read is an input the hash cannot see.
    The CLI boundary (``repro.exp.cli``) is the one sanctioned reader: it
    turns environment state into explicit config before anything runs.
    """

    code = "SL005"
    alias = "env"
    summary = "no os.environ / os.cpu_count reads outside repro.exp.cli"
    allowed_modules = frozenset({"repro.exp.cli"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        os_aliases = _module_aliases(ctx.tree, "os")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "os":
                for item in node.names:
                    if item.name == "environ" or item.name in _ENV_FUNCS:
                        yield self.finding(
                            ctx,
                            node,
                            f"'from os import {item.name}' -- environment and"
                            " host-CPU state must enter through repro.exp.cli"
                            " as explicit config",
                        )
            elif (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in os_aliases
                and node.attr == "environ"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "os.environ read outside the CLI boundary -- cached"
                    " results cannot see this input; pass it as explicit"
                    " config from repro.exp.cli",
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in os_aliases
                and node.func.attr in _ENV_FUNCS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"'os.{node.func.attr}()' outside the CLI boundary --"
                    " host introspection makes runs machine-dependent; pass"
                    " the value as explicit config",
                )
        yield from self._taint_findings(
            ctx,
            "env",
            "read the environment in repro.exp.cli and pass explicit config",
        )


# -- SL006: magic timing literals --------------------------------------------

#: ns values of protocol timing constants that must be referenced by name.
TIMING_LITERALS: Dict[int, str] = {
    150_000: "T_IFS_NS (BLE inter-frame space, 150 us)",
    1_250_000: "CONN_INTERVAL_UNIT_NS / TRANSMIT_WINDOW_DELAY_NS (1.25 ms)",
    625_000: "the BLE time-slot unit (0.625 ms)",
    10_000_000: "the BLE supervision-timeout unit (10 ms)",
    192_000: "IEEE 802.15.4 macSIFS (192 us)",
    640_000: "IEEE 802.15.4 macLIFS (640 us)",
    2_097_152: "WHEEL_SLOT_NS (timer-wheel slot width, 2**21 ns)",
}

#: unit names from repro.sim.units, for the ``<n> * USEC`` product form.
_UNIT_VALUES = {"NSEC": 1, "USEC": 1_000, "MSEC": 1_000_000, "SEC": 1_000_000_000}


class MagicTimingRule(Rule):
    """SL006: BLE/802.15.4 timing literals must reference named constants.

    ``t + 150_000`` is T_IFS to the author and noise to the reviewer; when
    the spec value changes (LE 2M, Coded PHY) the literal silently stays.
    Defining sites -- module/class assignments to ALL_CAPS names -- are
    exempt, which is also the fix: name the constant, then use the name.
    """

    code = "SL006"
    alias = "magic-time"
    summary = "protocol timing literals must be named constants"
    allowed_modules = frozenset({"repro.sim.units"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(ctx.tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node

        def in_caps_definition(node: ast.AST) -> bool:
            cur: Optional[ast.AST] = node
            while cur is not None:
                if isinstance(cur, (ast.Assign, ast.AnnAssign)):
                    targets = (
                        cur.targets if isinstance(cur, ast.Assign) else [cur.target]
                    )
                    for target in targets:
                        name = _terminal_name(target)
                        if name and name.isupper() and len(name) > 1:
                            return True
                cur = parents.get(cur)
            return False

        def hit(node: ast.AST, value: int, rendering: str) -> Finding:
            return self.finding(
                ctx,
                node,
                f"magic timing literal {rendering} is {TIMING_LITERALS[value]}"
                " -- reference the named constant instead",
            )

        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Constant)
                and type(node.value) is int
                and node.value in TIMING_LITERALS
            ):
                parent = parents.get(node)
                if isinstance(parent, ast.BinOp) and self._product_value(parent):
                    continue  # reported once, at the product expression
                if not in_caps_definition(node):
                    yield hit(node, node.value, str(node.value))
            elif isinstance(node, ast.BinOp):
                product = self._product_value(node)
                if product is not None and not in_caps_definition(node):
                    yield hit(node, product, f"'{ast.unparse(node)}'")

    @staticmethod
    def _product_value(node: ast.BinOp) -> Optional[int]:
        """Value of ``<int> * <UNIT>`` / ``<UNIT> * <int>`` if it is a known
        timing constant, else None."""
        if not isinstance(node.op, ast.Mult):
            return None
        pairs: List[Tuple[ast.expr, ast.expr]] = [
            (node.left, node.right),
            (node.right, node.left),
        ]
        for const, unit in pairs:
            if (
                isinstance(const, ast.Constant)
                and type(const.value) is int
                and isinstance(unit, ast.Name)
                and unit.id in _UNIT_VALUES
            ):
                product = const.value * _UNIT_VALUES[unit.id]
                if product in TIMING_LITERALS:
                    return product
        return None


# -- SL007: time-unit inference ----------------------------------------------


class UnitMixRule(Rule):
    """SL007: unit-suffixed time values must not mix across units or APIs.

    The lattice lives in :mod:`repro.lint.units`: names type from their
    ``_ns``/``_us``/``_ms``/``_s`` suffixes, ``repro.sim.units`` constants
    and converters move between points, and the rule fires only when *both*
    sides of an arithmetic, assignment, return, or call-argument binding
    are known and disagree.  ``150 * USEC`` (conversion) and ``t_ns / SEC``
    (ratio) are typed correctly, not flagged.
    """

    code = "SL007"
    alias = "unit-mix"
    summary = "no cross-unit time arithmetic or suffix-violating bindings"
    allowed_modules = frozenset({"repro.sim.units"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        from repro.lint.units import infer_module_units

        for mix, fn_name in infer_module_units(ctx.tree, ctx.module, ctx.project):
            where = f" [in {fn_name}()]" if fn_name else ""
            yield self.finding_at(ctx, mix.line, mix.col, mix.message + where)


# -- SL008: instrumentation guards -------------------------------------------


class InstrumentationGuardRule(Rule):
    """SL008: hot-path hub calls must sit behind their ``.enabled`` check.

    The disabled-overhead budget (<2%, enforced dynamically by
    ``--ab-check``) only holds if every ``METRICS``/``TRACE``/``SPANS``
    touch on the kernel/BLE/L2CAP/IP dispatch path is skipped by a branch
    when the subsystem is off.  :mod:`repro.lint.purity` proves this
    statically, accepting direct guards, hoisted ``x = HUB.enabled``
    locals, compound tests, and caller-side guards (a greatest fixpoint
    over the call graph handles helpers documented as "caller checks").
    """

    code = "SL008"
    alias = "instr-guard"
    summary = "hot-path METRICS/TRACE/SPANS calls must be behind .enabled"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.project is None:
            return
        from repro.lint.purity import compute_guards

        analysis = compute_guards(ctx.project)
        for fn, touch, detail in analysis.unguarded_touches(ctx.module):
            what = "store to" if touch.kind == "store" else "call on"
            yield self.finding_at(
                ctx,
                touch.line,
                touch.col,
                f"hot-path {what} {touch.hub} in {fn.name}() is not dominated"
                f" by '{touch.hub}.enabled' {detail} -- guard it (or hoist"
                f" 'if {touch.hub}.enabled:' around the block)",
            )


# -- SL009: shared mutable state ---------------------------------------------


class SharedStateRule(Rule):
    """SL009: dispatch-reachable mutable globals must be sanctioned.

    A lookahead-parallel kernel dispatches independent connection clusters
    concurrently; any module-level mutable object referenced from the
    dispatch closure is a data race in waiting.  Every such global must
    carry ``# simlint: allow-shared-state -- <reason>``: the suppression
    inventory *is* the work list for the parallel-kernel PR, and the full
    machine-readable report comes from ``--shared-state-report``.
    """

    code = "SL009"
    alias = "shared-state"
    summary = "dispatch-reachable mutable globals need allow-shared-state"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.project is None:
            return
        from repro.lint.purity import compute_shared_state

        analysis = compute_shared_state(ctx.project)
        for entry in analysis.violations(ctx.module):
            name = entry.qualname.rsplit(".", 1)[-1]
            yield self.finding_at(
                ctx,
                entry.line,
                0,
                f"module-level mutable '{name}' ({entry.value_type}) is"
                " reachable from Simulator dispatch and would be shared"
                " across parallel connection clusters -- make it immutable,"
                " move it into per-run state, or sanction it with"
                " '# simlint: allow-shared-state -- <reason>'",
            )


# -- registry ----------------------------------------------------------------


def default_rules() -> List[Rule]:
    """Fresh instances of every shipped rule, in code order."""
    return [
        WallclockRule(),
        RngRule(),
        SetIterRule(),
        FloatTimeRule(),
        EnvRule(),
        MagicTimingRule(),
        UnitMixRule(),
        InstrumentationGuardRule(),
        SharedStateRule(),
    ]


#: Singleton registry for documentation and ``--list-rules``.
RULES: Dict[str, Rule] = {rule.code: rule for rule in default_rules()}
