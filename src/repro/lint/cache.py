"""Whole-project analysis cache: warm re-lints in well under a second.

The interprocedural engine parses every file and runs three fixpoints;
on a cold tree that is a few seconds.  The cache keys a full lint run on
a single sha256 over (a) every target file's path and content hash and
(b) every file of :mod:`repro.lint` itself, so *any* source edit or rule
change invalidates it -- there is no partial invalidation to get wrong.
A hit replays the stored findings verbatim; a miss lints and stores.

The cache file is versioned JSON, safe to commit to a CI cache keyed on
the same hash, and safe to delete at any time.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.core import Finding

CACHE_SCHEMA = "repro.lint.cache/1"


def _lint_package_files() -> List[Path]:
    return sorted(Path(__file__).resolve().parent.glob("*.py"))


def source_hash(targets: Sequence[Path]) -> str:
    """One sha256 over the target set *and* the linter's own sources."""
    digest = hashlib.sha256()
    for path in list(targets) + _lint_package_files():
        digest.update(str(path).encode("utf-8"))
        digest.update(b"\0")
        try:
            digest.update(hashlib.sha256(path.read_bytes()).digest())
        except OSError:
            digest.update(b"<unreadable>")
        digest.update(b"\n")
    return digest.hexdigest()


def load_cached(cache_file: Path, key: str) -> Optional[List[Finding]]:
    """Stored findings for ``key``, or None on any mismatch/corruption."""
    try:
        doc = json.loads(Path(cache_file).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if (
        not isinstance(doc, dict)
        or doc.get("schema") != CACHE_SCHEMA
        or doc.get("key") != key
        or not isinstance(doc.get("findings"), list)
    ):
        return None
    out: List[Finding] = []
    try:
        for item in doc["findings"]:
            out.append(
                Finding(
                    code=item["code"],
                    alias=item["alias"],
                    severity=item["severity"],
                    path=item["path"],
                    module=item["module"],
                    line=item["line"],
                    col=item["col"],
                    message=item["message"],
                    text=item.get("text", ""),
                )
            )
    except (KeyError, TypeError):
        return None
    return out


def store(cache_file: Path, key: str, findings: Sequence[Finding]) -> None:
    """Write the cache atomically (best effort; failures are non-fatal)."""
    doc = {
        "schema": CACHE_SCHEMA,
        "key": key,
        "findings": [f.to_dict() for f in findings],
    }
    cache_file = Path(cache_file)
    try:
        cache_file.parent.mkdir(parents=True, exist_ok=True)
        tmp = cache_file.with_suffix(cache_file.suffix + ".tmp")
        tmp.write_text(json.dumps(doc, indent=0) + "\n", encoding="utf-8")
        tmp.replace(cache_file)
    except OSError:
        pass
