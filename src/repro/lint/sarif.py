"""SARIF 2.1.0 output for simlint findings.

SARIF (Static Analysis Results Interchange Format) is the interchange
format code hosts ingest natively; emitting it makes simlint findings
uploadable as CI artifacts and viewable inline on pull requests.  The
document is deliberately minimal but valid: one run, one driver, the
full rule table (so every ``ruleId`` resolves), and one result per
finding with a physical location and the same stable fingerprint the
baseline machinery uses (``partialFingerprints`` lets ingesters track a
finding across line-number churn exactly like ``--baseline`` does).

Everything is emitted in deterministic order: rules sorted by code,
results in the engine's (path, line, col, code) order.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.lint.core import SEVERITY_ERROR, Finding
from repro.lint.rules import default_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: simlint severity -> SARIF result level.
_LEVELS: Dict[str, str] = {SEVERITY_ERROR: "error", "warning": "warning"}


def _rules_metadata() -> List[dict]:
    out = []
    for rule in sorted(default_rules(), key=lambda r: r.code):
        out.append(
            {
                "id": rule.code,
                "name": rule.alias,
                "shortDescription": {"text": rule.summary},
                "defaultConfiguration": {
                    "level": _LEVELS.get(rule.severity, "warning")
                },
            }
        )
    return out


def sarif_document(findings: Sequence[Finding]) -> dict:
    """Build the SARIF 2.1.0 document for ``findings``."""
    results = []
    for f in findings:
        results.append(
            {
                "ruleId": f.code,
                "level": _LEVELS.get(f.severity, "warning"),
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": f.path},
                            "region": {
                                "startLine": f.line,
                                "startColumn": f.col + 1,
                            },
                        }
                    }
                ],
                "partialFingerprints": {"simlint/v1": f.fingerprint()},
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "informationUri": "https://example.invalid/simlint",
                        "rules": _rules_metadata(),
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(findings: Sequence[Finding]) -> str:
    """The SARIF document as pretty-printed JSON text."""
    return json.dumps(sarif_document(findings), indent=2, sort_keys=False) + "\n"
