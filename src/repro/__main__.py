"""``python -m repro`` -- see :mod:`repro.exp.cli`."""

from repro.exp.cli import main

raise SystemExit(main())
