"""``python -m repro`` -- see :mod:`repro.exp.cli`.

The ``__name__`` guard matters: ``multiprocessing`` re-imports ``__main__``
in ``spawn``-mode workers (as ``__mp_main__``), and an unguarded
``SystemExit`` here would re-run the CLI inside every worker.
"""

from repro.exp.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
