"""Charge accounting and battery-life projection (§5.4).

Two modes of use:

* **closed form** -- reproduce the paper's arithmetic directly from the
  calibration (`idle_connection_current_ua`, `battery_life`, ...);
* **from simulation** -- feed a :class:`~repro.ble.controller.BleController`'s
  event counters into :meth:`EnergyModel.controller_current_ua` to get the
  average current its activity would have drawn on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.ble.conn import Role
from repro.energy.calib import EnergyCalibration, PAPER_CALIBRATION
from repro.sim.units import ns_to_s

if TYPE_CHECKING:  # pragma: no cover
    from repro.ble.controller import BleController


@dataclass(frozen=True)
class BatteryLife:
    """A projected battery lifetime."""

    days: float

    @property
    def years(self) -> float:
        """Lifetime in years."""
        return self.days / 365.0


class EnergyModel:
    """Energy arithmetic around one :class:`EnergyCalibration`."""

    def __init__(self, calibration: Optional[EnergyCalibration] = None):
        self.calib = calibration or PAPER_CALIBRATION

    # -- closed-form reproductions of §5.4 ---------------------------------

    def idle_connection_current_ua(self, interval_s: float, role: Role) -> float:
        """Average current one idle connection adds at ``interval_s``.

        Paper: 30.7 uA (coordinator) / 34.7 uA (subordinate) at 75 ms.
        """
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        charge = (
            self.calib.charge_per_event_coord_uc
            if role is Role.COORDINATOR
            else self.calib.charge_per_event_sub_uc
        )
        return charge / interval_s

    def beacon_current_ua(self, adv_interval_s: float) -> float:
        """Average current of a connection-less beacon (paper: 12 uA at 1 s)."""
        if adv_interval_s <= 0:
            raise ValueError("interval must be positive")
        return self.calib.charge_per_adv_event_uc / adv_interval_s

    def event_charge_uc(self, role: Role, duration_ns: int) -> float:
        """Charge of one connection event of ``duration_ns``.

        The idle-event charge plus the fitted radio current over the extra
        active time.
        """
        base = (
            self.calib.charge_per_event_coord_uc
            if role is Role.COORDINATOR
            else self.calib.charge_per_event_sub_uc
        )
        extra_ns = max(0, duration_ns - self.calib.empty_event_duration_ns)
        return base + self.calib.radio_active_current_a * ns_to_s(extra_ns) * 1e6

    def battery_life(
        self, average_current_ua: float, capacity_mah: float
    ) -> BatteryLife:
        """Lifetime of a battery at a constant average current."""
        if average_current_ua <= 0:
            raise ValueError("average current must be positive")
        hours = capacity_mah * 1000.0 / average_current_ua
        return BatteryLife(days=hours / 24.0)

    def forwarder_battery_life_coin_cell(
        self, additional_current_ua: float
    ) -> BatteryLife:
        """Paper's example: idle board + connection load on a 230 mAh cell."""
        total = self.calib.idle_board_current_ua + additional_current_ua
        return self.battery_life(total, self.calib.coin_cell_mah)

    def forwarder_battery_life_li_ion(
        self, additional_current_ua: float
    ) -> BatteryLife:
        """Same on the paper's 2500 mAh 18650 cell."""
        total = self.calib.idle_board_current_ua + additional_current_ua
        return self.battery_life(total, self.calib.li_ion_mah)

    # -- simulation-driven accounting -------------------------------------------

    def controller_charge_uc(self, controller: "BleController") -> float:
        """Total BLE charge a controller's recorded activity implies.

        Uses the per-role event counts plus the radio current over the
        cumulative event time beyond the idle baselines, and the advertising
        event counter scaled by payload-independent charge.
        """
        calib = self.calib
        events = controller.conn_events_coord + controller.conn_events_sub
        base = (
            controller.conn_events_coord * calib.charge_per_event_coord_uc
            + controller.conn_events_sub * calib.charge_per_event_sub_uc
        )
        extra_ns = max(
            0, controller.conn_event_ns - events * calib.empty_event_duration_ns
        )
        adv = controller.adv_events * calib.charge_per_adv_event_uc
        return base + adv + calib.radio_active_current_a * ns_to_s(extra_ns) * 1e6

    def controller_current_ua(
        self,
        controller: "BleController",
        elapsed_s: float,
        include_idle_board: bool = False,
    ) -> float:
        """Average current of a controller's activity over ``elapsed_s``."""
        if elapsed_s <= 0:
            raise ValueError("elapsed time must be positive")
        current = self.controller_charge_uc(controller) / elapsed_s
        if include_idle_board:
            current += self.calib.idle_board_current_ua
        return current
