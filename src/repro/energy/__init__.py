"""Energy model (paper §5.4).

The paper measured per-connection-event charge on nrf52dk boards with the
Nordic Power Profiler Kit; this package keeps those measured constants
(:mod:`repro.energy.calib`) and re-derives every §5.4 number from them --
average currents per role and interval, forwarder consumption under load,
battery lifetimes, and the beacon-versus-IP-over-BLE comparison
(:mod:`repro.energy.model`).  Simulated controllers feed their event
counters straight into the model.
"""

from repro.energy.calib import EnergyCalibration, PAPER_CALIBRATION
from repro.energy.model import EnergyModel, BatteryLife

__all__ = [
    "EnergyCalibration",
    "PAPER_CALIBRATION",
    "EnergyModel",
    "BatteryLife",
]
