"""Measured constants from the paper's power profiling (§5.4).

These are the paper's own numbers, not ours: per-event charges measured with
the Nordic Power Profiler Kit on a nrf52dk, plus the board's idle current
and the two battery capacities used for the lifetime projections.  The one
fitted value is ``radio_active_current_a``: the paper only reports *charges*
for idle events, so the cost of longer, data-bearing events is modelled as
that current over the extra radio-on time, calibrated so the paper's
"IP-over-BLE CoAP sender at 1 s ~ +16 uA" observation holds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.phy.frames import T_IFS_NS, ble_air_time_ns


@dataclass(frozen=True)
class EnergyCalibration:
    """Charge and current constants for the energy model.

    :param charge_per_event_coord_uc: charge of one idle connection event in
        the coordinator role (paper: 2.3 uC).
    :param charge_per_event_sub_uc: same for the subordinate (paper: 2.6 uC,
        the extra being window-widening receive time).
    :param charge_per_adv_event_uc: one connectable advertising event with a
        31-byte payload (back-derived from the paper's "beacon at 1 s adds
        12 uA").
    :param idle_board_current_ua: the board's baseline draw (paper: 15 uA).
    :param radio_active_current_a: radio current applied to event time beyond
        the idle-event baseline (fitted, see module docstring).
    :param coin_cell_mah / li_ion_mah: the paper's battery capacities.
    """

    charge_per_event_coord_uc: float = 2.3
    charge_per_event_sub_uc: float = 2.6
    charge_per_adv_event_uc: float = 12.0
    idle_board_current_ua: float = 15.0
    # Fit: the paper's CoAP sender (one connection, one 31-byte payload per
    # second) draws +16 uA over idle.  At a 1 s connection interval that is
    # 16 uC per event, of which 2.3 uC is the idle-event base; the remaining
    # ~13.7 uC over the ~1.9 ms data exchange imply ~7.2 mA of radio+CPU
    # current -- consistent with an nRF52 radio on DC/DC plus an active CPU.
    radio_active_current_a: float = 0.0072
    coin_cell_mah: float = 230.0
    li_ion_mah: float = 2500.0

    @property
    def empty_event_duration_ns(self) -> int:
        """Duration of one empty packet exchange (the idle-event baseline)."""
        return ble_air_time_ns(0) + T_IFS_NS + ble_air_time_ns(0)


#: The calibration used throughout the reproduction.
PAPER_CALIBRATION = EnergyCalibration()
