"""The CoAP wire format (RFC 7252 §3).

Fixed 4-byte header, 0-8 byte token, delta-encoded options (with the 13/14
extended forms), and the 0xFF payload marker.  The codec is exact so the
packet-size arithmetic of the paper's §4.3 (13 bytes of CoAP framing around
a 39-byte payload) holds on the wire.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Tuple


class CoapType(enum.IntEnum):
    """Message types (RFC 7252 §4.2/§4.3)."""

    CON = 0
    NON = 1
    ACK = 2
    RST = 3


class CoapCode(enum.IntEnum):
    """The subset of codes the experiments use."""

    EMPTY = 0x00
    GET = 0x01
    POST = 0x02
    PUT = 0x03
    DELETE = 0x04
    CREATED = 0x41  # 2.01
    CONTENT = 0x45  # 2.05
    NOT_FOUND = 0x84  # 4.04

    @property
    def dotted(self) -> str:
        """The c.dd display form, e.g. ``2.05``."""
        return f"{self.value >> 5}.{self.value & 0x1F:02d}"


class CoapOption(enum.IntEnum):
    """Option numbers used here."""

    URI_PATH = 11
    CONTENT_FORMAT = 12


#: CoAP protocol version.
COAP_VERSION = 1


class CoapDecodeError(ValueError):
    """Raised on malformed CoAP messages."""


def _encode_extended(value: int) -> Tuple[int, bytes]:
    """Nibble + extension bytes for an option delta or length."""
    if value < 13:
        return value, b""
    if value < 269:
        return 13, bytes([value - 13])
    if value < 65805:
        v = value - 269
        return 14, bytes([v >> 8, v & 0xFF])
    raise ValueError(f"option delta/length too large: {value}")


def _decode_extended(nibble: int, data: bytes, pos: int) -> Tuple[int, int]:
    """Inverse of :func:`_encode_extended`; returns (value, new_pos)."""
    if nibble < 13:
        return nibble, pos
    if nibble == 13:
        if pos >= len(data):
            raise CoapDecodeError("truncated option extension")
        return data[pos] + 13, pos + 1
    if nibble == 14:
        if pos + 2 > len(data):
            raise CoapDecodeError("truncated option extension")
        return (data[pos] << 8 | data[pos + 1]) + 269, pos + 2
    raise CoapDecodeError("reserved option nibble 15")


@dataclass
class CoapMessage:
    """One CoAP message.

    Options are (number, value) pairs kept sorted by number at encode time,
    as the delta encoding requires.
    """

    mtype: CoapType
    code: CoapCode
    mid: int
    token: bytes = b""
    options: List[Tuple[int, bytes]] = field(default_factory=list)
    payload: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.mid <= 0xFFFF:
            raise ValueError(f"message id out of range: {self.mid}")
        if len(self.token) > 8:
            raise ValueError("token longer than 8 bytes")

    # -- convenience ----------------------------------------------------------

    def uri_path(self) -> str:
        """Join the Uri-Path options into a path string."""
        return "/".join(
            value.decode() for num, value in self.options if num == CoapOption.URI_PATH
        )

    @classmethod
    def request(
        cls,
        path: str,
        payload: bytes = b"",
        mid: int = 0,
        token: bytes = b"",
        confirmable: bool = False,
        code: CoapCode = CoapCode.GET,
    ) -> "CoapMessage":
        """Build a GET-style request with Uri-Path options."""
        options = [
            (int(CoapOption.URI_PATH), seg.encode())
            for seg in path.split("/")
            if seg
        ]
        return cls(
            mtype=CoapType.CON if confirmable else CoapType.NON,
            code=code,
            mid=mid,
            token=token,
            options=options,
            payload=payload,
        )

    def make_ack(
        self, code: CoapCode = CoapCode.EMPTY, payload: bytes = b""
    ) -> "CoapMessage":
        """The acknowledgement for this message (same MID; token echoes
        back when the ACK carries a piggybacked response)."""
        return CoapMessage(
            mtype=CoapType.ACK,
            code=code,
            mid=self.mid,
            token=self.token if code is not CoapCode.EMPTY else b"",
            payload=payload,
        )

    # -- codec ------------------------------------------------------------------

    def encode(self) -> bytes:
        """Serialize to RFC 7252 wire bytes."""
        out = bytearray(
            [
                (COAP_VERSION << 6) | (self.mtype << 4) | len(self.token),
                self.code,
                self.mid >> 8,
                self.mid & 0xFF,
            ]
        )
        out += self.token
        last_number = 0
        for number, value in sorted(self.options, key=lambda kv: kv[0]):
            delta_nibble, delta_ext = _encode_extended(number - last_number)
            len_nibble, len_ext = _encode_extended(len(value))
            out.append((delta_nibble << 4) | len_nibble)
            out += delta_ext + len_ext + value
            last_number = number
        if self.payload:
            out.append(0xFF)
            out += self.payload
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "CoapMessage":
        """Parse wire bytes; raises :class:`CoapDecodeError` when malformed."""
        if len(data) < 4:
            raise CoapDecodeError("shorter than the fixed header")
        version = data[0] >> 6
        if version != COAP_VERSION:
            raise CoapDecodeError(f"unsupported CoAP version {version}")
        mtype = CoapType((data[0] >> 4) & 0b11)
        tkl = data[0] & 0x0F
        if tkl > 8:
            raise CoapDecodeError(f"invalid token length {tkl}")
        try:
            code = CoapCode(data[1])
        except ValueError as exc:
            raise CoapDecodeError(f"unknown code {data[1]:#x}") from exc
        mid = (data[2] << 8) | data[3]
        pos = 4
        if pos + tkl > len(data):
            raise CoapDecodeError("truncated token")
        token = data[pos : pos + tkl]
        pos += tkl

        options: List[Tuple[int, bytes]] = []
        number = 0
        while pos < len(data):
            byte = data[pos]
            if byte == 0xFF:
                pos += 1
                if pos >= len(data):
                    raise CoapDecodeError("payload marker with empty payload")
                break
            pos += 1
            delta, pos = _decode_extended(byte >> 4, data, pos)
            length, pos = _decode_extended(byte & 0x0F, data, pos)
            if pos + length > len(data):
                raise CoapDecodeError("truncated option value")
            number += delta
            options.append((number, data[pos : pos + length]))
            pos += length
        payload = data[pos:]
        return cls(
            mtype=mtype,
            code=code,
            mid=mid,
            token=token,
            options=options,
            payload=payload,
        )
