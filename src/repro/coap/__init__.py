"""CoAP (RFC 7252): message codec plus client/server endpoints.

The paper's traffic is CoAP over UDP (§4.3): producers send non-confirmable
GET requests with a 39-byte payload; the consumer answers each request with
a CoAP acknowledgement.  The reliability metric is the ratio of ACKs
received to requests sent, and the latency metric is the request-to-ACK
round trip time -- both are measured against this implementation.

* :mod:`repro.coap.message` -- binary codec (header, token, options,
  payload marker),
* :mod:`repro.coap.endpoint` -- the gcoap-equivalent client/server bound to
  a node's UDP stack, including CON retransmission timers.
"""

from repro.coap.message import CoapMessage, CoapType, CoapCode, CoapOption
from repro.coap.endpoint import CoapEndpoint, COAP_DEFAULT_PORT

__all__ = [
    "CoapMessage",
    "CoapType",
    "CoapCode",
    "CoapOption",
    "CoapEndpoint",
    "COAP_DEFAULT_PORT",
]
