"""gcoap-equivalent CoAP endpoint: server resources + client requests.

Matches the paper's usage (§4.2-§4.3): an endpoint bound to the default
CoAP port serves resources and issues requests; non-confirmable requests are
acknowledged by the peer application with a CoAP ACK, confirmable requests
additionally arm the RFC 7252 retransmission timers (2 s base timeout --
which §8 warns collides with multi-second connection intervals).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, TYPE_CHECKING

from repro.coap.message import (
    CoapCode,
    CoapDecodeError,
    CoapMessage,
    CoapType,
)
from repro.obs.registry import METRICS, RTT_BUCKETS_S
from repro.sim.kernel import Timer
from repro.sim.units import SEC
from repro.sixlowpan.ipv6 import Ipv6Address
from repro.spans.hub import SPANS
from repro.trace.tracer import TRACE

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import Node

#: The default CoAP UDP port.
COAP_DEFAULT_PORT = 5683
#: RFC 7252 §4.8 transmission parameters.
ACK_TIMEOUT_NS = 2 * SEC
ACK_RANDOM_FACTOR = 1.5
MAX_RETRANSMIT = 4

#: ``handler(payload, src_addr) -> response payload or None`` for resources;
#: ``None`` yields an empty ACK (the paper's consumer behaviour).
ResourceHandler = Callable[[bytes, Ipv6Address], Optional[bytes]]
#: ``on_response(message, rtt_ns)`` for request completions.
ResponseHandler = Callable[[CoapMessage, int], None]


@dataclass
class _Pending:
    """A request awaiting its acknowledgement / response."""

    message: CoapMessage
    dst: Ipv6Address
    sent_at: int
    on_response: Optional[ResponseHandler]
    on_timeout: Optional[Callable[[], None]]
    retransmits_left: int
    timer: Optional[Timer] = None
    timeout_ns: int = ACK_TIMEOUT_NS


class CoapEndpoint:
    """One node's CoAP client+server.

    :param node: the owning :class:`repro.core.node.Node`.
    :param port: UDP port to bind (default 5683).
    :param rng: random stream for the ACK_RANDOM_FACTOR jitter.
    """

    def __init__(
        self,
        node: "Node",
        port: int = COAP_DEFAULT_PORT,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.node = node
        self.port = port
        self.rng = rng or random.Random(node.node_id ^ 0xC0A9)
        self._resources: Dict[str, ResourceHandler] = {}
        self._pending: Dict[Tuple[bytes, int], _Pending] = {}
        self._next_mid = self.rng.randrange(0, 0x10000)
        self._next_token = self.rng.randrange(0, 0x10000)
        # Statistics.
        self.requests_sent = 0
        self.responses_received = 0
        self.requests_served = 0
        self.acks_sent = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.decode_errors = 0
        node.udp.bind(port, self._on_datagram)

    @property
    def cluster_addr(self) -> int:
        """Dispatch-cluster owner (retransmission timers run on the node)."""
        return self.node.node_id

    # -- server side ------------------------------------------------------------

    def add_resource(self, path: str, handler: ResourceHandler) -> None:
        """Register a resource at ``path`` (no leading slash)."""
        self._resources[path] = handler

    # -- client side ---------------------------------------------------------------

    def request(
        self,
        dst: Ipv6Address,
        path: str,
        payload: bytes = b"",
        confirmable: bool = False,
        on_response: Optional[ResponseHandler] = None,
        on_timeout: Optional[Callable[[], None]] = None,
    ) -> bool:
        """Issue a GET request; completion arrives via ``on_response``.

        :returns: False when the local stack dropped the request (e.g. the
            packet buffer was full); the request is *not* tracked then.
        """
        mid = self._next_mid
        self._next_mid = (self._next_mid + 1) & 0xFFFF
        token = self._next_token.to_bytes(2, "big")
        self._next_token = (self._next_token + 1) & 0xFFFF
        message = CoapMessage.request(
            path, payload, mid=mid, token=token, confirmable=confirmable
        )
        pending = _Pending(
            message=message,
            dst=dst,
            sent_at=self.node.sim.now,
            on_response=on_response,
            on_timeout=on_timeout,
            retransmits_left=MAX_RETRANSMIT if confirmable else 0,
        )
        if SPANS.enabled:
            # The journey context covers the whole synchronous send chain:
            # every hop span the datagram opens below attaches to it.
            span_prev = SPANS.journey_begin(
                self.node.node_id, str(dst), token, mid, confirmable
            )
            try:
                sent = self._transmit(message, dst)
            finally:
                SPANS.ctx_restore(span_prev)
            if not sent:
                SPANS.journey_complete(self.node.node_id, token, mid, "drop")
        else:
            sent = self._transmit(message, dst)
        if not sent:
            return False
        self.requests_sent += 1
        if METRICS.enabled:
            METRICS.inc(f"node{self.node.node_id}", "coap.requests")
        if TRACE.enabled:
            TRACE.emit(
                self.node.sim.now, "coap", "request",
                node=self.node.node_id, mid=mid, token=token.hex(),
                path=path, confirmable=confirmable,
            )
        self._pending[(token, mid)] = pending
        if confirmable:
            timeout = int(
                ACK_TIMEOUT_NS * (1 + (ACK_RANDOM_FACTOR - 1) * self.rng.random())
            )
            pending.timeout_ns = timeout
            pending.timer = self.node.sim.after(
                timeout, self._retransmit, (token, mid)
            )
        return True

    def _transmit(self, message: CoapMessage, dst: Ipv6Address) -> bool:
        return self.node.udp.sendto(
            message.encode(), dst, self.port, self.port
        )

    def _retransmit(self, key: Tuple[bytes, int]) -> None:
        pending = self._pending.get(key)
        if pending is None:
            return
        if pending.retransmits_left <= 0:
            del self._pending[key]
            self.timeouts += 1
            if METRICS.enabled:
                METRICS.inc(f"node{self.node.node_id}", "coap.timeouts")
            if TRACE.enabled:
                TRACE.emit(
                    self.node.sim.now, "coap", "timeout",
                    node=self.node.node_id, mid=key[1],
                )
            if SPANS.enabled:
                SPANS.journey_complete(
                    self.node.node_id, key[0], key[1], "timeout"
                )
            if pending.on_timeout is not None:
                pending.on_timeout()
            return
        pending.retransmits_left -= 1
        self.retransmissions += 1
        if METRICS.enabled:
            METRICS.inc(f"node{self.node.node_id}", "coap.retransmissions")
        if TRACE.enabled:
            TRACE.emit(
                self.node.sim.now, "coap", "retransmit",
                node=self.node.node_id, mid=key[1],
                retransmits_left=pending.retransmits_left,
            )
        if SPANS.enabled:
            span_prev = SPANS.journey_retransmit(
                self.node.node_id, key[0], key[1]
            )
            try:
                self._transmit(pending.message, pending.dst)
            finally:
                SPANS.ctx_restore(span_prev)
        else:
            self._transmit(pending.message, pending.dst)
        pending.timeout_ns *= 2  # binary exponential backoff
        pending.timer = self.node.sim.after(
            pending.timeout_ns, self._retransmit, key
        )

    # -- datagram demux -----------------------------------------------------------

    def _on_datagram(self, payload: bytes, src: Ipv6Address, src_port: int) -> None:
        try:
            message = CoapMessage.decode(payload)
        except CoapDecodeError:
            self.decode_errors += 1
            return
        is_request = (
            message.code in (CoapCode.GET, CoapCode.POST, CoapCode.PUT, CoapCode.DELETE)
            and message.mtype in (CoapType.CON, CoapType.NON)
        )
        if is_request:
            self._serve(message, src, src_port)
        else:
            self._complete(message)

    def _serve(self, message: CoapMessage, src: Ipv6Address, src_port: int) -> None:
        handler = self._resources.get(message.uri_path())
        if handler is None:
            reply = message.make_ack(CoapCode.NOT_FOUND)
        else:
            self.requests_served += 1
            response_payload = handler(message.payload, src)
            if response_payload is None:
                reply = message.make_ack()  # empty ACK, the paper's consumer
            else:
                reply = message.make_ack(CoapCode.CONTENT, response_payload)
        self.acks_sent += 1
        if SPANS.enabled:
            # The reply rides the same journey context the delivered
            # request installed; hops below here are the response leg.
            SPANS.response_leg()
        self.node.udp.sendto(reply.encode(), src, src_port, self.port)

    def _complete(self, message: CoapMessage) -> None:
        """Match a response/ACK against the pending table."""
        pending = None
        matched_key: Optional[Tuple[bytes, int]] = None
        if message.mtype is CoapType.ACK and message.code is CoapCode.EMPTY:
            # empty ACKs carry no token: match by message id
            for key, cand in self._pending.items():
                if key[1] == message.mid:
                    pending = self._pending.pop(key)
                    matched_key = key
                    break
        else:
            for key in list(self._pending):
                if key[0] == message.token:
                    pending = self._pending.pop(key)
                    matched_key = key
                    break
        if pending is None:
            return  # duplicate or stale response
        if pending.timer is not None:
            pending.timer.cancel()
            pending.timer = None  # cancelled handles must not be retained
        self.responses_received += 1
        rtt_ns = self.node.sim.now - pending.sent_at
        if METRICS.enabled:
            METRICS.observe(
                f"node{self.node.node_id}", "coap.rtt_seconds",
                rtt_ns / SEC, RTT_BUCKETS_S,
            )
        if TRACE.enabled:
            TRACE.emit(
                self.node.sim.now, "coap", "response",
                node=self.node.node_id, mid=message.mid, rtt_ns=rtt_ns,
            )
        if SPANS.enabled and matched_key is not None:
            SPANS.journey_complete(
                self.node.node_id, matched_key[0], matched_key[1], "ok"
            )
        if pending.on_response is not None:
            pending.on_response(message, rtt_ns)
