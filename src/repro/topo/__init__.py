"""Parametric, seeded topology generation for the scale tier.

The paper's testbed stops at 15 hand-placed nodes in one room; the scale
scenarios (100/500/1000 nodes) need layouts with *structure*: corridors,
floors, random deployments.  Every generator here is a pure function of
its parameters (and seed, where stochastic) producing a
:class:`~repro.topo.generators.Topology` -- positions in meters plus the
radio range -- from which the experiment runner derives the spatial
medium's geometry and, for statically-routed runs, a BFS spanning tree of
(parent, child) statconn edges.
"""

from repro.topo.generators import (
    DisconnectedTopologyError,
    TOPOLOGY_GENERATORS,
    Topology,
    building_topology,
    corridor_topology,
    grid_topology,
    line_topology,
    make_topology,
    random_geometric_topology,
)

__all__ = [
    "DisconnectedTopologyError",
    "TOPOLOGY_GENERATORS",
    "Topology",
    "building_topology",
    "corridor_topology",
    "grid_topology",
    "line_topology",
    "make_topology",
    "random_geometric_topology",
]
