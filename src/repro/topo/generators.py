"""The topology generators: line, grid, random-geometric, building, corridor.

Shared contract (pinned by ``tests/topo/test_generators.py``):

* **Seeded determinism** -- the same parameters (and seed, for the
  stochastic generators) produce the same positions and hence the same
  adjacency, byte for byte.  Randomness comes from a private
  ``random.Random(seed)``; nothing global.
* **Connectivity** -- generated graphs are connected, or the generator
  raises :class:`DisconnectedTopologyError` (``require_connected=False``
  returns the layout with ``connected=False`` instead, for experiments
  that *study* partition).  The random-geometric generator retries with
  derived sub-seeds before giving up, deterministically.
* **Canonical addressing** -- nodes are addressed ``0..n-1``; node 0 is
  the consumer/root by convention, placed first by every generator.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.rng import subseed

from repro.phy.spatial import (
    Geometry,
    allpairs_neighbor_sets,
    make_geometry,
)

Position = Tuple[float, float]


class DisconnectedTopologyError(ValueError):
    """The generated layout is not one connected radio graph."""


@dataclass
class Topology:
    """One generated layout: positions (meters) + disc radio range.

    Adjacency is derived once via the brute-force neighbor builder (the
    reference implementation -- generation is not a hot path) and cached.
    """

    kind: str
    positions: Dict[int, Position]
    radio_range_m: float
    #: Whether the radio graph is one connected component (generators
    #: either guarantee this or flag it explicitly).
    connected: bool = field(init=False)
    _adjacency: Dict[int, Tuple[int, ...]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.positions:
            raise ValueError("a topology needs at least one node")
        expected = list(range(len(self.positions)))
        if sorted(self.positions) != expected:
            raise ValueError("node addresses must be exactly 0..n-1")
        self._adjacency = allpairs_neighbor_sets(
            self.positions, self.radio_range_m
        )
        self.connected = self._compute_connected()

    @property
    def n(self) -> int:
        """Fleet size."""
        return len(self.positions)

    def adjacency(self) -> Dict[int, Tuple[int, ...]]:
        """addr -> sorted tuple of in-range peers."""
        return dict(self._adjacency)

    def degrees(self) -> List[int]:
        """Per-node neighbor counts, indexed by address."""
        return [len(self._adjacency[addr]) for addr in range(self.n)]

    def _compute_connected(self) -> bool:
        seen = {0}
        frontier = [0]
        while frontier:
            addr = frontier.pop()
            for peer in self._adjacency[addr]:
                if peer not in seen:
                    seen.add(peer)
                    frontier.append(peer)
        return len(seen) == self.n

    def tree_edges(self, root: int = 0) -> List[Tuple[int, int]]:
        """(parent, child) edges of the BFS spanning tree rooted at ``root``.

        BFS order is deterministic (queue order, sorted neighbor tuples),
        so the same topology always yields the same tree.  These edges feed
        :meth:`repro.testbed.topology.BleNetwork.apply_edges` for the
        statically-routed scale scenarios.
        """
        if not self.connected:
            raise DisconnectedTopologyError(
                f"{self.kind} topology is not connected; no spanning tree"
            )
        edges: List[Tuple[int, int]] = []
        seen = {root}
        queue = [root]
        head = 0
        while head < len(queue):
            parent = queue[head]
            head += 1
            for child in self._adjacency[parent]:
                if child not in seen:
                    seen.add(child)
                    queue.append(child)
                    edges.append((parent, child))
        return edges

    def geometry(self, index: str = "grid") -> Optional[Geometry]:
        """A placed :class:`~repro.phy.spatial.Geometry` over this layout."""
        return make_geometry(self.positions, self.radio_range_m, index=index)


# -- generators --------------------------------------------------------------


def line_topology(
    n: int, spacing_m: float = 25.0, radio_range_m: float = 40.0
) -> Topology:
    """``n`` nodes along a straight corridor-free line.

    Defaults put only direct neighbors in range (spacing 25 m, range
    40 m): the spatial analogue of the paper's 15-node line (Fig. 6)."""
    if n < 1:
        raise ValueError("a line needs at least 1 node")
    positions = {i: (i * spacing_m, 0.0) for i in range(n)}
    return Topology("line", positions, radio_range_m)


def grid_topology(
    n: int, spacing_m: float = 25.0, radio_range_m: float = 40.0
) -> Topology:
    """``n`` nodes on a square-ish lattice, row-major from node 0.

    With the defaults both orthogonal (25 m) and diagonal (~35.4 m)
    lattice neighbors are in range: interior degree 8, the dense-office
    deployment of the Bluetooth-Mesh density studies."""
    if n < 1:
        raise ValueError("a grid needs at least 1 node")
    cols = max(1, math.ceil(math.sqrt(n)))
    positions = {
        i: ((i % cols) * spacing_m, (i // cols) * spacing_m) for i in range(n)
    }
    return Topology("grid", positions, radio_range_m)


def random_geometric_topology(
    n: int,
    seed: int = 1,
    radio_range_m: float = 40.0,
    side_m: Optional[float] = None,
    target_degree: float = 8.0,
    require_connected: bool = True,
    max_attempts: int = 25,
) -> Topology:
    """``n`` nodes uniform in a ``side_m`` x ``side_m`` square.

    ``side_m`` defaults to the side that makes the *expected* degree
    ``target_degree`` (n * pi * r^2 / side^2), the supercritical regime
    where the graph is almost surely connected.  Draws are retried with
    derived sub-seeds until the sample actually connects;
    ``require_connected=False`` returns the first draw, flagged."""
    if n < 1:
        raise ValueError("a random-geometric layout needs at least 1 node")
    if side_m is None:
        area_per_node = math.pi * radio_range_m * radio_range_m / target_degree
        side_m = math.sqrt(n * area_per_node)
    last: Optional[Topology] = None
    for attempt in range(max_attempts):
        # process-stable sub-seed derivation (hash() would depend on
        # PYTHONHASHSEED; subseed is the RngRegistry sha256 idiom)
        rng = random.Random(subseed("rgg", seed, attempt))
        positions = {
            i: (rng.uniform(0.0, side_m), rng.uniform(0.0, side_m))
            for i in range(n)
        }
        topology = Topology("rgg", positions, radio_range_m)
        if topology.connected or not require_connected:
            return topology
        last = topology
    assert last is not None
    raise DisconnectedTopologyError(
        f"random-geometric layout (n={n}, seed={seed}, side={side_m:.1f} m, "
        f"range={radio_range_m} m) stayed disconnected across "
        f"{max_attempts} derived draws; grow the range or shrink the area"
    )


def building_topology(
    n: int,
    rooms_per_floor: int = 10,
    room_spacing_m: float = 20.0,
    floor_height_m: float = 12.0,
    radio_range_m: float = 25.0,
) -> Topology:
    """``n`` nodes filling building floors, one sensor per room.

    Floors are rows of ``rooms_per_floor`` rooms; the section is modelled
    in 2-D (room axis x, floor axis y).  Defaults keep both in-floor
    neighbors (20 m) and the room directly above/below (12 m) in range --
    the stacked-slab deployment of the paper's shading discussion, where
    vertical links mind the gap between floors."""
    if n < 1:
        raise ValueError("a building needs at least 1 node")
    if rooms_per_floor < 1:
        raise ValueError("rooms_per_floor must be at least 1")
    positions = {
        i: (
            (i % rooms_per_floor) * room_spacing_m,
            (i // rooms_per_floor) * floor_height_m,
        )
        for i in range(n)
    }
    return Topology("building", positions, radio_range_m)


def corridor_topology(
    n: int,
    spacing_m: float = 20.0,
    bend_every: int = 12,
    radio_range_m: float = 30.0,
) -> Topology:
    """``n`` nodes along a corridor that bends every ``bend_every`` hops.

    The path alternates +x and +y legs (an S-shaped service corridor);
    only adjacent nodes -- and the odd pair hugging a corner -- are in
    range, giving the long thin multi-hop diameter of the paper's line
    experiments at scale."""
    if n < 1:
        raise ValueError("a corridor needs at least 1 node")
    if bend_every < 1:
        raise ValueError("bend_every must be at least 1")
    positions: Dict[int, Position] = {}
    x, y = 0.0, 0.0
    along_x = True
    for i in range(n):
        positions[i] = (x, y)
        if (i + 1) % bend_every == 0:
            along_x = not along_x
        if along_x:
            x += spacing_m
        else:
            y += spacing_m
    return Topology("corridor", positions, radio_range_m)


#: kind -> generator; the config/runner factory surface.
TOPOLOGY_GENERATORS: Dict[str, Callable[..., Topology]] = {
    "line": line_topology,
    "grid": grid_topology,
    "rgg": random_geometric_topology,
    "building": building_topology,
    "corridor": corridor_topology,
}


def make_topology(
    kind: str,
    n: int,
    seed: int = 1,
    radio_range_m: float = 0.0,
    spacing_m: float = 0.0,
) -> Topology:
    """Uniform factory over :data:`TOPOLOGY_GENERATORS`.

    ``radio_range_m``/``spacing_m`` of ``0.0`` mean "the generator's
    default"; the stochastic generators receive ``seed``, the
    deterministic ones ignore it (same layout for every seed)."""
    try:
        generator = TOPOLOGY_GENERATORS[kind]
    except KeyError:
        raise ValueError(
            f"unknown topology kind {kind!r} "
            f"(choose from {sorted(TOPOLOGY_GENERATORS)})"
        ) from None
    kwargs: Dict[str, object] = {}
    if radio_range_m:
        kwargs["radio_range_m"] = radio_range_m
    if spacing_m:
        if kind == "building":
            kwargs["room_spacing_m"] = spacing_m
        elif kind == "rgg":
            kwargs["side_m"] = spacing_m * math.sqrt(n)
        else:
            kwargs["spacing_m"] = spacing_m
    if kind == "rgg":
        kwargs["seed"] = seed
    return generator(n, **kwargs)
