"""Connection-interval selection policies (§6.3).

The coordinator of a new connection dictates the connection interval without
any knowledge of the intervals its peer already uses -- the Bluetooth
standard offers no way to ask.  The paper's mitigation: draw the interval
randomly from a window around the target value, and keep regenerating until
it is unique among the coordinator's own connections.  Together with the
subordinate-side rejection of colliding intervals (implemented in
:mod:`repro.core.statconn`) this guarantees interval uniqueness per node,
which prevents connection shading.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Protocol

from repro.ble.config import (
    CONN_INTERVAL_UNIT_NS,
    ConnParams,
    quantize_interval_ns,
)


class IntervalPolicy(Protocol):
    """Strategy interface: produce connection parameters for a new link."""

    def make_params(self, in_use_ns: Iterable[int]) -> ConnParams:
        """Connection parameters for a new connection.

        :param in_use_ns: intervals already used by the coordinator's other
            connections (for uniqueness enforcement).
        """
        ...

    def describe(self) -> str:
        """Short label for experiment reports (e.g. ``"75"``, ``"[65:85]"``)."""
        ...


class StaticIntervalPolicy:
    """The standard approach: every connection uses the same interval.

    This is the configuration under which the paper observes connection
    shading (§5, §6.1).

    :param interval_ns: the fixed connection interval.
    :param latency: subordinate latency for new connections.
    :param supervision_timeout_ns: explicit supervision timeout (optional).
    """

    def __init__(
        self,
        interval_ns: int,
        latency: int = 0,
        supervision_timeout_ns: Optional[int] = None,
    ):
        self.interval_ns = quantize_interval_ns(interval_ns)
        self.latency = latency
        self.supervision_timeout_ns = supervision_timeout_ns

    def make_params(self, in_use_ns: Iterable[int]) -> ConnParams:
        """Always the configured interval, collisions and all."""
        return ConnParams(
            interval_ns=self.interval_ns,
            latency=self.latency,
            supervision_timeout_ns=self.supervision_timeout_ns,
        )

    def describe(self) -> str:
        return f"{self.interval_ns // 1_000_000}"


class RandomWindowIntervalPolicy:
    """§6.3's proposal: randomize the interval within a window.

    The draw is quantized to the standard's 1.25 ms grid and regenerated
    until unique among the node's in-use intervals (the paper's first
    enhancement).  The window must be wide enough for a node's maximum
    connection count at the grid spacing; we validate that cheaply.

    :param lo_ns / hi_ns: inclusive window bounds, e.g. 65-85 ms around a
        75 ms target.
    :param rng: random stream (experiment-seeded for reproducibility).
    :param unique: enforce per-node uniqueness by redrawing.
    :param max_redraws: safety bound on the redraw loop.
    """

    def __init__(
        self,
        lo_ns: int,
        hi_ns: int,
        rng: random.Random,
        latency: int = 0,
        supervision_timeout_ns: Optional[int] = None,
        unique: bool = True,
        max_redraws: int = 64,
    ):
        if hi_ns < lo_ns:
            raise ValueError("window upper bound below lower bound")
        self.lo_ns = quantize_interval_ns(lo_ns)
        self.hi_ns = quantize_interval_ns(hi_ns)
        if self.hi_ns == self.lo_ns:
            raise ValueError(
                "window collapses to a single 1.25 ms slot; widen it "
                "(the minimum window size must exceed the node's connection "
                "count times the grid spacing, §6.3)"
            )
        self.rng = rng
        self.latency = latency
        self.supervision_timeout_ns = supervision_timeout_ns
        self.unique = unique
        self.max_redraws = max_redraws

    def _draw(self) -> int:
        slots = (self.hi_ns - self.lo_ns) // CONN_INTERVAL_UNIT_NS
        return self.lo_ns + self.rng.randint(0, slots) * CONN_INTERVAL_UNIT_NS

    def make_params(self, in_use_ns: Iterable[int]) -> ConnParams:
        """Draw an interval; redraw until unique on this node if enabled."""
        used = set(in_use_ns) if self.unique else ()
        interval = self._draw()
        redraws = 0
        while self.unique and interval in used:
            redraws += 1
            if redraws > self.max_redraws:
                raise RuntimeError(
                    "cannot find a unique connection interval: window "
                    f"[{self.lo_ns}, {self.hi_ns}] too narrow for "
                    f"{len(used)} existing connections"
                )
            interval = self._draw()
        return ConnParams(
            interval_ns=interval,
            latency=self.latency,
            supervision_timeout_ns=self.supervision_timeout_ns,
        )

    def describe(self) -> str:
        return f"[{self.lo_ns // 1_000_000}:{self.hi_ns // 1_000_000}]"
