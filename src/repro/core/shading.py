"""Connection-shading likelihood arithmetic (paper §6.2).

Two conditions enable shading on a node: (i) at least two connections with
the *same* connection interval, (ii) the subordinate role on at least one.
Given those, connection events slide against each other at the relative
clock drift rate, so the maximum time until they overlap is::

    T_overlap = ConnItvl / ClkDrift

The paper's worked examples, reproduced by these functions and checked in
``benchmarks/test_sec62_shading_likelihood.py``:

* worst case (7.5 ms interval, 500 us/s drift): overlap every 15 s, i.e.
  240 shading situations per hour;
* typical (75 ms, 5 us/s): every 4.17 h, i.e. 0.24 events per hour;
* the 14-link tree topology then sees ~3.4 events/hour or ~80.6 per 24 h,
  consistent with the 95 losses the 24 h experiment logged.
"""

from __future__ import annotations

from typing import Sequence


def time_to_overlap_s(conn_interval_s: float, rel_drift_us_per_s: float) -> float:
    """Maximum time until two same-interval connections overlap, seconds.

    :param conn_interval_s: the shared connection interval in seconds.
    :param rel_drift_us_per_s: relative clock drift in microseconds per
        second (numerically equal to ppm).
    """
    if conn_interval_s <= 0:
        raise ValueError("connection interval must be positive")
    if rel_drift_us_per_s <= 0:
        raise ValueError("relative drift must be positive for an overlap ETA")
    return conn_interval_s / (rel_drift_us_per_s * 1e-6)


def shading_events_per_hour(
    conn_interval_s: float, rel_drift_us_per_s: float
) -> float:
    """Expected shading situations per hour for one connection pair."""
    return 3600.0 / time_to_overlap_s(conn_interval_s, rel_drift_us_per_s)


def network_shading_events(
    n_links: int,
    conn_interval_s: float,
    rel_drift_us_per_s: float,
    hours: float = 1.0,
) -> float:
    """Expected shading events over a whole network.

    The paper applies the per-pair rate to each of the tree's 14 links
    (§6.2) -- every link's subordinate end shares its node with at least one
    other connection in both experiment topologies.
    """
    if n_links < 0:
        raise ValueError("link count cannot be negative")
    return n_links * shading_events_per_hour(conn_interval_s, rel_drift_us_per_s) * hours


def worst_case_events_per_hour() -> float:
    """The paper's worst case: 7.5 ms interval, 500 us/s drift -> 240/h."""
    return shading_events_per_hour(0.0075, 500.0)


def typical_events_per_hour() -> float:
    """The paper's typical case: 75 ms interval, 5 us/s drift -> 0.24/h."""
    return shading_events_per_hour(0.075, 5.0)


def detect_degradation_spans(
    times_s: Sequence[float],
    pdr_series: Sequence[float],
    threshold: float = 0.9,
) -> list[tuple[float, float]]:
    """Spans where a link-layer PDR time series sits below ``threshold``.

    Used to locate Fig. 12-style shading windows in sampled link statistics.

    :returns: list of (start_s, end_s) spans.
    """
    if len(times_s) != len(pdr_series):
        raise ValueError("time and PDR series must align")
    spans: list[tuple[float, float]] = []
    start = None
    for t, pdr in zip(times_s, pdr_series):
        if pdr < threshold and start is None:
            start = t
        elif pdr >= threshold and start is not None:
            spans.append((start, t))
            start = None
    if start is not None:
        spans.append((start, times_s[-1]))
    return spans
