"""Full-stack node composition (the paper's Figure 5 as one object).

A :class:`Node` is one simulated firmware image: BLE controller (NimBLE
equivalent), the netif bridge, GNRC-style packet buffer + IPv6 + UDP, and
statconn on top.  CoAP endpoints attach via :mod:`repro.coap`.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.ble.config import BleConfig
from repro.ble.controller import BleController
from repro.core.statconn import Statconn, StatconnConfig
from repro.gatt import GattServer, add_ipss
from repro.gatt.att import AttServer
from repro.l2cap import CocConfig
from repro.net.icmpv6 import Icmpv6Stack
from repro.net.ip import Ipv6Stack
from repro.net.netif import BleNetif, coc_of
from repro.net.pktbuf import PacketBuffer
from repro.net.udp import UdpStack
from repro.phy.medium import BleMedium
from repro.sim.clock import DriftingClock
from repro.sim.kernel import Simulator
from repro.sixlowpan.ipv6 import Ipv6Address


class Node:
    """One IPv6-over-BLE node.

    :param sim: simulation kernel.
    :param medium: shared radio plane.
    :param node_id: identity; doubles as the BLE device address and derives
        both IPv6 addresses.
    :param ppm: sleep-clock frequency error (drives connection shading).
    :param ble_config: controller configuration (paper defaults if omitted).
    :param statconn_config: connection manager configuration.
    :param pktbuf_capacity: GNRC packet buffer bytes (paper: 6144).
    :param coc_config: L2CAP channel parameters.
    :param rng: node-local random stream (advertising jitter etc.).
    :param nib_entries: neighbour cache size (paper: 32).
    """

    def __init__(
        self,
        sim: Simulator,
        medium: BleMedium,
        node_id: int,
        ppm: float = 0.0,
        ble_config: Optional[BleConfig] = None,
        statconn_config: Optional[StatconnConfig] = None,
        pktbuf_capacity: int = 6144,
        coc_config: Optional[CocConfig] = None,
        rng: Optional[random.Random] = None,
        nib_entries: int = 32,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.clock = DriftingClock(sim, ppm=ppm)
        self.controller = BleController(
            sim,
            medium,
            addr=node_id,
            clock=self.clock,
            config=ble_config,
            rng=rng,
            name=f"node{node_id}",
        )
        self.pktbuf = PacketBuffer(pktbuf_capacity, name=f"node{node_id}.pktbuf")
        self.netif = BleNetif(self.controller, self.pktbuf, coc_config)
        self.ip = Ipv6Stack(node_id, nib_entries)
        self.ip.add_netif(self.netif)
        self.udp = UdpStack(self.ip)
        self.icmp = Icmpv6Stack(self.ip, sim)
        # GATT database with the Internet Protocol Support Service (Fig. 2);
        # every connection gets an ATT server so peers can verify IP support
        self.gatt = GattServer()
        add_ipss(self.gatt)

        def _attach_att(conn, node=self):
            AttServer(coc_of(conn), node.controller, node.gatt)

        self.controller.conn_open_listeners.append(_attach_att)
        self.statconn = Statconn(self, statconn_config)

    @property
    def cluster_addr(self) -> int:
        """Dispatch-cluster owner of this node's timers (the identity
        address; see :mod:`repro.sim.cluster`)."""
        return self.node_id

    @property
    def link_local(self) -> Ipv6Address:
        """This node's link-local address."""
        return self.ip.link_local

    @property
    def mesh_local(self) -> Ipv6Address:
        """This node's routable mesh address."""
        return self.ip.mesh_local

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.node_id}>"
