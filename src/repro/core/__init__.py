"""The paper's contribution: statconn + randomized connection intervals.

* :mod:`repro.core.intervals` -- connection-interval selection policies:
  the standard fixed interval, and §6.3's randomized window with per-node
  uniqueness enforcement;
* :mod:`repro.core.statconn` -- the static connection manager of §3:
  role-configured advertising/scanning, health monitoring, automatic
  reconnect, and the subordinate-side collision rejection of §6.3;
* :mod:`repro.core.shading` -- the connection-shading likelihood model of
  §6.2 (closed form) plus trace-based detection helpers;
* :mod:`repro.core.node` -- the full firmware image: BLE controller +
  L2CAP + 6LoWPAN + IPv6 + UDP + statconn wired together like Figure 5.
"""

from repro.core.intervals import (
    IntervalPolicy,
    StaticIntervalPolicy,
    RandomWindowIntervalPolicy,
)
from repro.core.statconn import Statconn, StatconnConfig, LinkSpec
from repro.core.node import Node
from repro.core.shading import (
    time_to_overlap_s,
    shading_events_per_hour,
    network_shading_events,
)

__all__ = [
    "IntervalPolicy",
    "StaticIntervalPolicy",
    "RandomWindowIntervalPolicy",
    "Statconn",
    "StatconnConfig",
    "LinkSpec",
    "Node",
    "time_to_overlap_s",
    "shading_events_per_hour",
    "network_shading_events",
]
