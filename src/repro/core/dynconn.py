"""dynconn: dynamic BLE topology formation (the paper's future work, §9).

statconn (§3) needs a pre-configured link list; the paper names "the
management of BLE topologies, the coupling of BLE topologies with IP
routing, and the adaptability ... to dynamic environments" as open
questions.  dynconn is that coupling, in the spirit of the RPL-over-BLE
architecture of Lee et al. [29] which the paper cites:

* **orphans advertise** (they have no uplink),
* **joined routers scan** and adopt orphan advertisers as children (up to
  ``max_children``, respecting the constrained-node limits of §4.3),
* the fresh BLE link carries RPL DIOs at once, the child joins the DODAG
  and starts adopting its own children -- the mesh grows from the root out,
* on uplink loss the RPL layer detaches (poisoning its sub-DODAG) and
  dynconn falls back to advertising; surviving BLE links let descendants
  re-join without re-forming connections,
* a detached node that keeps an uplink but fails to rejoin within
  ``orphan_timeout_ns`` closes that uplink and re-advertises.  Without
  this, churn can strand a *connection cycle*: every node in the ring
  holds a subordinate-role link to another detached ring member, so none
  advertises (it "has an uplink") and none scans (it is not joined) --
  a deadlock no DIO can ever break, since the ring carries no root.

Role note: under dynconn the *adopting* (upstream) node is the connection
coordinator -- inverted with respect to statconn's convention -- because
discovery must radiate outward from the joined part of the network.  Interior
nodes still hold one subordinate-role uplink plus coordinator-role child
links, so connection shading applies unchanged, and the randomized-interval
policy (§6.3) is dynconn's default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.ble.conn import Connection, DisconnectReason, Role
from repro.core.intervals import IntervalPolicy, RandomWindowIntervalPolicy
from repro.gatt.ipss import check_ip_support
from repro.net.netif import coc_of
from repro.sim.units import MSEC, SEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import Node
    from repro.rpl.rpl import RplInstance


def _default_policy() -> IntervalPolicy:
    import random

    return RandomWindowIntervalPolicy(65 * MSEC, 85 * MSEC, random.Random(0))


@dataclass
class DynconnConfig:
    """dynconn behaviour knobs.

    :param interval_policy: connection-interval policy for adopted links
        (defaults to the paper's §6.3 randomized window).
    :param max_children: adoption capacity per router (the paper limits
        simultaneous connections for radio/memory reasons, §4.3).
    :param reject_interval_collisions: §6.3 subordinate-side enforcement.
    :param verify_ipss: after adopting a node, check via GATT that it
        exposes the Internet Protocol Support Service; peers without it are
        disconnected and never re-adopted (the §3 capability check).
    :param adv_payload_len: AdvData bytes carried while advertising.
    :param orphan_timeout_ns: how long a detached node keeps waiting for a
        DIO over a surviving uplink before giving that uplink up (closing
        it and re-advertising).  Healthy rejoins finish within seconds (a
        detached node's DIS solicits reset the parent's Trickle timer), so
        the timeout only fires for uplinks that can never deliver a route
        to the root -- most notably connection cycles among detached
        nodes, which are otherwise a permanent formation deadlock.
    """

    interval_policy: IntervalPolicy = field(default_factory=_default_policy)
    max_children: int = 3
    reject_interval_collisions: bool = True
    verify_ipss: bool = False
    adv_payload_len: int = 20
    orphan_timeout_ns: int = 20 * SEC


class Dynconn:
    """The dynamic connection manager instance of one node."""

    def __init__(
        self,
        node: "Node",
        rpl: "RplInstance",
        config: Optional[DynconnConfig] = None,
    ) -> None:
        self.node = node
        self.rpl = rpl
        self.config = config or DynconnConfig()
        self._advertiser = None
        self._scanner = None
        self._running = False
        self._orphan_timer = None
        #: Peers that failed the IPSS capability check (never re-adopted).
        self.non_ip_peers: set = set()
        #: Adoption events (diagnostics).
        self.adoptions = 0
        self.orphanings = 0
        self.ipss_rejections = 0
        #: Uplinks abandoned because rejoining timed out (cycle breaks).
        self.orphan_timeouts = 0
        node.controller.conn_open_listeners.append(self._on_conn_open)
        node.controller.conn_close_listeners.append(self._on_conn_close)
        rpl.on_parent_change = self._on_parent_change

    @property
    def cluster_addr(self) -> int:
        """Dispatch-cluster owner (orphan timers run on the node)."""
        return self.node.node_id

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        """Begin topology formation (roots scan, everyone else advertises)."""
        self._running = True
        self.rpl.start()
        self._update_state()

    def stop(self) -> None:
        """Halt formation (existing links stay up)."""
        self._running = False
        self._stop_advertising()
        self._stop_scanning()
        self._cancel_orphan_timer()

    # -- state machine -----------------------------------------------------------

    def child_count(self) -> int:
        """Live connections in which this node is the coordinator."""
        controller = self.node.controller
        return sum(
            1
            for conn in controller.connections
            if controller.role_of(conn) is Role.COORDINATOR
        )

    def has_uplink(self) -> bool:
        """Whether a subordinate-role (uplink) connection is live."""
        controller = self.node.controller
        return any(
            controller.role_of(conn) is Role.SUBORDINATE
            for conn in controller.connections
        ) or self.rpl.is_root

    def _update_state(self) -> None:
        if not self._running:
            return
        if self.rpl.joined:
            self._cancel_orphan_timer()
            self._stop_advertising()
            if self.child_count() < self.config.max_children:
                self._ensure_scanning()
            else:
                self._stop_scanning()
        else:
            self._stop_scanning()
            if self.has_uplink():
                # wait for a DIO over the surviving uplink -- but not
                # forever: see the orphan_timeout_ns rationale
                self._ensure_orphan_timer()
            else:
                self._cancel_orphan_timer()
                self._ensure_advertising()

    def _ensure_orphan_timer(self) -> None:
        if self._orphan_timer is not None:
            return
        self._orphan_timer = self.node.sim.after(
            self.config.orphan_timeout_ns, self._on_orphan_timeout
        )

    def _cancel_orphan_timer(self) -> None:
        if self._orphan_timer is not None:
            self._orphan_timer.cancel()
            self._orphan_timer = None

    def _on_orphan_timeout(self) -> None:
        self._orphan_timer = None
        if not self._running or self.rpl.joined:
            return
        controller = self.node.controller
        uplinks = [
            conn
            for conn in list(controller.connections)
            if controller.role_of(conn) is Role.SUBORDINATE
        ]
        if not uplinks:
            self._update_state()
            return
        self.orphan_timeouts += 1
        for conn in uplinks:
            conn.close(DisconnectReason.LOCAL_CLOSE)
        # _on_conn_close already re-evaluated; advertising resumes there

    def _ensure_advertising(self) -> None:
        if self._advertiser is not None and self._advertiser.active:
            return
        self._advertiser = self.node.controller.advertise(
            payload_len=self.config.adv_payload_len
        )

    def _stop_advertising(self) -> None:
        if self._advertiser is not None and self._advertiser.active:
            self._advertiser.stop()

    def _ensure_scanning(self) -> None:
        if self._scanner is not None and self._scanner.active:
            return
        self._scanner = self.node.controller.initiate(
            target_addr=None,  # adopt any orphan in range
            params_factory=self._make_params,
            accept=lambda addr: addr not in self.non_ip_peers,
        )

    def _stop_scanning(self) -> None:
        if self._scanner is not None and self._scanner.active:
            self._scanner.stop()

    def _make_params(self):
        return self.config.interval_policy.make_params(
            self.node.controller.used_intervals_ns()
        )

    # -- events ---------------------------------------------------------------------

    def _on_conn_open(self, conn: Connection) -> None:
        if not self._running:
            return
        my_role = self.node.controller.role_of(conn)
        if my_role is Role.SUBORDINATE:
            # §6.3 enforcement on the adopted side
            if self.config.reject_interval_collisions and self._collides(conn):
                conn.close(DisconnectReason.INTERVAL_COLLISION)
                return
        else:
            self.adoptions += 1
            if self.config.verify_ipss:
                self._verify_ip_support(conn)
        self._update_state()

    def _verify_ip_support(self, conn: Connection) -> None:
        """§3's capability check: GATT-discover the adopted peer's IPSS."""
        peer = conn.peer_of(self.node.controller).identity

        def verdict(supported: bool) -> None:
            if supported or not conn.open:
                return
            self.ipss_rejections += 1
            self.non_ip_peers.add(peer)
            conn.close(DisconnectReason.LOCAL_CLOSE)

        check_ip_support(coc_of(conn), self.node.controller, verdict)

    def _collides(self, conn: Connection) -> bool:
        interval = conn.params.interval_ns
        return any(
            other is not conn and other.params.interval_ns == interval
            for other in self.node.controller.connections
        )

    def _on_conn_close(self, conn: Connection, reason: DisconnectReason) -> None:
        if not self._running:
            return
        if (
            self.node.controller.role_of(conn) is Role.SUBORDINATE
            and reason is not DisconnectReason.INTERVAL_COLLISION
        ):
            self.orphanings += 1
        self._update_state()

    def _on_parent_change(self, parent) -> None:
        self._update_state()
