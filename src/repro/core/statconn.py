"""statconn: static BLE connection management (paper §3, extended per §6.3).

Each node receives a static link configuration: for every configured link it
is either the **subordinate** (it advertises and waits) or the
**coordinator** (it scans for the peer's advertisements and initiates).
statconn monitors link health; whenever a configured connection drops, the
node falls back into advertising/scanning mode until the link is
re-established -- the quick-reconnect behaviour behind the paper's small
loss numbers in §5.1.

The §6.3 extensions are both here:

* the coordinator draws the connection interval from its
  :class:`~repro.core.intervals.IntervalPolicy`, regenerating until unique
  among its own connections (policy-side), and
* the subordinate *closes* any fresh connection whose interval collides
  with one of its existing connections, forcing the coordinator to retry
  with a new draw (``reject_interval_collisions``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.ble.adv import Advertiser, Scanner
from repro.ble.conn import Connection, DisconnectReason, Role
from repro.core.intervals import IntervalPolicy, StaticIntervalPolicy
from repro.sim.units import MSEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import Node


@dataclass
class LinkSpec:
    """One configured link from this node's point of view.

    ``peer_addr`` is the peer's *identity* address (stable across RPA
    rotation, see :mod:`repro.ble.rpa`).
    """

    peer_addr: int
    role: Role

    def __post_init__(self) -> None:
        if not isinstance(self.role, Role):
            raise TypeError("role must be a repro.ble.conn.Role")


@dataclass
class StatconnConfig:
    """statconn behaviour knobs.

    :param interval_policy: how coordinators choose connection intervals.
    :param reject_interval_collisions: §6.3 subordinate-side enforcement.
    :param collision_action: what the subordinate does about a collision
        (only with ``reject_interval_collisions``):

        * ``"reject"`` -- the paper's choice: close the fresh connection and
          let the coordinator redraw (works on any Bluetooth 4.2 stack);
        * ``"update"`` -- the §6.3 *design space* alternative: keep the
          connection and negotiate a new interval via the connection
          parameter update procedure (requires the Bluetooth 5.0
          negotiation, which the paper notes black-box controllers do not
          expose -- the simulation can run the counterfactual).
    :param adv_payload_len: AdvData bytes carried while advertising.
    """

    interval_policy: IntervalPolicy = field(
        default_factory=lambda: StaticIntervalPolicy(75 * MSEC)
    )
    reject_interval_collisions: bool = False
    collision_action: str = "reject"
    adv_payload_len: int = 20

    def __post_init__(self) -> None:
        if self.collision_action not in ("reject", "update"):
            raise ValueError(f"unknown collision action {self.collision_action!r}")


@dataclass
class LossRecord:
    """One observed connection loss (for the Fig. 13/14 census)."""

    time_ns: int
    peer_addr: int
    role: Role
    reason: DisconnectReason


class Statconn:
    """The connection manager instance of one node."""

    def __init__(self, node: "Node", config: Optional[StatconnConfig] = None):
        self.node = node
        self.config = config or StatconnConfig()
        self._links: Dict[int, LinkSpec] = {}
        self._scanners: Dict[int, Scanner] = {}
        self._advertiser: Optional[Advertiser] = None
        #: Losses observed on configured links (supervision timeouts etc.).
        self.losses: List[LossRecord] = []
        #: Collisions rejected by this node as subordinate (§6.3 retries).
        self.collision_rejects = 0
        #: Reconnect delays (ns) measured from loss to re-establishment.
        self.reconnect_delays_ns: List[int] = []
        self._loss_time: Dict[int, int] = {}
        controller = node.controller
        controller.conn_open_listeners.append(self._on_conn_open)
        controller.conn_close_listeners.append(self._on_conn_close)

    @property
    def cluster_addr(self) -> int:
        """Dispatch-cluster owner (establishment timers run on the node)."""
        return self.node.node_id

    # -- configuration -------------------------------------------------------

    def add_link(self, peer_addr: int, role: Role) -> None:
        """Configure a link and start establishing it."""
        if peer_addr in self._links:
            raise ValueError(f"link to {peer_addr} already configured")
        self._links[peer_addr] = LinkSpec(peer_addr, role)
        self._kick(peer_addr)

    def links(self) -> List[LinkSpec]:
        """The configured links."""
        return list(self._links.values())

    def link_up(self, peer_addr: int) -> bool:
        """Whether the configured link to ``peer_addr`` is established."""
        conn = self.node.controller.connection_to(peer_addr)
        return conn is not None and conn.open

    def all_links_up(self) -> bool:
        """Whether every configured link is established."""
        return all(self.link_up(peer) for peer in self._links)

    # -- establishment machinery ----------------------------------------------

    def _kick(self, peer_addr: int) -> None:
        """(Re)start advertising / scanning for one down link."""
        spec = self._links[peer_addr]
        if spec.role is Role.SUBORDINATE:
            self._ensure_advertising()
        else:
            self._ensure_scanning(peer_addr)

    def _ensure_advertising(self) -> None:
        if self._advertiser is not None and self._advertiser.active:
            return
        self._advertiser = self.node.controller.advertise(
            payload_len=self.config.adv_payload_len
        )

    def _reevaluate_advertising(self) -> None:
        """Advertise exactly while at least one subordinate link is down.

        The controller stops advertising on CONNECT_IND, so after every
        establishment we must restart it if more subordinate links wait.
        """
        any_down = any(
            spec.role is Role.SUBORDINATE and not self.link_up(p)
            for p, spec in self._links.items()
        )
        if any_down:
            self._ensure_advertising()
        elif self._advertiser is not None and self._advertiser.active:
            self._advertiser.stop()

    def _ensure_scanning(self, peer_addr: int) -> None:
        scanner = self._scanners.get(peer_addr)
        if scanner is not None and scanner.active:
            return
        self._scanners[peer_addr] = self.node.controller.initiate(
            target_addr=peer_addr,
            params_factory=self._make_params,
        )

    def _make_params(self):
        """Interval policy hook: draw params unique among our connections."""
        return self.config.interval_policy.make_params(
            self.node.controller.used_intervals_ns()
        )

    # -- health monitoring -----------------------------------------------------

    def _on_conn_open(self, conn: Connection) -> None:
        peer = conn.peer_of(self.node.controller).identity
        spec = self._links.get(peer)
        if spec is None:
            return  # not one of ours
        my_end = conn.endpoint_of(self.node.controller)
        # §6.3 subordinate-side enforcement: reject colliding intervals
        if (
            self.config.reject_interval_collisions
            and my_end.role is Role.SUBORDINATE
            and self._interval_collides(conn)
        ):
            self.collision_rejects += 1
            if self.config.collision_action == "update":
                self._negotiate_interval(conn)
            else:
                conn.close(DisconnectReason.INTERVAL_COLLISION)
                return
        loss_t = self._loss_time.pop(peer, None)
        if loss_t is not None:
            self.reconnect_delays_ns.append(self.node.sim.now - loss_t)
        if my_end.role is Role.SUBORDINATE:
            self._reevaluate_advertising()
        else:
            scanner = self._scanners.pop(peer, None)
            if scanner is not None and scanner.active:
                scanner.stop()

    def _interval_collides(self, conn: Connection) -> bool:
        interval = conn.params.interval_ns
        return any(
            other is not conn and other.params.interval_ns == interval
            for other in self.node.controller.connections
        )

    def _negotiate_interval(self, conn: Connection) -> None:
        """BT 5.0 path: move the interval via a parameter update, then
        verify after it applied (a concurrent setup may collide again)."""
        conn.request_param_update(self._make_params())
        # the update applies at an event boundary after the control PDU is
        # acknowledged; re-check two (old) intervals later
        self.node.sim.after(2 * conn.params.interval_ns, self._verify_update, conn)

    def _verify_update(self, conn: Connection) -> None:
        if not conn.open:
            return
        if self._interval_collides(conn):
            self.collision_rejects += 1
            self._negotiate_interval(conn)

    def _on_conn_close(self, conn: Connection, reason: DisconnectReason) -> None:
        peer = conn.peer_of(self.node.controller).identity
        spec = self._links.get(peer)
        if spec is None:
            return
        if reason is not DisconnectReason.LOCAL_CLOSE:
            # collision rejects are bookkept separately; only record true
            # losses (supervision timeouts) in the census
            if reason is DisconnectReason.SUPERVISION_TIMEOUT:
                self.losses.append(
                    LossRecord(self.node.sim.now, peer, spec.role, reason)
                )
            if peer not in self._loss_time:
                self._loss_time[peer] = self.node.sim.now
        self._kick(peer)
