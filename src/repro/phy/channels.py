"""Channel plans for BLE and IEEE 802.15.4.

BLE divides the 2.4 GHz ISM band into 40 RF channels of 2 MHz.  Channel
*indices* 0..36 are data channels used by connections (via a channel
selection algorithm, :mod:`repro.ble.csa`); indices 37, 38, 39 are the three
advertising channels.  The RF-channel <-> channel-index mapping interleaves
the advertising channels at the band edges and centre so they dodge Wi-Fi.

IEEE 802.15.4 (2.4 GHz O-QPSK PHY) uses 16 channels numbered 11..26.
"""

from __future__ import annotations

#: Number of BLE data channels selectable by a connection.
BLE_NUM_DATA_CHANNELS: int = 37

#: BLE data channel indices (0..36).
BLE_DATA_CHANNELS: tuple[int, ...] = tuple(range(37))

#: BLE advertising channel indices.
BLE_ADV_CHANNELS: tuple[int, ...] = (37, 38, 39)

#: IEEE 802.15.4 2.4 GHz channel page 0 channels.
IEEE802154_CHANNELS: tuple[int, ...] = tuple(range(11, 27))

# RF channel (physical frequency slot, 0..39 == 2402..2480 MHz) for each BLE
# channel *index*.  Adv channels 37/38/39 sit at RF 0, 12, 39.
_INDEX_TO_RF: tuple[int, ...] = tuple(
    list(range(1, 12)) + list(range(13, 39)) + [0, 12, 39]
)


def ble_index_to_rf(index: int) -> int:
    """Map a BLE channel index (0..39) to its RF channel number (0..39)."""
    if not 0 <= index <= 39:
        raise ValueError(f"BLE channel index out of range: {index}")
    return _INDEX_TO_RF[index]


def ble_rf_to_frequency_mhz(rf: int) -> int:
    """Centre frequency of an RF channel in MHz (2402 + 2 * rf)."""
    if not 0 <= rf <= 39:
        raise ValueError(f"BLE RF channel out of range: {rf}")
    return 2402 + 2 * rf


def ieee802154_frequency_mhz(channel: int) -> int:
    """Centre frequency of an IEEE 802.15.4 2.4 GHz channel in MHz."""
    if channel not in IEEE802154_CHANNELS:
        raise ValueError(f"802.15.4 channel out of range: {channel}")
    return 2405 + 5 * (channel - 11)
