"""Physical-layer substrate: channels, air-time arithmetic, radio medium.

The paper's testbed has all 15 nodes within mutual radio range on a 1 m grid
(§4.1), so no propagation model is needed.  What *does* shape the results is

* per-channel packet loss (the testbed had BLE data channel 22 permanently
  jammed by an external signal, §4.2),
* exact on-air packet durations (they bound how many packet exchanges fit
  into a connection event, §2.2), and
* the half-duplex, single-transceiver nature of each node's radio (the root
  of scheduling conflicts between co-located connections, §2.3).

This package models the first two; per-node transceiver arbitration lives in
:mod:`repro.ble.sched` for BLE and inside :mod:`repro.ieee802154.mac` for the
comparison link layer.
"""

from repro.phy.channels import (
    BLE_NUM_DATA_CHANNELS,
    BLE_DATA_CHANNELS,
    BLE_ADV_CHANNELS,
    IEEE802154_CHANNELS,
)
from repro.phy.frames import (
    BlePhyMode,
    ble_air_time_ns,
    ieee802154_air_time_ns,
)
from repro.phy.medium import InterferenceModel, BleMedium, MediumRegistrationError
from repro.phy.spatial import (
    Geometry,
    GeometryError,
    allpairs_neighbor_sets,
    grid_neighbor_sets,
    make_geometry,
)

__all__ = [
    "BLE_NUM_DATA_CHANNELS",
    "BLE_DATA_CHANNELS",
    "BLE_ADV_CHANNELS",
    "IEEE802154_CHANNELS",
    "BlePhyMode",
    "ble_air_time_ns",
    "ieee802154_air_time_ns",
    "InterferenceModel",
    "BleMedium",
    "MediumRegistrationError",
    "Geometry",
    "GeometryError",
    "allpairs_neighbor_sets",
    "grid_neighbor_sets",
    "make_geometry",
]
