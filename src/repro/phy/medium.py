"""Radio medium with per-channel loss for the BLE plane.

The testbed (§4.1) keeps all nodes in mutual range, so instead of a
propagation model the medium offers a statistical packet-error process:

* a bit-error-rate floor that makes longer packets proportionally more
  likely to be corrupted (this drives the event-abort dynamics of §5.2),
* per-channel additive packet error rates (2.4 GHz is crowded; the paper's
  testbed had BLE channel 22 permanently jammed, §4.2),
* optional timed interference bursts for failure-injection experiments.

BLE connection events are simulated as composite transactions (see
:mod:`repro.ble.conn`), so the medium exposes a *sampling* interface: the
link layer asks "was this packet on this channel at this time lost?" instead
of scheduling per-packet kernel events.  This keeps 1-hour 15-node runs
tractable in pure Python while preserving the loss structure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.obs.registry import METRICS
from repro.phy.frames import ble_air_time_ns
from repro.phy.spatial import Geometry
from repro.sim.cluster import ClusterMap
from repro.sim.kernel import Simulator
from repro.trace.tracer import TRACE

if TYPE_CHECKING:  # pragma: no cover
    from repro.ble.adv import Scanner


class MediumRegistrationError(RuntimeError):
    """A node or scanner was registered on the medium twice.

    The reconnection paths (statconn/dynconn) create a *new* scanner object
    per establishment attempt; a stale still-registered predecessor would
    silently receive every offer a second time (double delivery, double
    loss draws, corrupted RNG alignment).  Registering a duplicate is
    therefore a hard error instead of a silent append."""


@dataclass
class InterferenceBurst:
    """A timed burst of external interference on a set of channels."""

    start_ns: int
    end_ns: int
    channels: Tuple[int, ...]
    per: float

    def active(self, now_ns: int, channel: int) -> bool:
        """Whether this burst affects ``channel`` at ``now_ns``."""
        return self.start_ns <= now_ns < self.end_ns and channel in self.channels


@dataclass
class InterferenceModel:
    """Loss configuration shared by all links on a medium.

    :param base_ber: bit error rate applied to every packet
        (PER = 1 - (1 - ber)^bits).  The default reproduces roughly 1 %
        loss for the paper's 115-byte BLE packets.
    :param channel_per: additive per-channel packet error rate.
    :param jammed_channels: channels with guaranteed loss (testbed
        channel 22).
    :param bursts: timed interference bursts.
    """

    base_ber: float = 1.0e-5
    channel_per: Dict[int, float] = field(default_factory=dict)
    jammed_channels: Tuple[int, ...] = ()
    bursts: List[InterferenceBurst] = field(default_factory=list)
    #: Memo of the BER-derived term per packet length (base_ber is fixed
    #: for a model's lifetime; this sits on the simulator's hottest path).
    _ber_memo: Dict[int, float] = field(default_factory=dict, repr=False)
    #: Per-channel static loss addend (``inf`` marks a jammed channel),
    #: filled lazily and dropped whenever :meth:`_stamp` changes -- the
    #: dirty flag that spares the hot path a tuple scan plus dict probe per
    #: sampled packet.  Bursts stay out of it: they are time-dependent.
    _chan_addend: Dict[int, float] = field(default_factory=dict, repr=False)
    _chan_stamp: Tuple[int, int] = (-1, -1)

    def _stamp(self) -> Tuple[int, int]:
        """Cheap change detector for the static per-channel configuration.

        Catches the mutation patterns used across the repo: replacing the
        ``jammed_channels`` tuple wholesale and adding keys to
        ``channel_per``.  Overwriting the *value* of an existing
        ``channel_per`` key is invisible to it -- call :meth:`invalidate`
        after doing that.
        """
        return (id(self.jammed_channels), len(self.channel_per))

    def invalidate(self) -> None:
        """Drop the per-channel cache after an in-place value overwrite."""
        self._chan_addend.clear()
        self._chan_stamp = (-1, -1)

    def packet_error_rate(self, channel: int, nbytes: int, now_ns: int) -> float:
        """Total loss probability for one packet of ``nbytes`` on ``channel``."""
        stamp = self._chan_stamp
        if (
            stamp[0] != id(self.jammed_channels)
            or stamp[1] != len(self.channel_per)
        ):
            self._chan_addend.clear()
            self._chan_stamp = self._stamp()
        addend = self._chan_addend.get(channel)
        if addend is None:
            if channel in self.jammed_channels:
                addend = float("inf")
            else:
                addend = self.channel_per.get(channel, 0.0)
            self._chan_addend[channel] = addend
        per = self._ber_memo.get(nbytes)
        if per is None:
            per = 1.0 - (1.0 - self.base_ber) ** (8 * max(nbytes, 1))
            self._ber_memo[nbytes] = per
        per += addend
        if self.bursts:
            for burst in self.bursts:
                if burst.active(now_ns, channel):
                    per += burst.per
        return min(per, 1.0)


class BleMedium:
    """The shared 2.4 GHz plane for all BLE nodes of an experiment.

    :param sim: the simulation kernel (for "now").
    :param rng: the loss-sampling random stream.
    :param interference: loss configuration; a default quiet model is used
        when omitted.
    :param geometry: optional node positions + radio range (see
        :mod:`repro.phy.spatial`).  Without one, every node hears every
        other node -- the paper's single-room testbed (§4.1) and the seed
        behaviour.  With one, advertising delivery is range-gated: a
        ``"grid"``-indexed geometry fans out in O(neighbors), the
        ``"allpairs"`` reference scans every scanner per transmission.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: random.Random,
        interference: Optional[InterferenceModel] = None,
        geometry: Optional[Geometry] = None,
    ) -> None:
        self.sim = sim
        self.rng = rng
        self.interference = interference or InterferenceModel()
        self.geometry = geometry
        #: Total packets sampled (diagnostics).
        self.packets_sampled = 0
        #: Total packets reported lost (diagnostics).
        self.packets_lost = 0
        #: Registered node addresses -> owner object (controllers register
        #: once at construction; a duplicate address is a wiring bug).
        self.nodes: Dict[int, object] = {}
        #: Active scanners (see :mod:`repro.ble.adv`) in registration order;
        #: advertising events probe this registry to find listeners in range.
        self.scanners: List[Scanner] = []
        #: The same scanners keyed by controller address (the spatial
        #: delivery path looks listeners up per neighbor address).
        self._scanners_by_addr: Dict[int, List[Scanner]] = {}
        # usable_channels memo: (query, interference stamp) -> result.
        self._usable_key: Optional[Tuple[Tuple[int, ...], Tuple[int, int]]] = None
        self._usable: List[int] = []
        #: Cluster partition for loss-stream sharding (None = one shared
        #: stream, the seed behaviour).  See :meth:`attach_clusters`.
        self._clusters: Optional[ClusterMap] = None
        self._stream_seed = 0
        #: cluster root -> its loss-sampling stream.
        self._streams: Dict[int, random.Random] = {}

    # -- loss-stream sharding ---------------------------------------------

    @property
    def clusters(self) -> Optional[ClusterMap]:
        """The attached cluster partition (``None`` = unsharded)."""
        return self._clusters

    def attach_clusters(self, clusters: ClusterMap, seed: int) -> None:
        """Shard the loss-sampling stream per connection cluster.

        The lookahead-parallel dispatcher may reorder packet exchanges
        *across* clusters inside one window; a single shared ``rng`` would
        hand those exchanges different draws depending on dispatch order.
        Sharding gives every cluster its own stream, consumed in that
        cluster's (serial-identical) event order, so serial and lookahead
        dispatch sample identical loss sequences.

        The smallest cluster root keeps the medium's original ``rng``
        object: a single-component scenario -- the paper's single-room
        testbed, every committed golden -- draws from the exact stream it
        always did, byte for byte.  Cluster merges (monotone, see
        :class:`~repro.sim.cluster.ClusterMap`) deterministically adopt
        the stream of the smallest previously-streamed root.
        """
        self._clusters = clusters
        self._stream_seed = int(seed)
        self._streams = {}
        roots = clusters.roots()
        if roots:
            self._streams[roots[0]] = self.rng

    def loss_rng(self, addr: Optional[int]) -> random.Random:
        """The loss stream that samples packets involving node ``addr``.

        Both endpoints of an exchange share a cluster by construction, so
        either address selects the same stream.  Falls back to the shared
        ``rng`` when sharding is not attached or the address is unknown.
        """
        clusters = self._clusters
        if clusters is None or addr is None:
            return self.rng
        root = clusters.root(addr)
        stream = self._streams.get(root)
        if stream is None:
            # A merge may have re-rooted a cluster that already owned a
            # stream: adopt the smallest absorbed root's stream so the
            # sequence survives the merge deterministically.
            absorbed = [r for r in self._streams if clusters.root(r) == root]
            if absorbed:
                stream = self._streams[min(absorbed)]
            else:
                stream = random.Random((self._stream_seed << 20) ^ (root + 1))
            self._streams[root] = stream
        return stream

    # -- node registry ----------------------------------------------------

    def register_node(self, addr: int, owner: object = None) -> None:
        """Claim a link-layer address on this medium (once per node).

        Reconnection re-uses the controller object; only a *new* node may
        claim an address, so a duplicate raises instead of silently letting
        two stacks answer for one address (double delivery)."""
        if addr in self.nodes:
            raise MediumRegistrationError(
                f"node address {addr} is already registered on this medium; "
                f"reconnection must reuse the existing controller, not "
                f"register a second one"
            )
        self.nodes[addr] = owner

    def unregister_node(self, addr: int) -> None:
        """Release an address (node departure); idempotent."""
        self.nodes.pop(addr, None)

    def rotate_node(self, old_addr: int, new_addr: int) -> None:
        """Re-key a node's on-air address (RPA rotation, see repro.ble.rpa).

        Moves the node registration, any registered scanners of the node,
        and -- on a geometry-equipped medium -- the node's position (the
        spatial index is invalidated live, exactly like a mobility event).
        The new address must be unclaimed: two stacks answering for one
        address is the same double-delivery bug duplicate registration
        guards against.
        """
        if old_addr not in self.nodes:
            raise MediumRegistrationError(
                f"cannot rotate unregistered node address {old_addr}"
            )
        if new_addr in self.nodes:
            raise MediumRegistrationError(
                f"rotation target address {new_addr} is already registered "
                f"on this medium"
            )
        self.nodes[new_addr] = self.nodes.pop(old_addr)
        scanners = self._scanners_by_addr.pop(old_addr, None)
        if scanners:
            self._scanners_by_addr[new_addr] = scanners
        if self.geometry is not None and old_addr in self.geometry:
            x, y = self.geometry.position_of(old_addr)
            self.geometry.remove(old_addr)
            self.geometry.place(new_addr, x, y)
        if self._clusters is not None:
            # Both addresses name one node: the dispatcher must keep
            # resolving timers keyed by either into the same lane.
            self._clusters.note_alias(old_addr, new_addr)

    def note_link(self, a: int, b: int) -> None:
        """Connection-establishment hook: the two nodes now interact.

        Geometry-seeded partitions already have both ends in one cluster
        (a connection needs radio range), so this usually no-ops; it is
        the safety net for geometry-less or hand-built partitions.
        """
        if self._clusters is not None:
            self._clusters.note_edge(a, b)

    def note_move(self, addr: int) -> None:
        """Mobility invalidation hook: merge the mover into earshot.

        A relocated node may now hear clusters it could not before; the
        partition is monotone, so merging with every current neighbor is
        always sound (at worst over-conservative).  No-op without sharding
        or geometry.
        """
        if (
            self._clusters is not None
            and self.geometry is not None
            and addr in self.geometry
        ):
            self._clusters.note_mobility(addr, self.geometry.neighbors_of(addr))

    # -- scanner registry -------------------------------------------------

    def register_scanner(self, scanner: Scanner) -> None:
        """Add a scanner to the advertising delivery registry.

        Registering the same scanner object twice, or a second scanner for
        the same ``(controller address, target)`` pair -- the reconnection
        footgun: a stale predecessor that was never stopped -- raises a
        :class:`MediumRegistrationError` instead of double-delivering."""
        addr = scanner.controller.addr
        per_addr = self._scanners_by_addr.setdefault(addr, [])
        for other in per_addr:
            if other is scanner:
                raise MediumRegistrationError(
                    f"scanner of node {addr} is already registered; "
                    f"stop() it before starting it again"
                )
            if other.target_addr == scanner.target_addr:
                raise MediumRegistrationError(
                    f"node {addr} already has a registered scanner for "
                    f"target {scanner.target_addr!r}; the reconnection path "
                    f"must stop the old scanner first (a stale one would "
                    f"double-deliver every advertising event)"
                )
        per_addr.append(scanner)
        self.scanners.append(scanner)

    def unregister_scanner(self, scanner: Scanner) -> None:
        """Remove a scanner from the registry (idempotent)."""
        if scanner in self.scanners:
            self.scanners.remove(scanner)
            per_addr = self._scanners_by_addr.get(scanner.controller.addr)
            if per_addr and scanner in per_addr:
                per_addr.remove(scanner)

    def scanners_hearing(self, adv_addr: int) -> List[Scanner]:
        """The scanners a transmission from ``adv_addr`` can reach.

        * No geometry: every registered scanner, in registration order
          (byte-compatible with the seed's all-in-mutual-range plane).
        * Grid geometry: the advertiser's cached neighbor set, ascending by
          address -- O(neighbors) per transmission.
        * All-pairs geometry (the differential reference): every scanner
          address checked against the exact range predicate per
          transmission -- O(N), same candidates, same order as the grid.
        """
        geometry = self.geometry
        if geometry is None:
            return list(self.scanners)
        by_addr = self._scanners_by_addr
        heard: List[Scanner] = []
        if geometry.index == "grid":
            for addr in geometry.neighbors_of(adv_addr):
                scanners = by_addr.get(addr)
                if scanners:
                    heard.extend(scanners)
        else:
            listening = sorted(
                addr for addr, scanners in by_addr.items() if scanners
            )
            for addr in geometry.iter_in_range(adv_addr, listening):
                heard.extend(by_addr[addr])
        return heard

    def packet_lost(
        self, channel: int, nbytes: int, addr: Optional[int] = None
    ) -> bool:
        """Sample whether one packet on ``channel`` is corrupted on air.

        ``addr`` identifies (either of) the nodes involved so a
        cluster-sharded medium draws from the right loss stream; omitting
        it uses the shared stream (identical when sharding is off or the
        scenario is a single cluster).
        """
        per = self.interference.packet_error_rate(channel, nbytes, self.sim.now)
        self.packets_sampled += 1
        if per <= 0.0:
            lost = False
        else:
            if self._clusters is None or addr is None:
                rng = self.rng
            else:
                rng = self.loss_rng(addr)
            lost = rng.random() < per
            if lost:
                self.packets_lost += 1
        if TRACE.enabled:
            TRACE.emit(
                self.sim.now, "phy", "packet",
                channel=channel, nbytes=nbytes, lost=lost,
            )
        if METRICS.enabled:
            METRICS.inc("phy", "phy.packets_sampled")
            METRICS.inc("phy", "phy.airtime_ns", ble_air_time_ns(nbytes))
            if lost:
                METRICS.inc("phy", "phy.ber_drops")
        return lost

    def usable_channels(self, channels: Iterable[int]) -> List[int]:
        """Filter a channel list down to not-permanently-jammed channels.

        Mirrors the paper's static exclusion of channel 22 from all nodes'
        channel maps (§4.2) -- adaptive channel hopping is future work there
        and here.  The result is memoized against the interference model's
        change stamp, so repeated queries with an unchanged jammed set skip
        the rebuild (dirty-flag invalidation, not time-based).
        """
        query = tuple(channels)
        key = (query, self.interference._stamp())
        if key == self._usable_key:
            return list(self._usable)
        jammed = set(self.interference.jammed_channels)
        usable = [c for c in query if c not in jammed]
        self._usable_key = key
        self._usable = usable
        return list(usable)
