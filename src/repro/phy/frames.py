"""On-air frame duration arithmetic.

BLE 1 Mbit/s (LE 1M, the paper's PHY -- the nrf52dk does not support 2M,
§4.2): every byte takes 8 us.  An LE 1M packet is::

    preamble (1) | access address (4) | PDU header (2) | payload (0..251) | CRC (3)

so an empty data PDU lasts 80 us and a full 251-byte PDU lasts 2120 us.
LE 2M halves these numbers and uses a 2-byte preamble; LE Coded is not
modelled (not used in the paper).

IEEE 802.15.4 O-QPSK 2.4 GHz: 250 kbit/s, 32 us per byte, with a 6-byte
synchronisation header (4 preamble + 1 SFD + 1 PHR length byte).
"""

from __future__ import annotations

import enum

from repro.sim.units import USEC


class BlePhyMode(enum.Enum):
    """BLE PHY modes relevant to connection timing."""

    LE_1M = "1M"
    LE_2M = "2M"


#: Fixed inter frame spacing between packets of a connection event (BT 5.2
#: Vol 6 Part B §4.1.1): exactly 150 us regardless of PHY.
T_IFS_NS: int = 150 * USEC

#: LE 1M per-byte air time.
_BYTE_NS_1M: int = 8 * USEC
#: LE 2M per-byte air time.
_BYTE_NS_2M: int = 4 * USEC

#: Non-payload bytes of an LE 1M data packet: preamble 1 + AA 4 + header 2 + CRC 3.
BLE_1M_OVERHEAD_BYTES: int = 10
#: LE 2M uses a 2-byte preamble.
BLE_2M_OVERHEAD_BYTES: int = 11

#: Maximum LL data payload with the data length extension (BT 4.2+).
BLE_MAX_DATA_PAYLOAD: int = 251
#: Maximum LL data payload without the data length extension.
BLE_LEGACY_DATA_PAYLOAD: int = 27
#: Maximum legacy advertising payload (AdvData; the paper's beacons use 31).
BLE_MAX_ADV_PAYLOAD: int = 31


# Air time is asked for on every TX of the connection event loop; the full
# 0..251 domain is tiny, so both PHYs get a precomputed lookup tuple.
_AIR_TIME_1M: tuple = tuple(
    (BLE_1M_OVERHEAD_BYTES + n) * _BYTE_NS_1M for n in range(BLE_MAX_DATA_PAYLOAD + 1)
)
_AIR_TIME_2M: tuple = tuple(
    (BLE_2M_OVERHEAD_BYTES + n) * _BYTE_NS_2M for n in range(BLE_MAX_DATA_PAYLOAD + 1)
)


def ble_air_time_ns(payload_len: int, phy: BlePhyMode = BlePhyMode.LE_1M) -> int:
    """On-air duration of one BLE data packet with ``payload_len`` LL payload bytes."""
    if payload_len < 0:
        raise ValueError(f"BLE LL payload out of range: {payload_len}")
    try:
        if phy is BlePhyMode.LE_1M:
            return _AIR_TIME_1M[payload_len]
        return _AIR_TIME_2M[payload_len]
    except IndexError:
        raise ValueError(f"BLE LL payload out of range: {payload_len}") from None


def ble_air_time_table(phy: BlePhyMode = BlePhyMode.LE_1M) -> tuple:
    """The payload-length -> air-time lookup tuple for ``phy``.

    The connection event loop hoists this table once per event and indexes
    it per packet, skipping a function call on the simulator's hottest path.
    Indexing past 251 raises IndexError, same domain as
    :func:`ble_air_time_ns`.
    """
    return _AIR_TIME_1M if phy is BlePhyMode.LE_1M else _AIR_TIME_2M


def ble_max_payload_for(air_budget_ns: int, phy: BlePhyMode = BlePhyMode.LE_1M) -> int:
    """Largest LL payload whose packet fits in ``air_budget_ns`` (or -1).

    Used by the connection event loop to decide whether a queued data PDU
    still fits before the next scheduled radio activity; -1 means not even
    an empty packet fits.
    """
    if phy is BlePhyMode.LE_1M:
        per_byte, overhead = _BYTE_NS_1M, BLE_1M_OVERHEAD_BYTES
    else:
        per_byte, overhead = _BYTE_NS_2M, BLE_2M_OVERHEAD_BYTES
    max_total_bytes = air_budget_ns // per_byte
    payload = min(int(max_total_bytes) - overhead, BLE_MAX_DATA_PAYLOAD)
    return max(payload, -1)


def ble_adv_air_time_ns(payload_len: int) -> int:
    """On-air duration of a legacy advertising PDU (always LE 1M).

    ADV PDUs carry a 6-byte AdvA address plus up to 31 bytes of AdvData.
    """
    if not 0 <= payload_len <= BLE_MAX_ADV_PAYLOAD:
        raise ValueError(f"adv payload out of range: {payload_len}")
    return (BLE_1M_OVERHEAD_BYTES + 6 + payload_len) * _BYTE_NS_1M


#: 802.15.4 per-byte air time at 250 kbit/s.
_BYTE_NS_154: int = 32 * USEC
#: 802.15.4 synchronisation header + PHR length in bytes.
IEEE802154_SHR_PHR_BYTES: int = 6
#: Maximum 802.15.4 PSDU (MAC frame incl. 2-byte FCS).
IEEE802154_MAX_PSDU: int = 127


def ieee802154_air_time_ns(psdu_len: int) -> int:
    """On-air duration of one 802.15.4 frame with ``psdu_len`` MAC bytes."""
    if not 0 <= psdu_len <= IEEE802154_MAX_PSDU:
        raise ValueError(f"802.15.4 PSDU out of range: {psdu_len}")
    return (IEEE802154_SHR_PHR_BYTES + psdu_len) * _BYTE_NS_154
