"""Node geometry and the spatially-indexed neighbor sets of the medium.

The paper's testbed (§4.1) keeps all nodes in mutual range, so the seed
medium delivered every advertising event to every registered scanner --
O(N) per transmission.  That is fine for 15 nodes and a dead end for the
density/reliability regime the Bluetooth-Mesh literature studies on real
deployments (Rondón et al., arXiv 1910.03345; Aijaz et al., arXiv
2106.04230), where fleets are hundreds of nodes and radio range is the
structuring constraint.

:class:`Geometry` gives nodes positions (meters, 2-D) and a disc radio
range, and answers "who can hear ``addr``?" two ways:

* ``index="grid"`` -- a uniform-grid neighbor index: positions are
  bucketed into cells of ``radio_range_m`` side length, per-node neighbor
  sets are computed once from each node's 3x3 cell neighborhood, and the
  cached sets are reused until a position changes.  Delivery fan-out is
  O(neighbors); the index recomputes only on topology/mobility change and
  never on plain packet traffic.
* ``index="allpairs"`` -- the brute-force reference: no cache is consulted
  on the delivery path; every transmission scans every candidate with the
  exact same range predicate.  This is the slow arm of the differential
  suite (``tests/phy/test_medium_differential.py``), which asserts the two
  arms produce byte-identical delivery decisions and traces.

Both arms share one range predicate (:meth:`Geometry.in_range`, a
``dist^2 <= range^2`` comparison on the same floats), so equivalence is
exact, not approximate: a grid index that ever dropped or invented a
neighbor would diverge byte-for-byte and fail the lockstep suite.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

#: The neighbor-index implementations a :class:`Geometry` can run on.
GEOMETRY_INDEXES: Tuple[str, ...] = ("grid", "allpairs")


class GeometryError(ValueError):
    """Invalid geometry configuration or query (unplaced node, bad range)."""


def _within_sq(
    pa: Tuple[float, float], pb: Tuple[float, float], range_sq: float
) -> bool:
    """The single shared range predicate of every delivery path."""
    dx = pa[0] - pb[0]
    dy = pa[1] - pb[1]
    return dx * dx + dy * dy <= range_sq


def grid_neighbor_sets(
    positions: Dict[int, Tuple[float, float]], radio_range_m: float
) -> Dict[int, Tuple[int, ...]]:
    """Per-node neighbor sets via a uniform grid (cell side = range).

    A node's neighbors all lie within ``radio_range_m``, hence within the
    3x3 block of cells around its own; candidates from that block pass the
    exact disc predicate.  Cost is O(N * local density) instead of O(N^2).
    Neighbor tuples are sorted by address -- the canonical delivery order.
    """
    if radio_range_m <= 0:
        raise GeometryError(f"radio range must be positive, got {radio_range_m}")
    cell = float(radio_range_m)
    range_sq = cell * cell
    buckets: Dict[Tuple[int, int], List[int]] = {}
    cells: Dict[int, Tuple[int, int]] = {}
    for addr in sorted(positions):
        x, y = positions[addr]
        key = (math.floor(x / cell), math.floor(y / cell))
        cells[addr] = key
        buckets.setdefault(key, []).append(addr)
    neighbors: Dict[int, Tuple[int, ...]] = {}
    for addr in sorted(positions):
        cx, cy = cells[addr]
        pa = positions[addr]
        found: List[int] = []
        for gx in (cx - 1, cx, cx + 1):
            for gy in (cy - 1, cy, cy + 1):
                for other in buckets.get((gx, gy), ()):
                    if other != addr and _within_sq(pa, positions[other], range_sq):
                        found.append(other)
        found.sort()
        neighbors[addr] = tuple(found)
    return neighbors


def allpairs_neighbor_sets(
    positions: Dict[int, Tuple[float, float]], radio_range_m: float
) -> Dict[int, Tuple[int, ...]]:
    """Per-node neighbor sets by the O(N^2) scan (the reference)."""
    if radio_range_m <= 0:
        raise GeometryError(f"radio range must be positive, got {radio_range_m}")
    range_sq = float(radio_range_m) * float(radio_range_m)
    addrs = sorted(positions)
    neighbors: Dict[int, Tuple[int, ...]] = {}
    for addr in addrs:
        pa = positions[addr]
        neighbors[addr] = tuple(
            other
            for other in addrs
            if other != addr and _within_sq(pa, positions[other], range_sq)
        )
    return neighbors


class Geometry:
    """Positions + radio range + a pluggable neighbor index.

    :param radio_range_m: disc radio range in meters (must be positive).
    :param index: ``"grid"`` (spatially indexed, the default) or
        ``"allpairs"`` (the brute-force reference arm: the delivery path
        re-scans all candidates per transmission and never consults the
        neighbor cache).
    """

    def __init__(self, radio_range_m: float, index: str = "grid") -> None:
        if radio_range_m <= 0:
            raise GeometryError(
                f"radio range must be positive, got {radio_range_m}"
            )
        if index not in GEOMETRY_INDEXES:
            raise GeometryError(
                f"unknown neighbor index {index!r} (choose from {GEOMETRY_INDEXES})"
            )
        self.radio_range_m = float(radio_range_m)
        self.index = index
        self._range_sq = self.radio_range_m * self.radio_range_m
        self._positions: Dict[int, Tuple[float, float]] = {}
        self._neighbors: Dict[int, Tuple[int, ...]] = {}
        self._dirty = True
        #: Lazy index recomputations (the invalidation suite pins when this
        #: may and may not advance).
        self.rebuilds = 0
        #: Position updates of already-placed nodes (mobility events).
        self.moves = 0

    # -- placement ---------------------------------------------------------

    def place(self, addr: int, x: float, y: float) -> None:
        """Set (or update) a node's position; invalidates the index."""
        if addr in self._positions:
            self.moves += 1
        self._positions[addr] = (float(x), float(y))
        self._dirty = True

    def place_all(self, positions: Dict[int, Tuple[float, float]]) -> None:
        """Bulk placement (one invalidation, not one per node)."""
        for addr in sorted(positions):
            x, y = positions[addr]
            self.place(addr, x, y)

    def move(self, addr: int, x: float, y: float) -> None:
        """Mobility event: relocate an already-placed node."""
        if addr not in self._positions:
            raise GeometryError(f"cannot move unplaced node {addr}")
        self.place(addr, x, y)

    def remove(self, addr: int) -> None:
        """Drop a node from the geometry (departure/churn)."""
        if self._positions.pop(addr, None) is not None:
            self._dirty = True

    # -- queries -----------------------------------------------------------

    def __contains__(self, addr: int) -> bool:
        return addr in self._positions

    def __len__(self) -> int:
        return len(self._positions)

    def position_of(self, addr: int) -> Tuple[float, float]:
        """A node's position; unplaced nodes are a configuration error."""
        try:
            return self._positions[addr]
        except KeyError:
            raise GeometryError(
                f"node {addr} has no position; place() every node that "
                f"touches a geometry-equipped medium"
            ) from None

    def in_range(self, a: int, b: int) -> bool:
        """Exact disc predicate between two placed nodes."""
        return _within_sq(
            self.position_of(a), self.position_of(b), self._range_sq
        )

    def neighbors_of(self, addr: int) -> Tuple[int, ...]:
        """The cached neighbor set of ``addr``, sorted by address.

        Rebuilds the index lazily iff a placement changed since the last
        query.  Available in both index modes (the allpairs arm uses the
        brute-force builder), but the allpairs *delivery* path deliberately
        bypasses this cache -- see :meth:`iter_in_range`.
        """
        if self._dirty:
            builder = (
                grid_neighbor_sets
                if self.index == "grid"
                else allpairs_neighbor_sets
            )
            self._neighbors = builder(self._positions, self.radio_range_m)
            self._dirty = False
            self.rebuilds += 1
        try:
            return self._neighbors[addr]
        except KeyError:
            raise GeometryError(
                f"node {addr} has no position; place() every node that "
                f"touches a geometry-equipped medium"
            ) from None

    def iter_in_range(
        self, addr: int, candidates: Iterable[int]
    ) -> List[int]:
        """``candidates`` (given sorted) filtered by range from ``addr``.

        The all-pairs reference delivery: O(len(candidates)) exact checks
        per call, no cache.  Produces the same membership and order as
        filtering ``candidates`` against :meth:`neighbors_of`.
        """
        pa = self.position_of(addr)
        positions = self._positions
        range_sq = self._range_sq
        out: List[int] = []
        for other in candidates:
            if other != addr:
                pb = positions.get(other)
                if pb is None:
                    raise GeometryError(
                        f"node {other} has no position; place() every node "
                        f"that touches a geometry-equipped medium"
                    )
                if _within_sq(pa, pb, range_sq):
                    out.append(other)
        return out

    def adjacency(self) -> Dict[int, Tuple[int, ...]]:
        """The full neighbor map (rebuilding if needed)."""
        out: Dict[int, Tuple[int, ...]] = {}
        for addr in sorted(self._positions):
            out[addr] = self.neighbors_of(addr)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Geometry {len(self._positions)} nodes "
            f"range={self.radio_range_m}m index={self.index}>"
        )


def make_geometry(
    positions: Dict[int, Tuple[float, float]],
    radio_range_m: float,
    index: str = "grid",
) -> Optional[Geometry]:
    """Build a placed :class:`Geometry` (``None`` for empty positions)."""
    if not positions:
        return None
    geometry = Geometry(radio_range_m, index=index)
    geometry.place_all(positions)
    return geometry
