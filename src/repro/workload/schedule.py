"""Churn schedules: pure, seeded, capacity-capped departure/arrival plans.

A schedule is computed *before* the simulation runs, as a pure function of
``(spec, seed, n_nodes, window)`` -- no simulator state, no wall clock, no
shared RNG.  That purity is what the differential suite leans on: the same
inputs must produce the byte-identical schedule in every worker process,
under either spatial index, on any platform (:meth:`ChurnSchedule.digest`
is the proof handle).

Generation rules:

* node 0 (the DODAG root / traffic consumer) never churns;
* each churnable node draws an alternating ``Exp(mean_up)`` /
  ``Exp(mean_down)`` timeline from its own ``workload-churn-{i}`` stream
  (:func:`repro.sim.rng.subseed`), so adding a node never shifts another
  node's draws;
* whether a departure is graceful or fail-stop is drawn at generation time
  (``fail_fraction``);
* the ``max_departed_fraction`` cap is enforced at generation by a
  deterministic sweep over the merged timeline: a departure interval that
  would push the simultaneously-departed count over the cap is dropped
  wholesale (its arrival too) -- the liveness suite relies on never having
  more than 30 % of the network gone at once;
* every accepted departure has a matching arrival inside the window
  (clamped to the window end), so the post-churn network contains all
  nodes and "reconverges to a connected DODAG" is well-defined.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.sim.rng import subseed
from repro.sim.units import s_to_ns
from repro.workload.spec import ChurnSpec


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled lifecycle transition of one node."""

    time_ns: int
    node_id: int
    action: str  # "depart" | "arrive"
    #: Departures only: hard fail-stop (radio silent) vs graceful close.
    fail: bool = False


@dataclass(frozen=True)
class ChurnSchedule:
    """An ordered, validated churn plan."""

    events: Tuple[ChurnEvent, ...]

    def digest(self) -> str:
        """SHA-256 over the canonical event lines (byte-identity proofs)."""
        lines = "\n".join(
            f"{e.time_ns}:{e.node_id}:{e.action}:{int(e.fail)}"
            for e in self.events
        )
        return hashlib.sha256(lines.encode("ascii")).hexdigest()

    def max_departed(self) -> int:
        """Peak number of simultaneously-departed nodes."""
        departed = 0
        peak = 0
        for event in self.events:
            if event.action == "depart":
                departed += 1
                peak = max(peak, departed)
            else:
                departed -= 1
        return peak

    def departures(self) -> int:
        """Total departure events."""
        return sum(1 for e in self.events if e.action == "depart")


def _poisson_intervals(
    spec: ChurnSpec, seed: int, node_id: int, start_ns: int, end_ns: int
) -> List[Tuple[int, int, bool]]:
    """One node's candidate ``(depart_ns, arrive_ns, fail)`` intervals."""
    rng = random.Random(subseed(seed, "workload-churn", node_id))
    intervals: List[Tuple[int, int, bool]] = []
    t = start_ns
    while True:
        t += s_to_ns(rng.expovariate(1.0 / spec.mean_up_s))
        if t >= end_ns:
            return intervals
        down_ns = s_to_ns(rng.expovariate(1.0 / spec.mean_down_s))
        fail = rng.random() < spec.fail_fraction
        arrive = min(t + max(down_ns, 1), end_ns)
        intervals.append((t, arrive, fail))
        t = arrive


def _apply_cap(
    intervals: List[Tuple[int, int, bool, int]], cap: int
) -> List[Tuple[int, int, bool, int]]:
    """Drop intervals that would exceed ``cap`` simultaneous departures.

    A deterministic sweep in ``(depart_ns, node_id)`` order: an interval is
    accepted iff, at its departure instant, fewer than ``cap`` accepted
    intervals are still open.  Dropping the whole interval (not trimming
    it) keeps every accepted departure paired with its arrival.
    """
    accepted: List[Tuple[int, int, bool, int]] = []
    open_until: List[int] = []  # arrival times of accepted, still-open intervals
    for depart, arrive, fail, node in sorted(
        intervals, key=lambda iv: (iv[0], iv[3])
    ):
        open_until = [a for a in open_until if a > depart]
        if len(open_until) >= cap:
            continue
        open_until.append(arrive)
        accepted.append((depart, arrive, fail, node))
    return accepted


def build_churn_schedule(
    spec: ChurnSpec,
    seed: int,
    n_nodes: int,
    start_ns: int,
    end_ns: int,
) -> ChurnSchedule:
    """Generate the churn plan for one run (pure; see module docstring).

    :param spec: the parsed ``churn:`` block.
    :param seed: the experiment seed (sub-seeded per node; never the raw
        traffic/medium streams).
    :param n_nodes: network size (node 0 exempt).
    :param start_ns / end_ns: the churn window in simulated nanoseconds
        (already resolved against the spec's ``start_s``/``end_s``).
    :raises ValueError: trace mode only -- when the explicit event list is
        inconsistent (unpaired events, root churn, cap exceeded).
    """
    if end_ns <= start_ns or n_nodes < 2:
        return ChurnSchedule(events=())
    churnable = n_nodes - 1  # node 0 never churns
    cap = max(1, int(spec.max_departed_fraction * churnable))

    if spec.mode == "trace":
        return _replay_schedule(spec, n_nodes, cap, end_ns)

    candidates: List[Tuple[int, int, bool, int]] = []
    for node_id in range(1, n_nodes):
        for depart, arrive, fail in _poisson_intervals(
            spec, seed, node_id, start_ns, end_ns
        ):
            candidates.append((depart, arrive, fail, node_id))
    events: List[ChurnEvent] = []
    for depart, arrive, fail, node in _apply_cap(candidates, cap):
        events.append(ChurnEvent(depart, node, "depart", fail))
        events.append(ChurnEvent(arrive, node, "arrive"))
    events.sort(key=lambda e: (e.time_ns, e.node_id, e.action))
    return ChurnSchedule(events=tuple(events))


def _replay_schedule(
    spec: ChurnSpec, n_nodes: int, cap: int, end_ns: int
) -> ChurnSchedule:
    """Validate and order an explicit trace-replay event list."""
    events: List[ChurnEvent] = []
    for t_s, node, action, fail in spec.events:
        if node == 0:
            raise ValueError("churn trace must not churn node 0 (the root)")
        if node >= n_nodes:
            raise ValueError(f"churn trace names node {node} of {n_nodes}")
        events.append(ChurnEvent(s_to_ns(t_s), node, action, fail))
    events.sort(key=lambda e: (e.time_ns, e.node_id, e.action))
    departed: set = set()
    peak = 0
    for event in events:
        if event.time_ns >= end_ns:
            raise ValueError("churn trace event beyond the churn window")
        if event.action == "depart":
            if event.node_id in departed:
                raise ValueError(f"node {event.node_id} departs twice in a row")
            departed.add(event.node_id)
            peak = max(peak, len(departed))
        else:
            if event.node_id not in departed:
                raise ValueError(f"node {event.node_id} arrives while present")
            departed.discard(event.node_id)
    if departed:
        raise ValueError(
            f"churn trace leaves nodes departed: {sorted(departed)}"
        )
    if peak > cap:
        raise ValueError(
            f"churn trace peaks at {peak} simultaneous departures, cap is {cap}"
        )
    return ChurnSchedule(events=tuple(events))
