"""Periodic resolvable-private-address rotation (see :mod:`repro.ble.rpa`).

Each rotating node adopts a fresh on-air address every jittered period.
The new address comes from a per-node deterministic counter inside a
reserved block far above any node-id, so rotated addresses never collide
with identities or with each other.  Peers re-resolve the identity on the
scan path (one ``ble.rpa_resolve`` record per rotation per observer) and
every table above the air interface keys by identity, so peering survives.

Determinism: jitter draws come from the per-node ``workload-rotation-{i}``
stream.  The draw is *always* made on schedule -- a departed node skips
the rotation action (dead firmware rotates nothing) but not the draw, so
churn on/off never perturbs rotation timing of the other nodes.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable

from repro.obs.registry import METRICS
from repro.sim.rng import subseed
from repro.sim.units import s_to_ns
from repro.trace.tracer import TRACE
from repro.workload.spec import MacRotationSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import Node

#: Base of the rotated-address space.  Identities are node ids (tiny
#: integers); each node owns a disjoint block of ``ROTATION_BLOCK``
#: addresses starting here, so a rotated address can never collide with an
#: identity or another node's rotations.
ROTATION_ADDR_BASE: int = 1 << 20
ROTATION_BLOCK: int = 1 << 16


class MacRotator:
    """The rotation process of one node."""

    def __init__(
        self,
        node: "Node",
        spec: MacRotationSpec,
        seed: int,
        is_departed: Callable[[], bool],
    ) -> None:
        self.node = node
        self.spec = spec
        self.rng = random.Random(subseed(seed, "workload-rotation", node.node_id))
        self._is_departed = is_departed
        self._counter = 0
        self._running = False

    def start(self) -> None:
        """Schedule the first rotation one jittered period from now."""
        self._running = True
        self.node.sim.after(self._next_gap(), self._rotate)

    def stop(self) -> None:
        """Halt rotation (the pending timer dies on the flag)."""
        self._running = False

    def _next_gap(self) -> int:
        jitter_ns = s_to_ns(self.spec.jitter_s)
        gap = s_to_ns(self.spec.period_s)
        if jitter_ns:
            gap += self.rng.randint(-jitter_ns, jitter_ns)
        return max(gap, 1)

    def _rotate(self) -> None:
        if not self._running:
            return
        gap = self._next_gap()  # drawn unconditionally: streams stay aligned
        if not self._is_departed():
            controller = self.node.controller
            self._counter += 1
            new_addr = (
                ROTATION_ADDR_BASE
                + self.node.node_id * ROTATION_BLOCK
                + self._counter
            )
            old = controller.addr
            controller.rotate_address(new_addr)
            if TRACE.enabled:
                TRACE.emit(
                    self.node.sim.now, "workload", "rotate",
                    node=controller.name, id=controller.identity,
                    old=old, new=new_addr,
                )
            if METRICS.enabled:
                METRICS.inc(controller.name, "workload.rotations")
        self.node.sim.after(gap, self._rotate)
