"""Scenario dynamics: node churn, waypoint mobility, RPA rotation.

The paper's evaluation runs a *static* scenario -- fixed nodes, fixed
addresses, links only failing through interference.  Its future-work
section (§9) asks how the architecture behaves in "dynamic environments";
this package is that layer: a seeded, reproducible workload that perturbs
a running experiment along three axes:

* **churn** (:mod:`repro.workload.schedule`): nodes depart -- gracefully
  (disconnecting first) or by hard fail-stop (radio silent mid-connection,
  peers discover it via supervision timeout) -- and later return, having
  forgotten their routing state;
* **mobility** (:mod:`repro.workload.mobility`): random-waypoint motion
  feeding :meth:`repro.phy.spatial.Geometry.move`, so the spatial index is
  invalidated live while the network runs;
* **MAC rotation** (:mod:`repro.workload.rotation`): periodic resolvable-
  private-address changes (see :mod:`repro.ble.rpa`); peering must survive
  because every layer above the air interface keys by identity.

Everything is driven by named sub-seeded RNG streams
(:func:`repro.sim.rng.subseed`), so enabling any workload axis never
perturbs the draws of the traffic, medium, or topology streams -- and a
run with the workload disabled is byte-identical to one predating this
package.
"""

from repro.workload.driver import WorkloadDriver
from repro.workload.mobility import WaypointMobility
from repro.workload.rotation import MacRotator
from repro.workload.schedule import (
    ChurnEvent,
    ChurnSchedule,
    build_churn_schedule,
)
from repro.workload.spec import (
    ChurnSpec,
    MacRotationSpec,
    MobilitySpec,
    WorkloadSpec,
)

__all__ = [
    "ChurnEvent",
    "ChurnSchedule",
    "ChurnSpec",
    "MacRotationSpec",
    "MobilitySpec",
    "WaypointMobility",
    "MacRotator",
    "WorkloadDriver",
    "WorkloadSpec",
    "build_churn_schedule",
]
