"""The workload driver: binds churn/mobility/rotation to a live network.

One :class:`WorkloadDriver` per dynamic experiment.  It precomputes the
churn schedule (pure; :mod:`repro.workload.schedule`), installs the event
timers on the kernel, and owns the lifecycle mechanics:

**Departure** -- graceful: dynconn and RPL stop, every live connection is
closed (``LOCAL_CLOSE``; peers see an orderly disconnect), the producer
pauses, and the radio is silenced.  Fail-stop: the radio is silenced
*first* (:meth:`repro.ble.sched.RadioScheduler.fail_stop`) with every
connection left dangling -- peers discover the death the way the BT spec
makes them, via supervision timeout.

**Arrival** -- the radio resumes, RPL forgets all DODAG state
(:meth:`repro.rpl.rpl.RplInstance.reset`: a returning node must rejoin
from scratch), dynconn restarts (the node advertises as an orphan), and
the producer resumes if the traffic window is still open.  The driver
measures the re-attach latency -- arrival until the RPL parent-change that
rejoins the DODAG -- into the ``workload.reattach_s`` histogram.

Node 0 (root/consumer) never departs, never moves, never rotates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.ble.conn import DisconnectReason
from repro.obs.registry import METRICS, REATTACH_BUCKETS_S
from repro.sim.units import ns_to_s, s_to_ns
from repro.trace.tracer import TRACE
from repro.workload.mobility import WaypointMobility
from repro.workload.rotation import MacRotator
from repro.workload.schedule import ChurnSchedule, build_churn_schedule
from repro.workload.spec import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.testbed.dynamic import DynamicBleNetwork
    from repro.testbed.traffic import Producer


class WorkloadDriver:
    """Scenario dynamics for one :class:`~repro.testbed.dynamic.DynamicBleNetwork`."""

    def __init__(
        self,
        net: "DynamicBleNetwork",
        spec: WorkloadSpec,
        seed: int,
    ) -> None:
        self.net = net
        self.spec = spec
        self.seed = seed
        self.schedule: ChurnSchedule = ChurnSchedule(events=())
        self._departed: set = set()
        self._producers: Dict[int, "Producer"] = {}
        self._traffic_start_ns: Optional[int] = None
        self._traffic_stop_ns: Optional[int] = None
        self._arrived_at: Dict[int, int] = {}
        self._mobiles: List[WaypointMobility] = []
        self._rotators: List[MacRotator] = []
        #: (node_id, latency_ns) per completed re-attach.
        self.reattach_latencies: List[Tuple[int, int]] = []
        self.departures = 0
        self.arrivals = 0
        self.failstops = 0
        for node_id, rpl in enumerate(net.rpls):
            self._chain_parent_change(node_id, rpl)

    # -- wiring ------------------------------------------------------------

    def bind_producers(
        self,
        producers: Dict[int, "Producer"],
        traffic_start_ns: int,
        traffic_stop_ns: int,
    ) -> None:
        """Let the driver pause/resume the traffic sources across churn."""
        self._producers = dict(producers)
        self._traffic_start_ns = traffic_start_ns
        self._traffic_stop_ns = traffic_stop_ns

    def install(self, start_ns: int, end_ns: int) -> None:
        """Precompute the churn schedule and arm every workload timer.

        :param start_ns / end_ns: the default churn window (the measured
            part of the run); the spec's ``start_s``/``end_s`` override it.
        """
        sim = self.net.sim
        churn = self.spec.churn
        if churn is not None:
            window_start = s_to_ns(churn.start_s) if churn.start_s > 0 else start_ns
            window_end = s_to_ns(churn.end_s) if churn.end_s > 0 else end_ns
            self.schedule = build_churn_schedule(
                churn, self.seed, len(self.net.nodes), window_start, window_end
            )
            for event in self.schedule.events:
                if event.action == "depart":
                    sim.at(event.time_ns, self._depart, event.node_id, event.fail)
                else:
                    sim.at(event.time_ns, self._arrive, event.node_id)
        if self.spec.mobility is not None:
            self._install_mobility()
        if self.spec.rotation is not None:
            for node in self.net.nodes[1:]:
                rotator = MacRotator(
                    node,
                    self.spec.rotation,
                    self.seed,
                    is_departed=lambda i=node.node_id: i in self._departed,
                )
                rotator.start()
                self._rotators.append(rotator)

    def _install_mobility(self) -> None:
        geometry = self.net.medium.geometry
        if geometry is None:
            raise ValueError("mobility requires a geometry-equipped medium")
        xs: List[float] = []
        ys: List[float] = []
        for node in self.net.nodes:
            x, y = geometry.position_of(node.controller.addr)
            xs.append(x)
            ys.append(y)
        bounds = (min(xs), min(ys), max(xs), max(ys))
        assert self.spec.mobility is not None
        for node in self.net.nodes[1:]:  # the root anchors the deployment
            mobile = WaypointMobility(
                node, geometry, self.spec.mobility, self.seed, bounds
            )
            mobile.start()
            self._mobiles.append(mobile)

    def _chain_parent_change(self, node_id: int, rpl) -> None:
        prev = rpl.on_parent_change

        def chained(parent, node_id=node_id, prev=prev) -> None:
            if prev is not None:
                prev(parent)
            if parent is not None:
                self._note_reattach(node_id)

        rpl.on_parent_change = chained

    # -- lifecycle events --------------------------------------------------

    def _depart(self, node_id: int, fail: bool) -> None:
        if node_id in self._departed:
            return
        node = self.net.nodes[node_id]
        dynconn = self.net.dynconns[node_id]
        rpl = self.net.rpls[node_id]
        controller = node.controller
        if fail:
            # Radio dies first: connections are left dangling mid-stream,
            # peers find out via supervision timeout.
            controller.scheduler.fail_stop()
            dynconn.stop()
            rpl.stop()
        else:
            dynconn.stop()
            rpl.stop()
            for conn in list(controller.connections):
                if conn.open:
                    conn.close(DisconnectReason.LOCAL_CLOSE)
            controller.scheduler.fail_stop()
        producer = self._producers.get(node_id)
        if producer is not None:
            producer.stop()
        self._departed.add(node_id)
        self._arrived_at.pop(node_id, None)
        self.departures += 1
        if fail:
            self.failstops += 1
        if TRACE.enabled:
            TRACE.emit(
                self.net.sim.now, "workload", "depart",
                node=controller.name, id=node_id, fail=fail,
            )
        if METRICS.enabled:
            METRICS.inc(controller.name, "workload.departures")

    def _arrive(self, node_id: int) -> None:
        if node_id not in self._departed:
            return
        now = self.net.sim.now
        node = self.net.nodes[node_id]
        controller = node.controller
        controller.scheduler.resume(now)
        rpl = self.net.rpls[node_id]
        rpl.reset()
        self._departed.discard(node_id)
        self.net.dynconns[node_id].start()
        self._restart_producer(node_id, now)
        self._arrived_at[node_id] = now
        self.arrivals += 1
        if TRACE.enabled:
            TRACE.emit(
                now, "workload", "arrive", node=controller.name, id=node_id,
            )
        if METRICS.enabled:
            METRICS.inc(controller.name, "workload.arrivals")

    def _restart_producer(self, node_id: int, now: int) -> None:
        producer = self._producers.get(node_id)
        if producer is None or self._traffic_stop_ns is None:
            return
        assert self._traffic_start_ns is not None
        if now >= self._traffic_stop_ns:
            return  # measured window over; stay quiet
        delay = max(0, self._traffic_start_ns - now)
        producer.start(delay_ns=delay)

    def _note_reattach(self, node_id: int) -> None:
        arrived = self._arrived_at.pop(node_id, None)
        if arrived is None:
            return
        latency_ns = self.net.sim.now - arrived
        self.reattach_latencies.append((node_id, latency_ns))
        name = self.net.nodes[node_id].controller.name
        if TRACE.enabled:
            TRACE.emit(
                self.net.sim.now, "workload", "reattach",
                node=name, id=node_id, latency_ns=latency_ns,
            )
        if METRICS.enabled:
            METRICS.observe(
                name, "workload.reattach_s",
                ns_to_s(latency_ns), REATTACH_BUCKETS_S,
            )

    # -- results -----------------------------------------------------------

    def departed_now(self) -> set:
        """Node ids currently departed."""
        return set(self._departed)

    def reconverged(self) -> bool:
        """Whether every *present* node is joined to the DODAG."""
        return all(
            rpl.joined
            for node_id, rpl in enumerate(self.net.rpls)
            if node_id not in self._departed
        )

    def summary(self) -> dict:
        """The picklable workload payload attached to experiment results."""
        total_moves = sum(m.moves for m in self._mobiles)
        total_rotations = sum(
            node.controller.rotations for node in self.net.nodes
        )
        orphan_timeouts = sum(d.orphan_timeouts for d in self.net.dynconns)
        return {
            "schedule_digest": self.schedule.digest(),
            "departures": self.departures,
            "arrivals": self.arrivals,
            "failstops": self.failstops,
            "max_departed": self.schedule.max_departed(),
            "moves": total_moves,
            "rotations": total_rotations,
            "orphan_timeouts": orphan_timeouts,
            "reattach_latencies_ns": [
                [node_id, latency] for node_id, latency in self.reattach_latencies
            ],
            "reconverged": self.reconverged(),
            "departed_at_end": sorted(self._departed),
        }
