"""Random-waypoint mobility over the run's geometry.

Each mobile node repeats: pick a waypoint uniformly inside the deployment
bounding box, draw a leg speed, walk there in straight-line steps of
``step_s``, pause, repeat.  Every step calls
:meth:`repro.phy.spatial.Geometry.move`, which dirties the uniform-grid
spatial index -- the next advertising delivery rebuilds it, which is
exactly the live-invalidation path the differential suite locks the grid
index against the all-pairs reference on.

Determinism: all draws come from the per-node ``workload-mobility-{i}``
stream (:func:`repro.sim.rng.subseed`); node 0 (the root) never moves; a
*departed* node keeps moving (its radio died, not its legs), so churn
on/off never perturbs mobility draws and vice versa.
"""

from __future__ import annotations

import math
import random
from typing import TYPE_CHECKING, Optional, Tuple

from repro.obs.registry import METRICS
from repro.sim.rng import subseed
from repro.sim.units import s_to_ns
from repro.trace.tracer import TRACE
from repro.workload.spec import MobilitySpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import Node
    from repro.phy.spatial import Geometry


class WaypointMobility:
    """The motion process of one node."""

    def __init__(
        self,
        node: "Node",
        geometry: "Geometry",
        spec: MobilitySpec,
        seed: int,
        bounds: Tuple[float, float, float, float],
    ) -> None:
        self.node = node
        self.geometry = geometry
        self.spec = spec
        self.bounds = bounds  # (min_x, min_y, max_x, max_y)
        self.rng = random.Random(subseed(seed, "workload-mobility", node.node_id))
        self.moves = 0
        self._target: Optional[Tuple[float, float]] = None
        self._speed = 0.0
        self._running = False

    def start(self) -> None:
        """Begin moving (first step one cadence from now)."""
        self._running = True
        self.node.sim.after(s_to_ns(self.spec.step_s), self._step)

    def stop(self) -> None:
        """Halt motion (the pending step dies on the flag)."""
        self._running = False

    def _pick_waypoint(self) -> None:
        min_x, min_y, max_x, max_y = self.bounds
        self._target = (
            self.rng.uniform(min_x, max_x),
            self.rng.uniform(min_y, max_y),
        )
        self._speed = self.rng.uniform(
            self.spec.speed_min_mps, self.spec.speed_max_mps
        )

    def _step(self) -> None:
        if not self._running:
            return
        geometry = self.geometry
        addr = self.node.controller.addr  # current on-air key of the position
        x, y = geometry.position_of(addr)
        if self._target is None:
            self._pick_waypoint()
        assert self._target is not None
        tx, ty = self._target
        dx, dy = tx - x, ty - y
        dist = math.hypot(dx, dy)
        stride = self._speed * self.spec.step_s
        if dist <= stride or dist == 0.0:
            nx, ny = tx, ty
            self._target = None  # arrived: next leg after the pause
            delay = s_to_ns(self.spec.pause_s + self.spec.step_s)
        else:
            nx, ny = x + dx / dist * stride, y + dy / dist * stride
            delay = s_to_ns(self.spec.step_s)
        geometry.move(addr, nx, ny)
        self.node.controller.medium.note_move(addr)
        self.moves += 1
        if TRACE.enabled:
            TRACE.emit(
                self.node.sim.now, "workload", "move",
                node=self.node.controller.name, x=round(nx, 6), y=round(ny, 6),
            )
        if METRICS.enabled:
            METRICS.inc(self.node.controller.name, "workload.moves")
        self.node.sim.after(delay, self._step)
