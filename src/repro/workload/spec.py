"""Workload specifications (the ``churn:`` / ``mobility:`` /
``mac_rotation:`` config blocks).

Each spec parses from the plain dict an
:class:`~repro.exp.config.ExperimentConfig` carries (YAML-round-trippable,
canonicalized into the cache key), validates eagerly, and is otherwise an
immutable bag of numbers.  An empty dict means "axis disabled".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple


def _require_number(block: str, key: str, value: Any, minimum: float = 0.0) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"{block}.{key} must be a number, got {value!r}")
    if value < minimum:
        raise ValueError(f"{block}.{key} must be >= {minimum}, got {value!r}")
    return float(value)


def _reject_unknown(block: str, data: Dict[str, Any], known: Tuple[str, ...]) -> None:
    unknown = sorted(set(data) - set(known))
    if unknown:
        raise ValueError(f"unknown {block} keys: {', '.join(unknown)}")


@dataclass(frozen=True)
class ChurnSpec:
    """Node arrival/departure dynamics.

    :param mode: ``"poisson"`` -- per-node alternating exponential up/down
        periods -- or ``"trace"`` -- replay the explicit ``events`` list.
    :param mean_up_s: mean up-time between departures (poisson mode).
    :param mean_down_s: mean down-time before the node returns.
    :param fail_fraction: probability a departure is a hard fail-stop
        (radio silent, peers left to the supervision timeout) instead of a
        graceful disconnect.
    :param max_departed_fraction: generation-time cap on the fraction of
        churnable nodes simultaneously departed; departure intervals that
        would exceed it are dropped (see
        :func:`repro.workload.schedule.build_churn_schedule`).
    :param start_s / end_s: churn window in absolute simulated seconds;
        ``0`` defers to the run's measured window (warmup start / traffic
        stop).
    :param events: trace mode only -- ``{"t_s", "node", "action", "fail"}``
        dicts (``action`` in ``depart``/``arrive``; ``fail`` optional).
    """

    mode: str = "poisson"
    mean_up_s: float = 30.0
    mean_down_s: float = 10.0
    fail_fraction: float = 0.5
    max_departed_fraction: float = 0.3
    start_s: float = 0.0
    end_s: float = 0.0
    events: Tuple[Tuple[float, int, str, bool], ...] = ()

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, Any]]) -> Optional["ChurnSpec"]:
        """Parse the ``churn:`` block; ``None``/empty disables churn."""
        if not data:
            return None
        _reject_unknown(
            "churn",
            data,
            (
                "mode",
                "mean_up_s",
                "mean_down_s",
                "fail_fraction",
                "max_departed_fraction",
                "start_s",
                "end_s",
                "events",
            ),
        )
        mode = str(data.get("mode", "poisson"))
        if mode not in ("poisson", "trace"):
            raise ValueError(f"churn.mode must be 'poisson' or 'trace', got {mode!r}")
        events: List[Tuple[float, int, str, bool]] = []
        for i, entry in enumerate(data.get("events") or ()):
            if not isinstance(entry, dict):
                raise ValueError(f"churn.events[{i}] must be a mapping")
            _reject_unknown(f"churn.events[{i}]", entry, ("t_s", "node", "action", "fail"))
            t_s = _require_number("churn.events", "t_s", entry.get("t_s"))
            node = entry.get("node")
            if isinstance(node, bool) or not isinstance(node, int) or node < 0:
                raise ValueError(f"churn.events[{i}].node must be an int >= 0")
            action = str(entry.get("action", ""))
            if action not in ("depart", "arrive"):
                raise ValueError(
                    f"churn.events[{i}].action must be 'depart' or 'arrive'"
                )
            events.append((t_s, node, action, bool(entry.get("fail", False))))
        if mode == "trace" and not events:
            raise ValueError("churn.mode='trace' requires a non-empty events list")
        if mode == "poisson" and events:
            raise ValueError("churn.events is only valid with mode='trace'")
        spec = cls(
            mode=mode,
            mean_up_s=_require_number(
                "churn", "mean_up_s", data.get("mean_up_s", 30.0), minimum=1e-9
            ),
            mean_down_s=_require_number(
                "churn", "mean_down_s", data.get("mean_down_s", 10.0), minimum=1e-9
            ),
            fail_fraction=_require_number(
                "churn", "fail_fraction", data.get("fail_fraction", 0.5)
            ),
            max_departed_fraction=_require_number(
                "churn",
                "max_departed_fraction",
                data.get("max_departed_fraction", 0.3),
            ),
            start_s=_require_number("churn", "start_s", data.get("start_s", 0.0)),
            end_s=_require_number("churn", "end_s", data.get("end_s", 0.0)),
            events=tuple(events),
        )
        if spec.fail_fraction > 1.0:
            raise ValueError("churn.fail_fraction must be <= 1")
        if spec.max_departed_fraction > 1.0:
            raise ValueError("churn.max_departed_fraction must be <= 1")
        return spec


@dataclass(frozen=True)
class MobilitySpec:
    """Random-waypoint motion over the run's geometry.

    :param speed_min_mps / speed_max_mps: per-leg speed draw bounds.
    :param step_s: position-update cadence (each step calls
        :meth:`repro.phy.spatial.Geometry.move`, invalidating the index).
    :param pause_s: dwell time at a reached waypoint before the next leg.
    """

    model: str = "waypoint"
    speed_min_mps: float = 0.5
    speed_max_mps: float = 1.5
    step_s: float = 1.0
    pause_s: float = 2.0

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, Any]]) -> Optional["MobilitySpec"]:
        """Parse the ``mobility:`` block; ``None``/empty disables motion."""
        if not data:
            return None
        _reject_unknown(
            "mobility",
            data,
            ("model", "speed_min_mps", "speed_max_mps", "step_s", "pause_s"),
        )
        model = str(data.get("model", "waypoint"))
        if model != "waypoint":
            raise ValueError(f"mobility.model must be 'waypoint', got {model!r}")
        spec = cls(
            model=model,
            speed_min_mps=_require_number(
                "mobility", "speed_min_mps", data.get("speed_min_mps", 0.5)
            ),
            speed_max_mps=_require_number(
                "mobility", "speed_max_mps", data.get("speed_max_mps", 1.5), 1e-9
            ),
            step_s=_require_number("mobility", "step_s", data.get("step_s", 1.0), 1e-3),
            pause_s=_require_number("mobility", "pause_s", data.get("pause_s", 2.0)),
        )
        if spec.speed_min_mps > spec.speed_max_mps:
            raise ValueError("mobility.speed_min_mps must be <= speed_max_mps")
        return spec


@dataclass(frozen=True)
class MacRotationSpec:
    """Periodic resolvable-private-address rotation (see :mod:`repro.ble.rpa`).

    :param period_s: nominal rotation period (the BT spec suggests 15 min;
        experiments compress it to exercise re-resolution).
    :param jitter_s: uniform jitter half-width added per rotation.
    """

    period_s: float = 60.0
    jitter_s: float = 5.0

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, Any]]) -> Optional["MacRotationSpec"]:
        """Parse the ``mac_rotation:`` block; ``None``/empty disables it."""
        if not data:
            return None
        _reject_unknown("mac_rotation", data, ("period_s", "jitter_s"))
        spec = cls(
            period_s=_require_number(
                "mac_rotation", "period_s", data.get("period_s", 60.0), 1e-3
            ),
            jitter_s=_require_number(
                "mac_rotation", "jitter_s", data.get("jitter_s", 5.0)
            ),
        )
        if spec.jitter_s >= spec.period_s:
            raise ValueError("mac_rotation.jitter_s must be < period_s")
        return spec


@dataclass(frozen=True)
class WorkloadSpec:
    """The three optional workload axes of one experiment."""

    churn: Optional[ChurnSpec] = None
    mobility: Optional[MobilitySpec] = None
    rotation: Optional[MacRotationSpec] = None

    @classmethod
    def from_config(cls, config: Any) -> Optional["WorkloadSpec"]:
        """Build from an :class:`~repro.exp.config.ExperimentConfig`.

        Returns ``None`` when every axis is disabled, so callers can skip
        driver construction entirely (and stay byte-identical to runs that
        predate the workload layer).
        """
        spec = cls(
            churn=ChurnSpec.from_dict(getattr(config, "churn", None)),
            mobility=MobilitySpec.from_dict(getattr(config, "mobility", None)),
            rotation=MacRotationSpec.from_dict(getattr(config, "mac_rotation", None)),
        )
        if spec.churn is None and spec.mobility is None and spec.rotation is None:
            return None
        return spec


# Re-exported for config validation without import cycles.
WORKLOAD_BLOCKS = ("churn", "mobility", "mac_rotation")
