"""Scenario construction: networks, topologies, traffic (paper §4).

* :mod:`repro.testbed.topology` -- builds multi-node BLE networks, wires
  statconn links, and installs the static routes of the paper's tree and
  line topologies (Figure 6);
* :mod:`repro.testbed.traffic` -- the producer/consumer CoAP workload
  (39-byte payloads, jittered periodic requests, §4.3);
* :mod:`repro.testbed.iotlab` -- presets matching the FIT IoT-LAB fleet:
  15 nodes, measured clock-drift spread, the permanently jammed channel 22.
"""

from repro.testbed.topology import (
    BleNetwork,
    tree_topology_edges,
    line_topology_edges,
    star_topology_edges,
)
from repro.testbed.traffic import Producer, Consumer, TrafficConfig
from repro.testbed.iotlab import iotlab_network, IOTLAB_NODE_COUNT

__all__ = [
    "BleNetwork",
    "tree_topology_edges",
    "line_topology_edges",
    "star_topology_edges",
    "Producer",
    "Consumer",
    "TrafficConfig",
    "iotlab_network",
    "IOTLAB_NODE_COUNT",
]
