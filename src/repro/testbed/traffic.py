"""The producer/consumer CoAP workload (paper §4.3).

Fourteen producers each send a periodic non-confirmable CoAP GET request
with a 39-byte payload towards the consumer; the consumer acknowledges every
request.  Jitter is added to the producer interval so requests do not
synchronise.  The two headline metrics fall out here:

* **CoAP PDR** -- acknowledgements received / requests sent,
* **CoAP RTT** -- request handed to the stack until the ACK returns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.coap import CoapEndpoint
from repro.sim.units import MSEC, SEC
from repro.core.node import Node
from repro.sixlowpan.ipv6 import Ipv6Address

#: The resource path; 5 segments-bytes chosen so the CoAP request framing is
#: 13 bytes and the IP packet lands at exactly 100 bytes (§4.3).
RESOURCE_PATH = "sense"
#: The paper's CoAP payload size.
DEFAULT_PAYLOAD_LEN = 39


@dataclass
class TrafficConfig:
    """Producer traffic parameters.

    :param interval_ns: nominal producer interval (paper default 1 s).
    :param jitter_ns: uniform jitter half-width (paper default ±0.5 s).
    :param payload_len: CoAP payload bytes (paper: 39).
    :param confirmable: send CON instead of NON (off in the paper's runs).
    """

    interval_ns: int = 1 * SEC
    jitter_ns: int = 500 * MSEC
    payload_len: int = DEFAULT_PAYLOAD_LEN
    confirmable: bool = False


class Producer:
    """A periodic CoAP requester on one node.

    :param node: the producing node.
    :param consumer_addr: where requests go.
    :param config: timing parameters.
    :param rng: jitter stream.
    """

    def __init__(
        self,
        node: Node,
        consumer_addr: Ipv6Address,
        config: Optional[TrafficConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.node = node
        self.consumer_addr = consumer_addr
        self.config = config or TrafficConfig()
        self.rng = rng or random.Random(node.node_id ^ 0x7A11)
        self.endpoint = CoapEndpoint(node)
        self.running = False
        #: Incremented on every start(); pending ticks from an older
        #: start/stop generation see a stale epoch and die, so a node that
        #: departs and returns (churn) never runs two tick chains at once.
        self._epoch = 0
        # Metrics.
        self.requests_sent = 0
        self.acks_received = 0
        self.send_failures = 0
        #: (send_time_ns, rtt_ns) per acknowledged request.
        self.rtt_samples: List[tuple[int, int]] = []
        #: send_time_ns of every request (for time-binned PDR series).
        self.request_times: List[int] = []
        self.ack_times: List[int] = []

    @property
    def cluster_addr(self) -> int:
        """Dispatch-cluster owner (ticks run on the producing node)."""
        return self.node.node_id

    def start(self, delay_ns: int = 0) -> None:
        """Begin producing after ``delay_ns`` (plus one jittered interval).

        Restart-safe: a second start() supersedes any still-pending tick of
        the previous generation instead of doubling the tick chain.
        """
        self.running = True
        self._epoch += 1
        epoch = self._epoch
        self.node.sim.after(delay_ns + self._next_gap(), self._tick, epoch)

    def stop(self) -> None:
        """Stop producing (in-flight requests still complete)."""
        self.running = False

    def _next_gap(self) -> int:
        jitter = self.config.jitter_ns
        gap = self.config.interval_ns + (
            self.rng.randint(-jitter, jitter) if jitter else 0
        )
        return max(gap, 1 * MSEC)

    def _tick(self, epoch: int) -> None:
        if not self.running or epoch != self._epoch:
            return
        sent_at = self.node.sim.now
        payload = bytes(self.config.payload_len)
        ok = self.endpoint.request(
            self.consumer_addr,
            RESOURCE_PATH,
            payload,
            confirmable=self.config.confirmable,
            on_response=lambda msg, rtt, t=sent_at: self._on_ack(t, rtt),
        )
        self.requests_sent += 1
        self.request_times.append(sent_at)
        if not ok:
            self.send_failures += 1
        self.node.sim.after(self._next_gap(), self._tick, epoch)

    def _on_ack(self, sent_at: int, rtt_ns: int) -> None:
        self.acks_received += 1
        self.rtt_samples.append((sent_at, rtt_ns))
        self.ack_times.append(self.node.sim.now)

    @property
    def pdr(self) -> float:
        """Acknowledgements received / requests sent (1.0 before traffic)."""
        if self.requests_sent == 0:
            return 1.0
        return self.acks_received / self.requests_sent


class Consumer:
    """The acknowledging sink on the consumer node."""

    def __init__(self, node: Node) -> None:
        self.node = node
        self.endpoint = CoapEndpoint(node)
        self.requests_by_producer: dict[int, int] = {}
        self.endpoint.add_resource(RESOURCE_PATH, self._serve)

    def _serve(self, payload: bytes, src: Ipv6Address) -> Optional[bytes]:
        producer = src.node_id()
        if producer is not None:
            self.requests_by_producer[producer] = (
                self.requests_by_producer.get(producer, 0) + 1
            )
        return None  # empty ACK, exactly the paper's consumer

    @property
    def total_requests(self) -> int:
        """Requests that reached the consumer."""
        return sum(self.requests_by_producer.values())
