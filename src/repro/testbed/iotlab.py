"""FIT IoT-LAB presets (paper §4.1-§4.2).

The paper's BLE fleet: 15 nRF52 nodes (ten nrf52dk + five nrf52840dk) in one
room at the Saclay site, all in mutual radio range, with BLE data channel 22
permanently jammed by an external signal.  The measured relative clock drift
between boards peaked around 6 us/s, so per-node errors are drawn from
±3 ppm by default.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.phy.medium import InterferenceModel
from repro.testbed.topology import BleNetwork

#: The paper's BLE fleet size.
IOTLAB_NODE_COUNT = 15
#: The data channel found permanently jammed in the testbed (§4.2).
JAMMED_CHANNEL = 22


def iotlab_interference(
    base_ber: float = 1.0e-5, exclude_jammed: bool = True
) -> InterferenceModel:
    """The testbed's loss model.

    With ``exclude_jammed`` the nodes' channel maps already avoid channel 22
    (the paper's static exclusion), so the jamming never bites; pass False
    to study what happens without the exclusion.
    """
    return InterferenceModel(
        base_ber=base_ber,
        jammed_channels=(JAMMED_CHANNEL,),
    )


def iotlab_network(
    seed: int = 1,
    n_nodes: int = IOTLAB_NODE_COUNT,
    ppms: Optional[Sequence[float]] = None,
    exclude_jammed_channel: bool = True,
    **kwargs,
) -> BleNetwork:
    """A :class:`BleNetwork` configured like the paper's testbed.

    Channel 22 is jammed on the medium; by default every node's channel map
    excludes it (as the paper configures), so the jamming is dodged --
    disable ``exclude_jammed_channel`` to expose it.

    Additional keyword arguments pass through to :class:`BleNetwork`.
    """
    from repro.ble.chanmap import ChannelMap
    from repro.ble.config import BleConfig

    interference = kwargs.pop("interference", None) or iotlab_interference()

    factory = kwargs.pop("ble_config_factory", None)

    def ble_config_factory(node_id: int) -> BleConfig:
        config = factory(node_id) if factory else BleConfig()
        if exclude_jammed_channel:
            config.chan_map = ChannelMap.excluding([JAMMED_CHANNEL])
        return config

    return BleNetwork(
        n_nodes=n_nodes,
        seed=seed,
        ppms=ppms,
        ble_config_factory=ble_config_factory,
        interference=interference,
        **kwargs,
    )
