"""Self-forming network construction (dynconn + RPL).

The dynamic counterpart of :class:`repro.testbed.topology.BleNetwork`: no
edge list, no static routes -- node 0 roots a DODAG, everyone else starts
as an orphan, and the mesh grows by BLE discovery + RPL joining (the
paper's §9 future-work scenario).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.ble.config import BleConfig
from repro.core.dynconn import Dynconn, DynconnConfig
from repro.core.intervals import RandomWindowIntervalPolicy
from repro.core.node import Node
from repro.phy.medium import BleMedium, InterferenceModel
from repro.phy.spatial import Geometry
from repro.rpl import RplConfig, RplInstance
from repro.sim import RngRegistry, Simulator
from repro.sim.units import MSEC


class DynamicBleNetwork:
    """A fleet that forms its own topology.

    :param n_nodes: fleet size (node 0 is the DODAG root).
    :param seed: master seed.
    :param ppms: per-node clock errors (default: uniform ±3 ppm).
    :param max_children: adoption capacity per router.
    :param interval_window_ms: the randomized connection-interval window
        (the §6.3 mitigation is the default in dynamic meshes).
    :param rpl_config: RPL constants.
    :param geometry: node positions + radio range; with one, discovery is
        range-gated and the mesh self-forms along the radio graph.
    """

    def __init__(
        self,
        n_nodes: int,
        seed: int = 1,
        ppms: Optional[Sequence[float]] = None,
        ble_config_factory=None,
        interference: Optional[InterferenceModel] = None,
        max_children: int = 3,
        interval_window_ms: tuple = (65, 85),
        rpl_config: Optional[RplConfig] = None,
        pktbuf_capacity: int = 6144,
        geometry: Optional[Geometry] = None,
    ) -> None:
        self.sim = Simulator()
        self.rngs = RngRegistry(seed)
        self.medium = BleMedium(
            self.sim, self.rngs.stream("medium"), interference, geometry
        )
        if ppms is None:
            drift_rng = self.rngs.stream("clock-drift")
            ppms = [drift_rng.uniform(-3.0, 3.0) for _ in range(n_nodes)]
        self.nodes: List[Node] = []
        self.rpls: List[RplInstance] = []
        self.dynconns: List[Dynconn] = []
        lo, hi = interval_window_ms
        for node_id in range(n_nodes):
            ble_config = (
                ble_config_factory(node_id) if ble_config_factory else BleConfig()
            )
            node = Node(
                self.sim,
                self.medium,
                node_id,
                ppm=ppms[node_id],
                ble_config=ble_config,
                pktbuf_capacity=pktbuf_capacity,
                rng=self.rngs.stream(f"node{node_id}"),
            )
            rpl = RplInstance(node, is_root=(node_id == 0), config=rpl_config)
            dynconn = Dynconn(
                node,
                rpl,
                DynconnConfig(
                    interval_policy=RandomWindowIntervalPolicy(
                        lo * MSEC, hi * MSEC,
                        self.rngs.stream(f"intervals-{node_id}"),
                    ),
                    max_children=max_children,
                ),
            )
            self.nodes.append(node)
            self.rpls.append(rpl)
            self.dynconns.append(dynconn)

    def start(self) -> None:
        """Begin topology formation on every node."""
        for dynconn in self.dynconns:
            dynconn.start()

    def run(self, until_ns: int) -> None:
        """Advance the simulation."""
        self.sim.run(until=until_ns)

    def joined_count(self) -> int:
        """Nodes currently part of the DODAG."""
        return sum(1 for rpl in self.rpls if rpl.joined)

    def fully_joined(self) -> bool:
        """Whether every node is in the DODAG."""
        return self.joined_count() == len(self.nodes)

    def formation_depths(self) -> List[Optional[int]]:
        """Per-node DODAG depth (None while detached)."""
        return [rpl.hops_to_root() for rpl in self.rpls]
