"""Network construction and the paper's topologies (Figure 6).

The paper deploys two statically configured layouts on 15 nodes:

* a **tree** rooted at the consumer with a maximum hop count of 3 and an
  average producer hop count of 2.14 (the root holds three connections in
  the subordinate role, cf. Fig. 12);
* a **line** of 15 nodes (14 hops end-to-end, average producer distance
  7.5 hops).

Link roles follow statconn: for every edge the node *closer to the
consumer* is the subordinate (it advertises) and the child initiates as
coordinator.  This reproduces the property the paper's Fig. 12 relies on:
the consumer maintains all of its connections in the subordinate role.

Routes are installed statically (§4.3): every node's default route points
at its parent, and each node holds host routes for all nodes in its own
subtree so responses travel back down.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.ble.config import BleConfig
from repro.ble.conn import Role
from repro.core.node import Node
from repro.core.statconn import StatconnConfig
from repro.l2cap import CocConfig
from repro.phy.medium import BleMedium, InterferenceModel
from repro.phy.spatial import Geometry
from repro.sim import RngRegistry, Simulator
from repro.sixlowpan.ipv6 import Ipv6Address

#: (parent, child) edges of the paper-like tree; node 0 is the consumer.
#: Hop counts: 3 producers at 1 hop, 6 at 2, 5 at 3 -> mean 30/14 = 2.14,
#: matching §5.1, with the root holding 3 subordinate-role connections.
_TREE_EDGES: Tuple[Tuple[int, int], ...] = (
    (0, 1),
    (0, 2),
    (0, 3),
    (1, 4),
    (1, 5),
    (2, 6),
    (2, 7),
    (3, 8),
    (3, 9),
    (4, 10),
    (4, 11),
    (5, 12),
    (6, 13),
    (7, 14),
)


def tree_topology_edges(n_nodes: int = 15) -> List[Tuple[int, int]]:
    """(parent, child) edges of the paper-like tree (consumer = node 0)."""
    if n_nodes != 15:
        raise ValueError("the paper tree is defined for exactly 15 nodes")
    return list(_TREE_EDGES)


def line_topology_edges(n_nodes: int = 15) -> List[Tuple[int, int]]:
    """(parent, child) edges of a line; consumer = node 0 at one end."""
    if n_nodes < 2:
        raise ValueError("a line needs at least 2 nodes")
    return [(i, i + 1) for i in range(n_nodes - 1)]


def star_topology_edges(n_nodes: int = 15) -> List[Tuple[int, int]]:
    """(parent, child) edges of an RFC 7668-style star around node 0."""
    if n_nodes < 2:
        raise ValueError("a star needs at least 2 nodes")
    return [(0, i) for i in range(1, n_nodes)]


class BleNetwork:
    """A simulator + medium + a set of full-stack nodes.

    :param n_nodes: fleet size.
    :param seed: master seed; every stochastic stream derives from it.
    :param ppms: per-node sleep-clock errors; defaults to a uniform draw in
        ±3 ppm (the paper measured at most ~6 us/s relative drift between
        boards, §6.2).
    :param ble_config_factory: per-node controller configuration.
    :param statconn_config_factory: per-node statconn configuration.
    :param interference: medium loss model (e.g. the jammed channel 22).
    :param pktbuf_capacity: GNRC packet buffer size (paper: 6144).
    :param geometry: node positions + radio range for the spatial medium
        (``None`` keeps the paper's all-in-mutual-range plane).
    """

    def __init__(
        self,
        n_nodes: int,
        seed: int = 1,
        ppms: Optional[Sequence[float]] = None,
        ble_config_factory=None,
        statconn_config_factory=None,
        interference: Optional[InterferenceModel] = None,
        pktbuf_capacity: int = 6144,
        coc_config: Optional[CocConfig] = None,
        geometry: Optional[Geometry] = None,
    ) -> None:
        self.sim = Simulator()
        self.rngs = RngRegistry(seed)
        self.medium = BleMedium(
            self.sim, self.rngs.stream("medium"), interference, geometry
        )
        if ppms is None:
            drift_rng = self.rngs.stream("clock-drift")
            ppms = [drift_rng.uniform(-3.0, 3.0) for _ in range(n_nodes)]
        if len(ppms) != n_nodes:
            raise ValueError("one ppm value per node required")
        self.nodes: List[Node] = []
        for node_id in range(n_nodes):
            ble_config = (
                ble_config_factory(node_id) if ble_config_factory else BleConfig()
            )
            statconn_config = (
                statconn_config_factory(node_id)
                if statconn_config_factory
                else StatconnConfig()
            )
            self.nodes.append(
                Node(
                    self.sim,
                    self.medium,
                    node_id,
                    ppm=ppms[node_id],
                    ble_config=ble_config,
                    statconn_config=statconn_config,
                    pktbuf_capacity=pktbuf_capacity,
                    coc_config=coc_config,
                    rng=self.rngs.stream(f"node{node_id}"),
                )
            )
        self._parent_of: Dict[int, int] = {}

    # -- wiring ----------------------------------------------------------------

    def apply_edges(
        self, edges: Iterable[Tuple[int, int]], install_routes: bool = True
    ) -> None:
        """Configure statconn links and static routes for (parent, child)
        edges; parents advertise (subordinate), children initiate
        (coordinator).

        :param install_routes: set False to leave the FIBs empty (e.g. when
            RPL provides the routes, see :mod:`repro.rpl`).
        """
        edges = list(edges)
        for parent, child in edges:
            self._parent_of[child] = parent
            self.nodes[parent].statconn.add_link(child, Role.SUBORDINATE)
            self.nodes[child].statconn.add_link(parent, Role.COORDINATOR)
        if install_routes:
            self._install_routes(edges)

    def _children_of(self, edges: Sequence[Tuple[int, int]]) -> Dict[int, List[int]]:
        children: Dict[int, List[int]] = {}
        for parent, child in edges:
            children.setdefault(parent, []).append(child)
        return children

    def _install_routes(self, edges: Sequence[Tuple[int, int]]) -> None:
        children = self._children_of(edges)

        def subtree(node_id: int) -> List[int]:
            collected = []
            stack = list(children.get(node_id, []))
            while stack:
                n = stack.pop()
                collected.append(n)
                stack.extend(children.get(n, []))
            return collected

        for node in self.nodes:
            parent = self._parent_of.get(node.node_id)
            if parent is not None:
                node.ip.fib.set_default_route(Ipv6Address.mesh_local(parent))
            # downstream host routes: every descendant via the child heading
            # its branch
            for child in children.get(node.node_id, []):
                child_addr = Ipv6Address.mesh_local(child)
                for descendant in subtree(child):
                    node.ip.fib.add_host_route(
                        Ipv6Address.mesh_local(descendant), child_addr
                    )

    # -- convenience -------------------------------------------------------------

    def parent_of(self, node_id: int) -> Optional[int]:
        """The configured parent of ``node_id`` (None for the root)."""
        return self._parent_of.get(node_id)

    def hop_count(self, node_id: int, root: int = 0) -> int:
        """Configured hops from ``node_id`` up to ``root``."""
        hops = 0
        current = node_id
        while current != root:
            nxt = self._parent_of.get(current)
            if nxt is None:
                raise ValueError(f"node {node_id} is not connected to {root}")
            current = nxt
            hops += 1
        return hops

    def all_links_up(self) -> bool:
        """Whether every configured statconn link is established."""
        return all(node.statconn.all_links_up() for node in self.nodes)

    def run(self, until_ns: int) -> None:
        """Advance the simulation to ``until_ns`` (absolute true time)."""
        self.sim.run(until=until_ns)

    def total_connection_losses(self) -> int:
        """Supervision-timeout losses across the fleet (each loss is seen by
        both ends; statconn records it on both, so divide by two)."""
        return sum(len(node.statconn.losses) for node in self.nodes) // 2
