"""Byte-budget buffer pool.

NimBLE allocates link-layer and L2CAP buffers from a shared *msys* pool; the
paper configures it to 6600 bytes (§4.2).  The GNRC packet buffer (6144
bytes) is modelled by the same class in :mod:`repro.net.pktbuf`'s wrapper.
When the pool is exhausted, allocation fails and the caller must drop or
stall -- the mechanism behind the load-induced losses of §5.2.
"""

from __future__ import annotations


class BufferPool:
    """A counting allocator with a fixed byte budget.

    :param capacity: pool size in bytes.
    :param name: diagnostic label.
    """

    def __init__(self, capacity: int, name: str = "pool") -> None:
        if capacity <= 0:
            raise ValueError("pool capacity must be positive")
        self.capacity = capacity
        self.name = name
        self.used = 0
        #: Number of failed allocations (each one is a dropped packet
        #: somewhere up the stack).
        self.alloc_failures = 0
        #: High-water mark for diagnostics.
        self.peak_used = 0

    def try_alloc(self, nbytes: int) -> bool:
        """Reserve ``nbytes``; returns False (and counts a failure) if full."""
        if nbytes < 0:
            raise ValueError("negative allocation")
        if self.used + nbytes > self.capacity:
            self.alloc_failures += 1
            return False
        self.used += nbytes
        if self.used > self.peak_used:
            self.peak_used = self.used
        return True

    def free(self, nbytes: int) -> None:
        """Release ``nbytes`` back to the pool."""
        if nbytes < 0:
            raise ValueError("negative free")
        if nbytes > self.used:
            raise RuntimeError(
                f"{self.name}: freeing {nbytes} bytes but only {self.used} in use"
            )
        self.used -= nbytes

    @property
    def available(self) -> int:
        """Bytes currently allocatable."""
        return self.capacity - self.used
