"""BLE channel selection algorithms (BT 5.2 Vol 6 Part B §4.5.8).

Connections hop to a new data channel for every connection event (§2.2 of
the paper).  Two algorithms exist:

* **CSA#1** -- a simple modular hop: the unmapped channel advances by a
  per-connection *hop increment* (5..16) modulo 37 each event; unused
  channels are remapped onto the used-channel table.
* **CSA#2** -- a 16-bit permutation/multiply-add PRNG seeded by the access
  address, giving a pseudo-random sequence that decorrelates neighbouring
  events.

Both remap channels excluded by the channel map, which is how the paper's
nodes avoid the permanently jammed channel 22 (§4.2).
"""

from __future__ import annotations

from typing import Protocol

from repro.ble.chanmap import ChannelMap


class ChannelSelection(Protocol):
    """Common interface of the two channel selection algorithms."""

    def channel_for_event(self, event_counter: int, chan_map: ChannelMap) -> int:
        """Data channel index for connection event ``event_counter``.

        CSA#1 is stateful: callers must ask for consecutive event counters.
        CSA#2 is a pure function of the counter.
        """
        ...


class Csa1:
    """Channel Selection Algorithm #1.

    :param hop_increment: per-connection hop (5..16), set in CONNECT_IND.
    """

    def __init__(self, hop_increment: int) -> None:
        if not 5 <= hop_increment <= 16:
            raise ValueError(f"hop increment must be in 5..16, got {hop_increment}")
        self.hop_increment = hop_increment
        self._last_unmapped = 0
        self._last_counter: int | None = None

    def channel_for_event(self, event_counter: int, chan_map: ChannelMap) -> int:
        """Advance the hop state and return the event's data channel."""
        if self._last_counter is not None and event_counter <= self._last_counter:
            raise ValueError("CSA#1 event counters must be strictly increasing")
        steps = (
            1
            if self._last_counter is None
            else event_counter - self._last_counter
        )
        unmapped = self._last_unmapped
        for _ in range(steps):
            unmapped = (unmapped + self.hop_increment) % 37
        self._last_unmapped = unmapped
        self._last_counter = event_counter
        if chan_map.is_used(unmapped):
            return unmapped
        return chan_map.remap(unmapped % chan_map.num_used)


# PERM runs once per connection event; table-driven byte reversal keeps it
# off the profile.
_REVERSED_BYTE = tuple(int(f"{b:08b}"[::-1], 2) for b in range(256))


def _perm(value: int) -> int:
    """CSA#2 PERM operation: reverse the bit order within each byte."""
    return _REVERSED_BYTE[value & 0xFF] | (_REVERSED_BYTE[(value >> 8) & 0xFF] << 8)


def _mam(a: int, b: int) -> int:
    """CSA#2 MAM operation: multiply (by 17), add, mod 2^16."""
    return (a * 17 + b) & 0xFFFF


class Csa2:
    """Channel Selection Algorithm #2.

    :param access_address: the 32-bit connection access address; the channel
        identifier is ``(AA >> 16) XOR (AA & 0xFFFF)``.
    """

    def __init__(self, access_address: int) -> None:
        if not 0 <= access_address <= 0xFFFFFFFF:
            raise ValueError("access address must be a 32-bit value")
        self.access_address = access_address
        self.channel_identifier = ((access_address >> 16) ^ access_address) & 0xFFFF

    def _prn_e(self, event_counter: int) -> int:
        """Pseudo-random number for one event (spec Figure 4.44)."""
        cid = self.channel_identifier
        u = (event_counter ^ cid) & 0xFFFF
        for _ in range(3):
            u = _mam(_perm(u), cid)
        return (u ^ cid) & 0xFFFF

    def channel_for_event(self, event_counter: int, chan_map: ChannelMap) -> int:
        """Data channel index for ``event_counter`` (pure function)."""
        prn = self._prn_e(event_counter & 0xFFFF)
        unmapped = prn % 37
        if chan_map.is_used(unmapped):
            return unmapped
        remapping_index = (chan_map.num_used * prn) // 0x10000
        return chan_map.remap(remapping_index)
