"""BLE channel selection algorithms (BT 5.2 Vol 6 Part B §4.5.8).

Connections hop to a new data channel for every connection event (§2.2 of
the paper).  Two algorithms exist:

* **CSA#1** -- a simple modular hop: the unmapped channel advances by a
  per-connection *hop increment* (5..16) modulo 37 each event; unused
  channels are remapped onto the used-channel table.
* **CSA#2** -- a 16-bit permutation/multiply-add PRNG seeded by the access
  address, giving a pseudo-random sequence that decorrelates neighbouring
  events.

Both remap channels excluded by the channel map, which is how the paper's
nodes avoid the permanently jammed channel 22 (§4.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Tuple

from repro.ble.chanmap import ChannelMap

#: log2 of the memoized CSA#2 table block: channels are precomputed in
#: blocks of 256 consecutive event counters, built lazily on first access,
#: so a short run never pays for the full 65536-counter period.
CSA2_BLOCK_SHIFT = 8
CSA2_BLOCK_SIZE = 1 << CSA2_BLOCK_SHIFT
CSA2_BLOCK_MASK = CSA2_BLOCK_SIZE - 1
#: Number of blocks covering the 16-bit event-counter period.
CSA2_NUM_BLOCKS = 0x10000 >> CSA2_BLOCK_SHIFT


class ChannelSelection(Protocol):
    """Common interface of the two channel selection algorithms."""

    def channel_for_event(self, event_counter: int, chan_map: ChannelMap) -> int:
        """Data channel index for connection event ``event_counter``.

        CSA#1 is stateful: callers must ask for consecutive event counters.
        CSA#2 is a pure function of the counter.
        """
        ...


class Csa1:
    """Channel Selection Algorithm #1.

    :param hop_increment: per-connection hop (5..16), set in CONNECT_IND.
    """

    def __init__(self, hop_increment: int) -> None:
        if not 5 <= hop_increment <= 16:
            raise ValueError(f"hop increment must be in 5..16, got {hop_increment}")
        self.hop_increment = hop_increment
        self._last_unmapped = 0
        self._last_counter: int | None = None

    def channel_for_event(self, event_counter: int, chan_map: ChannelMap) -> int:
        """Advance the hop state and return the event's data channel."""
        if self._last_counter is not None and event_counter <= self._last_counter:
            raise ValueError("CSA#1 event counters must be strictly increasing")
        steps = (
            1
            if self._last_counter is None
            else event_counter - self._last_counter
        )
        # Closed form of `steps` modular hops -- O(1) after long gaps.
        unmapped = (self._last_unmapped + self.hop_increment * steps) % 37
        self._last_unmapped = unmapped
        self._last_counter = event_counter
        if chan_map.is_used(unmapped):
            return unmapped
        return chan_map.remap(unmapped % chan_map.num_used)


# PERM runs once per connection event; table-driven byte reversal keeps it
# off the profile.
_REVERSED_BYTE = tuple(int(f"{b:08b}"[::-1], 2) for b in range(256))


def _perm(value: int) -> int:
    """CSA#2 PERM operation: reverse the bit order within each byte."""
    return _REVERSED_BYTE[value & 0xFF] | (_REVERSED_BYTE[(value >> 8) & 0xFF] << 8)


def _mam(a: int, b: int) -> int:
    """CSA#2 MAM operation: multiply (by 17), add, mod 2^16."""
    return (a * 17 + b) & 0xFFFF


class Csa2:
    """Channel Selection Algorithm #2.

    :param access_address: the 32-bit connection access address; the channel
        identifier is ``(AA >> 16) XOR (AA & 0xFFFF)``.
    """

    def __init__(self, access_address: int) -> None:
        if not 0 <= access_address <= 0xFFFFFFFF:
            raise ValueError("access address must be a 32-bit value")
        self.access_address = access_address
        self.channel_identifier = ((access_address >> 16) ^ access_address) & 0xFFFF
        # chan_map -> CSA2_NUM_BLOCKS lazily-built blocks of precomputed
        # channels.  The sequence is a pure function of (channel identifier,
        # chan_map, counter), so the table is exact memoization, not an
        # approximation; a chan_map update simply starts a new table.
        self._tables: Dict[ChannelMap, List[Optional[Tuple[int, ...]]]] = {}
        # Identity-keyed alias of the active map's blocks: a connection asks
        # about the same ChannelMap object every event, and an `is` check is
        # far cheaper than hashing a 37-entry tuple per event.
        self._last_map: Optional[ChannelMap] = None
        self._last_blocks: List[Optional[Tuple[int, ...]]] = []

    def _prn_e(self, event_counter: int) -> int:
        """Pseudo-random number for one event (spec Figure 4.44)."""
        cid = self.channel_identifier
        u = (event_counter ^ cid) & 0xFFFF
        for _ in range(3):
            u = _mam(_perm(u), cid)
        return (u ^ cid) & 0xFFFF

    def _build_block(self, block: int, chan_map: ChannelMap) -> Tuple[int, ...]:
        """Precompute channels for one block of consecutive event counters.

        The PRN pipeline (``_prn_e`` = 3x PERM+MAM) is fused inline: blocks
        are rebuilt on every reconnect (fresh access address), so the build
        itself sits on the hot path of churny scenarios.
        """
        used = set(chan_map.used)
        table = chan_map.used
        num_used = chan_map.num_used
        cid = self.channel_identifier
        rev = _REVERSED_BYTE
        base = block << CSA2_BLOCK_SHIFT
        out = []
        append = out.append
        for counter in range(base, base + CSA2_BLOCK_SIZE):
            u = (counter ^ cid) & 0xFFFF
            u = ((rev[u & 0xFF] | (rev[u >> 8] << 8)) * 17 + cid) & 0xFFFF
            u = ((rev[u & 0xFF] | (rev[u >> 8] << 8)) * 17 + cid) & 0xFFFF
            u = ((rev[u & 0xFF] | (rev[u >> 8] << 8)) * 17 + cid) & 0xFFFF
            prn = u ^ cid
            unmapped = prn % 37
            if unmapped in used:
                append(unmapped)
            else:
                # (num_used * prn) >> 16 < num_used, so ChannelMap.remap's
                # defensive modulo is a no-op here.
                append(table[(num_used * prn) >> 16])
        return tuple(out)

    def channel_for_event(self, event_counter: int, chan_map: ChannelMap) -> int:
        """Data channel index for ``event_counter`` (pure function)."""
        counter = event_counter & 0xFFFF
        if chan_map is self._last_map:
            blocks = self._last_blocks
        else:
            blocks = self._tables.get(chan_map)
            if blocks is None:
                blocks = self._tables[chan_map] = [None] * CSA2_NUM_BLOCKS
            self._last_map = chan_map
            self._last_blocks = blocks
        block_idx = counter >> CSA2_BLOCK_SHIFT
        block = blocks[block_idx]
        if block is None:
            block = blocks[block_idx] = self._build_block(block_idx, chan_map)
        return block[counter & CSA2_BLOCK_MASK]
