"""The 37-bit BLE data channel map.

A connection only hops over channels marked *used* in its channel map.  The
paper statically removes channel 22 on all nodes because an external signal
permanently jammed it in the testbed (§4.2); :meth:`ChannelMap.excluding`
reproduces exactly that configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.phy.channels import BLE_NUM_DATA_CHANNELS


@dataclass(frozen=True)
class ChannelMap:
    """Immutable set of used data channels (indices 0..36).

    The Bluetooth standard requires at least two used channels (a CSA needs
    something to hop over); we enforce the same.
    """

    used: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.used) < 2:
            raise ValueError("a channel map needs at least 2 used channels")
        if any(not 0 <= c < BLE_NUM_DATA_CHANNELS for c in self.used):
            raise ValueError(f"data channel index out of range in {self.used}")
        if list(self.used) != sorted(set(self.used)):
            raise ValueError("channel map must be sorted and duplicate-free")

    @classmethod
    def all_channels(cls) -> "ChannelMap":
        """The default map: all 37 data channels used."""
        return cls(tuple(range(BLE_NUM_DATA_CHANNELS)))

    @classmethod
    def excluding(cls, excluded: Iterable[int]) -> "ChannelMap":
        """All data channels except ``excluded`` (e.g. the jammed channel 22)."""
        banned = set(excluded)
        return cls(tuple(c for c in range(BLE_NUM_DATA_CHANNELS) if c not in banned))

    @property
    def num_used(self) -> int:
        """Number of used channels."""
        return len(self.used)

    def is_used(self, channel: int) -> bool:
        """Whether ``channel`` is marked used."""
        return channel in self.used

    def remap(self, remapping_index: int) -> int:
        """Map a remapping index onto the sorted used-channel table."""
        return self.used[remapping_index % self.num_used]

    def to_bitmask(self) -> int:
        """The 37-bit on-air representation (bit i set = channel i used)."""
        mask = 0
        for c in self.used:
            mask |= 1 << c
        return mask

    @classmethod
    def from_bitmask(cls, mask: int) -> "ChannelMap":
        """Parse the 37-bit on-air representation."""
        used = tuple(c for c in range(BLE_NUM_DATA_CHANNELS) if mask & (1 << c))
        return cls(used)
