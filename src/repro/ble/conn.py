"""The BLE connection state machine.

One :class:`Connection` object models both endpoints of a link (coordinator
and subordinate) and executes each *connection event* as a single composite
transaction at the coordinator's anchor point.  Within the transaction the
full packet flow of Figure 3 is played out -- coordinator TX, T_IFS,
subordinate TX, repeat while More Data is signalled and the time budget
allows -- with per-packet loss sampled from the medium and exact SN/NESN
acknowledgement bookkeeping.

Everything the paper blames for its observations is here:

* anchors advance on the **coordinator's drifting clock** while the
  subordinate predicts them on **its own clock** (window widening, §6.1);
* each endpoint's node has a **single radio**, so overlapping events of
  co-located connections are skipped or alternated per the scheduler
  policy (connection shading);
* a **CRC error closes the event** even when packets are still queued
  (the burst-collapse of §5.2);
* no valid packet for *supervision timeout* kills the connection (the
  random connection losses of §5.1).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Tuple

from repro.ble.chanmap import ChannelMap
from repro.ble.config import BleConfig, ConnParams, CsaVariant, SchedulerPolicy
from repro.ble.csa import Csa1, Csa2, ChannelSelection
from repro.ble.pdu import DataPdu, Llid
from repro.obs.registry import METRICS
from repro.phy.frames import T_IFS_NS, ble_air_time_ns, ble_air_time_table
from repro.phy.medium import BleMedium
from repro.sim.kernel import Simulator, Timer
from repro.spans.hub import SPANS
from repro.trace.tracer import TRACE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.ble.controller import BleController
    from repro.l2cap.coc import L2capCoc


class Role(enum.Enum):
    """Connection role of one endpoint (§2.1)."""

    COORDINATOR = "coordinator"
    SUBORDINATE = "subordinate"


class DisconnectReason(enum.Enum):
    """Why a connection ended."""

    SUPERVISION_TIMEOUT = "supervision-timeout"
    LOCAL_CLOSE = "local-close"
    #: §6.3: the subordinate closes a fresh connection whose interval
    #: collides with one of its existing connections.
    INTERVAL_COLLISION = "interval-collision"


#: Duration of one minimal (empty <-> empty) packet exchange at LE 1M:
#: 80 us + T_IFS + 80 us.
MIN_EXCHANGE_NS: int = ble_air_time_ns(0) + T_IFS_NS + ble_air_time_ns(0)


@dataclass
class LinkStats:
    """Per-endpoint link-layer counters (inputs to the paper's LL PDR)."""

    #: Data PDU transmission attempts (retransmissions count again).
    tx_data_attempts: int = 0
    #: Data PDUs acknowledged by the peer (delivered exactly once).
    tx_data_acked: int = 0
    #: Unique data PDUs received (duplicates excluded).
    rx_data_unique: int = 0
    #: Duplicate data PDUs received (retransmissions of delivered PDUs).
    rx_data_dup: int = 0
    #: Empty PDUs transmitted.
    tx_empty: int = 0
    #: Connection events in which this endpoint exchanged >= 1 valid packet.
    events_active: int = 0
    #: Events this endpoint skipped because its radio was claimed elsewhere.
    events_skipped_radio: int = 0
    #: Events this endpoint voluntarily skipped (ALTERNATE policy yield).
    events_skipped_policy: int = 0
    #: Events where the subordinate's window missed the coordinator's TX.
    events_missed_window: int = 0
    #: Events aborted early by a CRC error (packet loss on air).
    events_crc_abort: int = 0
    #: Per-channel (attempts, acked) for this endpoint's transmissions.
    per_channel: List[List[int]] = field(
        default_factory=lambda: [[0, 0] for _ in range(37)]
    )
    #: Per-channel (events run, events CRC-aborted) -- the AFH manager's
    #: input (kept on the coordinator endpoint only).
    per_channel_events: List[List[int]] = field(
        default_factory=lambda: [[0, 0] for _ in range(37)]
    )

    def snapshot(self) -> Tuple[int, int, int, int]:
        """(tx_attempts, tx_acked, rx_unique, events_active) for sampling."""
        return (
            self.tx_data_attempts,
            self.tx_data_acked,
            self.rx_data_unique,
            self.events_active,
        )


class Endpoint:
    """One side of a connection: queues, sequence bits, timers, stats."""

    def __init__(self, conn: "Connection", controller: "BleController", role: Role):
        self.conn = conn
        self.controller = controller
        self.role = role
        self.tx_queue: Deque[DataPdu] = deque()
        self.tx_queue_bytes = 0
        self.sn = 0
        self.nesn = 0
        #: The PDU pinned in flight (queue head or an empty); it keeps its
        #: sequence number until acknowledged, so a lost acknowledgement
        #: triggers a retransmission of the *same* PDU -- even an empty one,
        #: which consumes a sequence number like any data PDU.
        self._outstanding: Optional[DataPdu] = None
        #: The reusable empty PDU this endpoint pins when its queue is dry.
        #: Only one empty can be outstanding at a time and receivers never
        #: retain empties, so one mutable object per endpoint suffices.
        self._empty_pdu = DataPdu()
        #: True time of the last CRC-valid packet received (supervision basis).
        self.last_rx_valid = 0
        self.stats = LinkStats()
        #: Upper-layer receive hook, set by L2CAP: ``on_rx_pdu(pdu)``.
        self.on_rx_pdu: Optional[Callable[[DataPdu], None]] = None
        #: Upper-layer ack hook: ``on_pdu_acked(pdu)``.
        self.on_pdu_acked: Optional[Callable[[DataPdu], None]] = None

    @property
    def has_data(self) -> bool:
        """Whether this endpoint has PDUs waiting (drives the MD flag)."""
        return bool(self.tx_queue)

    @property
    def cluster_addr(self) -> int:
        """Dispatch-cluster owner: the connection's cluster (both ends share
        one cluster from establishment, see :meth:`Connection.cluster_addr`)."""
        return self.conn.cluster_addr

    def enqueue(self, pdu: DataPdu) -> bool:
        """Queue a PDU for transfer, charging the controller's buffer pool.

        :returns: False when the pool is exhausted (caller must back off).
        """
        if not self.controller.buffer_pool.try_alloc(len(pdu.payload)):
            return False
        self.tx_queue.append(pdu)
        self.tx_queue_bytes += len(pdu.payload)
        return True

    def next_tx_len(self) -> int:
        """Payload length of the PDU the next ``build_tx_pdu`` would send."""
        if self._outstanding is not None:
            return len(self._outstanding.payload)
        return len(self.tx_queue[0].payload) if self.tx_queue else 0

    def build_tx_pdu(self, max_payload: int = 251) -> DataPdu:
        """Stamp and return the next PDU to transmit.

        The outstanding PDU (queue head or an empty) is *not* released: it
        stays pinned with its sequence number until the peer acknowledges it
        via NESN, which makes loss-triggered retransmission automatic
        (§2.2's 1-bit piggybacked ack).  Empty PDUs consume sequence numbers
        exactly like data PDUs, so an unacknowledged empty is retransmitted
        before any newly queued data may use its sequence number.

        :param max_payload: the largest payload that still fits before the
            node's next scheduled radio activity.  Fresh data larger than
            this is deferred (an empty PDU is pinned instead), mirroring how
            a controller avoids starting a packet it cannot finish -- the
            Figure 4 capacity truncation.  A PDU that already went on air is
            exempt: a retransmission must repeat the original PDU.
        """
        pdu = self._outstanding
        if pdu is None:
            if self.tx_queue and len(self.tx_queue[0].payload) <= max_payload:
                pdu = self.tx_queue[0]
            else:
                pdu = self._empty_pdu
            pdu.sn = self.sn
            self._outstanding = pdu
        elif pdu.payload and METRICS.enabled:
            METRICS.inc(self.controller.name, "ble.retransmissions")
        pdu.nesn = self.nesn
        pdu.md = len(self.tx_queue) > (1 if pdu.payload else 0)
        if pdu.payload:
            self.stats.tx_data_attempts += 1
        else:
            self.stats.tx_empty += 1
        return pdu

    def _trace_tx(self, pdu: DataPdu, t: int, retx: bool) -> None:
        """Emit one ``ble.ll_tx`` record (no-op when tracing is off)."""
        if not TRACE.enabled:
            return
        TRACE.emit(
            t, "ble", "ll_tx",
            conn=self.conn.conn_id, role=self.role.value,
            sn=pdu.sn, nesn=pdu.nesn, len=len(pdu.payload), retx=retx,
        )

    def process_rx(self, pdu: DataPdu, now_ns: int, channel: int) -> None:
        """Handle one CRC-valid received packet (ack + accept logic)."""
        if TRACE.enabled:
            TRACE.emit(
                now_ns, "ble", "ll_rx",
                conn=self.conn.conn_id, role=self.role.value,
                sn=pdu.sn, nesn=pdu.nesn, len=len(pdu.payload),
                my_sn=self.sn, my_nesn=self.nesn,
            )
        self.last_rx_valid = now_ns
        # Acknowledgement: the peer advanced its NESN past our SN.
        if pdu.nesn != self.sn:
            self.sn ^= 1
            outstanding = self._outstanding
            self._outstanding = None
            if outstanding is not None and outstanding.payload:
                done = self.tx_queue.popleft()
                assert done is outstanding, "acked PDU must be the queue head"
                self.tx_queue_bytes -= len(done.payload)
                self.controller.buffer_pool.free(len(done.payload))
                self.stats.tx_data_acked += 1
                self.stats.per_channel[channel][1] += 1
                if self.on_pdu_acked is not None:
                    self.on_pdu_acked(done)
        # Acceptance: new sequence number means new data.
        if pdu.sn == self.nesn:
            self.nesn ^= 1
            if pdu.payload or pdu.llid is not Llid.DATA_CONT:  # not is_empty
                self.stats.rx_data_unique += 1
                if pdu.llid is Llid.CTRL:
                    self.conn._handle_ctrl(self, pdu)
                elif self.on_rx_pdu is not None:
                    self.on_rx_pdu(pdu)
        elif pdu.payload or pdu.llid is not Llid.DATA_CONT:
            self.stats.rx_data_dup += 1

    def drain_queue(self) -> None:
        """Free all queued PDUs (connection teardown)."""
        while self.tx_queue:
            pdu = self.tx_queue.popleft()
            self.controller.buffer_pool.free(len(pdu.payload))
        self.tx_queue_bytes = 0
        self._outstanding = None


class _ConnActivity:
    """Scheduler-facing adapter: one per (connection, node) pair."""

    __slots__ = ("conn", "role", "consec_skips", "next_radio_time")

    def __init__(self, conn: "Connection", role: Role):
        self.conn = conn
        self.role = role
        self.consec_skips = 0
        # Bound directly so scheduler budget queries skip a delegation frame.
        self.next_radio_time: Callable[[int], Optional[int]] = partial(
            conn._next_radio_time, role
        )


class Connection:
    """A live BLE connection between two controllers.

    :param sim: simulation kernel.
    :param coordinator: controller in the coordinator role.
    :param subordinate: controller in the subordinate role.
    :param params: timing parameters chosen by the coordinator.
    :param access_address: 32-bit access address (seeds CSA#2).
    :param anchor0_true: true time of the first connection event.
    :param hop_increment: CSA#1 hop (ignored for CSA#2).
    """

    _next_id = 0

    #: The connection's shared IPSP channel, cached by ``coc_of`` on first
    #: use (both endpoints' netifs must drive the same object).
    _ipsp_coc: Optional["L2capCoc"]

    def __init__(
        self,
        sim: Simulator,
        coordinator: "BleController",
        subordinate: "BleController",
        params: ConnParams,
        access_address: int,
        anchor0_true: int,
        hop_increment: int = 7,
    ) -> None:
        if coordinator is subordinate:
            raise ValueError("a connection needs two distinct nodes")
        self.sim = sim
        self.conn_id = Connection._next_id
        Connection._next_id += 1
        self.params = params
        self.access_address = access_address
        self.medium = coordinator.medium
        # The coordinator dictates the hopping parameters (§2.2) and the
        # PHY mode (LE 1M in the paper; LE 2M as an extension -- both peers
        # must support it, which the simulated radios do).
        self.phy = coordinator.config.phy
        self.chan_map: ChannelMap = coordinator.config.chan_map
        self.csa: ChannelSelection
        if coordinator.config.csa is CsaVariant.CSA2:
            self.csa = Csa2(access_address)
        else:
            self.csa = Csa1(hop_increment)

        self.coord = Endpoint(self, coordinator, Role.COORDINATOR)
        self.sub = Endpoint(self, subordinate, Role.SUBORDINATE)
        self._coord_activity = _ConnActivity(self, Role.COORDINATOR)
        self._sub_activity = _ConnActivity(self, Role.SUBORDINATE)

        self.event_counter = 0
        self.anchor_true = anchor0_true
        # Subordinate sync state: CONNECT_IND hands the sub exact timing, so
        # it is "synced" to the first anchor by definition.
        self._sync_true = anchor0_true
        self._sync_counter = 0
        # Per-event invariants, recomputed only when their inputs change
        # (clock rates and node configs are fixed for a connection's life;
        # params change only via LL control procedures).
        self._sca_sum_ppm = (
            coordinator.config.declared_sca_ppm + subordinate.config.declared_sca_ppm
        )
        self._widening_base = subordinate.config.window_widening_base_ns
        self._sub_clock = subordinate.clock
        # Cross-event PER memo for the inline loss-sampling fast path:
        # with no bursts configured the PER of a (channel, nbytes) pair is
        # time-invariant, so it survives across events.  Guarded by the
        # interference model's change stamp (see _exchange_loop).
        self._per_memo: Dict[int, float] = {}
        self._per_memo_stamp: Tuple[int, int] = (-2, -2)
        self._interval_true = coordinator.clock.local_duration_to_true(
            params.interval_ns
        )
        self._timeout_ns = params.effective_supervision_timeout_ns()
        self._sync_local = subordinate.clock.to_local(anchor0_true)
        self._coord_alternate = (
            coordinator.config.scheduler_policy is SchedulerPolicy.ALTERNATE
        )
        self._sub_alternate = (
            subordinate.config.scheduler_policy is SchedulerPolicy.ALTERNATE
        )
        self._sub_latency_credit = 0
        self._pending_params: Optional[ConnParams] = None
        self._pending_chan_map: Optional[ChannelMap] = None
        self.open = True
        self._timer: Optional[Timer] = None
        #: Called once on teardown: ``on_closed(conn, reason)``.
        self.on_closed: Optional[Callable[["Connection", DisconnectReason], None]] = None

        self.medium.note_link(coordinator.identity, subordinate.identity)
        coordinator.attach_connection(self, self._coord_activity)
        subordinate.attach_connection(self, self._sub_activity)
        self._timer = sim.at(anchor0_true, self._run_event)
        self.coord.last_rx_valid = anchor0_true
        self.sub.last_rx_valid = anchor0_true
        if TRACE.enabled:
            TRACE.emit(
                sim.now, "ble", "conn_open",
                conn=self.conn_id,
                coordinator=coordinator.name,
                subordinate=subordinate.name,
                interval_ns=params.interval_ns,
                anchor0=anchor0_true,
                timeout_ns=params.effective_supervision_timeout_ns(),
            )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    @property
    def interval_ns(self) -> int:
        """Nominal connection interval (local clock nanoseconds)."""
        return self.params.interval_ns

    @property
    def cluster_addr(self) -> int:
        """Dispatch-cluster owner of this connection's timers.

        Both endpoints share one cluster from establishment (the runner's
        ``note_edge`` hook merges them before any event runs), so either
        identity resolves to the same root; the coordinator's is used.
        """
        return self.coord.controller.identity

    def endpoint_of(self, controller: "BleController") -> Endpoint:
        """The endpoint owned by ``controller``."""
        if controller is self.coord.controller:
            return self.coord
        if controller is self.sub.controller:
            return self.sub
        raise ValueError(f"{controller} is not part of this connection")

    def peer_of(self, controller: "BleController") -> "BleController":
        """The other node of the link."""
        self.endpoint_of(controller)  # membership check
        return (
            self.sub.controller
            if controller is self.coord.controller
            else self.coord.controller
        )

    def send(
        self,
        controller: "BleController",
        payload: bytes,
        llid: Llid = Llid.DATA_START,
        tag: Optional[object] = None,
    ) -> bool:
        """Queue ``payload`` as one LL data PDU from ``controller``'s side.

        :returns: False when the node's buffer pool is exhausted.
        """
        if not self.open:
            return False
        max_payload = controller.config.max_ll_payload
        if len(payload) > max_payload:
            raise ValueError(
                f"LL payload {len(payload)} exceeds max {max_payload}; "
                "segment at L2CAP"
            )
        return self.endpoint_of(controller).enqueue(
            DataPdu(payload=payload, llid=llid, tag=tag)
        )

    def close(self, reason: DisconnectReason = DisconnectReason.LOCAL_CLOSE) -> None:
        """Tear the connection down on both ends."""
        if not self.open:
            return
        self.open = False
        if TRACE.enabled:
            TRACE.emit(
                None, "ble", "conn_close",
                conn=self.conn_id, reason=reason.value,
            )
        if METRICS.enabled and reason is DisconnectReason.SUPERVISION_TIMEOUT:
            METRICS.inc(self.coord.controller.name, "ble.supervision_resets")
            METRICS.inc(self.sub.controller.name, "ble.supervision_resets")
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None  # cancelled handles must not be retained
        self.coord.drain_queue()
        self.sub.drain_queue()
        self.coord.controller.detach_connection(self, self._coord_activity)
        self.sub.controller.detach_connection(self, self._sub_activity)
        self.coord.controller.notify_closed(self, reason)
        self.sub.controller.notify_closed(self, reason)
        if self.on_closed is not None:
            self.on_closed(self, reason)

    def request_param_update(self, new_params: ConnParams) -> None:
        """LL control procedure: update timing parameters in flight (§2.2).

        Modelled as a control PDU from the coordinator; the new parameters
        apply at the first event boundary after the PDU is acknowledged.
        """
        pdu = DataPdu(
            payload=b"\x00" * 12,  # CONNECTION_UPDATE_IND is 12 bytes
            llid=Llid.CTRL,
            tag=("conn-param-update", new_params),
        )
        if not self.coord.enqueue(pdu):
            raise RuntimeError("buffer pool exhausted for control PDU")

    def request_chan_map_update(self, new_map: ChannelMap) -> None:
        """LL control procedure: restrict the data channels in flight."""
        pdu = DataPdu(
            payload=b"\x00" * 8,  # CHANNEL_MAP_IND is 8 bytes
            llid=Llid.CTRL,
            tag=("chan-map-update", new_map),
        )
        if not self.coord.enqueue(pdu):
            raise RuntimeError("buffer pool exhausted for control PDU")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _handle_ctrl(self, receiver: Endpoint, pdu: DataPdu) -> None:
        """Apply a received LL control PDU at the next event boundary."""
        if not isinstance(pdu.tag, tuple):
            return
        kind, arg = pdu.tag
        if kind == "conn-param-update":
            self._pending_params = arg
        elif kind == "chan-map-update":
            self._pending_chan_map = arg

    def _interval_true_coord(self) -> int:
        """One interval as counted by the coordinator's clock, in true ns.

        Cached in ``_interval_true``: the clock rate is fixed for life and
        ``params`` only changes via a control procedure, which refreshes it.
        """
        return self._interval_true

    def _next_radio_time(self, role: Role, after_ns: int) -> Optional[int]:
        """Scheduler callback: when does this connection need the radio next."""
        if not self.open:
            return None
        anchor = self.anchor_true
        if anchor <= after_ns:
            interval = self._interval_true
            periods = (after_ns - anchor) // interval + 1
            anchor += periods * interval
        if role is Role.SUBORDINATE:
            # The subordinate opens its window early; approximating with the
            # current widening is enough for budget queries.  Inlined
            # _window_widening: budget queries run several times per event.
            dt = anchor - self._sync_true
            if dt < 0:
                dt = 0
            anchor -= self._widening_base + int(dt * self._sca_sum_ppm * 1e-6)
        return anchor

    def _sub_predicted_anchor(self) -> int:
        """Where the subordinate's clock believes the current anchor lies."""
        elapsed_events = self.event_counter - self._sync_counter
        pred_local = self._sync_local + elapsed_events * self.params.interval_ns
        return self.sub.controller.clock.to_true(pred_local)

    def _window_widening(self, pred_true: int) -> int:
        """Receive window half-width around the predicted anchor (§6.1).

        The hot paths (`_run_event`, `_next_radio_time`) inline this
        arithmetic; keep the three of them in sync.
        """
        dt = max(0, pred_true - self._sync_true)
        return self._widening_base + int(dt * self._sca_sum_ppm * 1e-6)

    def _policy_yield(
        self, controller: "BleController", activity: _ConnActivity, t0: int
    ) -> bool:
        """ALTERNATE policy: yield to a more-starved co-located activity."""
        if controller.config.scheduler_policy is not SchedulerPolicy.ALTERNATE:
            return False
        demand_t, demand_a = controller.scheduler.next_demand_after(
            t0, exclude=activity
        )
        if demand_t is None or demand_a is None:
            return False
        return (
            demand_t <= t0 + MIN_EXCHANGE_NS
            and demand_a.consec_skips > activity.consec_skips
        )

    def _event_budget_end(
        self,
        controller: "BleController",
        activity: _ConnActivity,
        t0: int,
        interval_true: int,
    ) -> int:
        """Latest time this event may occupy ``controller``'s radio."""
        end = t0 + interval_true - T_IFS_NS
        demand_t, _ = controller.scheduler.next_demand_after(t0, exclude=activity)
        if demand_t is not None:
            end = min(end, demand_t - T_IFS_NS)
        max_len = controller.config.max_event_len_ns
        if max_len > 0:
            end = min(end, t0 + max_len)
        return end

    def _run_event(self) -> None:
        """Execute one connection event (the composite transaction)."""
        if not self.open:
            return
        sim = self.sim
        t0 = self.anchor_true
        coord_ctrl = self.coord.controller
        sub_ctrl = self.sub.controller
        interval_true = self._interval_true
        trace_on = TRACE.enabled
        metrics_on = METRICS.enabled

        channel = self.csa.channel_for_event(self.event_counter & 0xFFFF, self.chan_map)

        # --- subordinate's view: does its window catch the anchor? ---------
        # Inlined _sub_predicted_anchor + _window_widening (hot path).
        pred_local = self._sync_local + (
            (self.event_counter - self._sync_counter) * self.params.interval_ns
        )
        pred = self._sub_clock.to_true(pred_local)
        dt = pred - self._sync_true
        if dt < 0:
            dt = 0
        widening = self._widening_base + int(dt * self._sca_sum_ppm * 1e-6)
        window_hit = pred - widening <= t0 <= pred + widening

        # --- subordinate latency: may it sleep through this event? ---------
        latency_skip = False
        if self.params.latency > 0 and not self.sub.tx_queue:
            if self._sub_latency_credit > 0:
                self._sub_latency_credit -= 1
                latency_skip = True
            else:
                self._sub_latency_credit = self.params.latency

        # --- radio arbitration on both nodes --------------------------------
        # is_free() inlined (`at_ns >= _busy_until`): two calls per event.
        coord_free = t0 >= coord_ctrl.scheduler._busy_until
        sub_free = t0 >= sub_ctrl.scheduler._busy_until
        # The ALTERNATE check is hoisted to a per-connection flag so the
        # default EARLIEST_WINS policy never pays a _policy_yield call.
        coord_yield = (
            coord_free
            and self._coord_alternate
            and self._policy_yield(coord_ctrl, self._coord_activity, t0)
        )
        sub_yield = (
            sub_free
            and self._sub_alternate
            and self._policy_yield(sub_ctrl, self._sub_activity, t0)
        )

        coord_runs = coord_free and not coord_yield
        sub_listens = (
            sub_free and not sub_yield and window_hit and not latency_skip
        )

        if trace_on:
            TRACE.emit(
                t0, "ble", "conn_event",
                conn=self.conn_id, event=self.event_counter, anchor=t0,
                channel=channel, interval_ns=self.params.interval_ns,
                widening=widening, window_hit=window_hit,
                coord_runs=coord_runs, sub_listens=sub_listens,
            )

        if not coord_free:
            self.coord.stats.events_skipped_radio += 1
            coord_ctrl.scheduler.deny(self._coord_activity)
            if metrics_on:
                METRICS.inc(coord_ctrl.name, "ble.conn_events_skipped_radio")
        elif coord_yield:
            self.coord.stats.events_skipped_policy += 1
            coord_ctrl.scheduler.deny(self._coord_activity)
            if metrics_on:
                METRICS.inc(coord_ctrl.name, "ble.conn_events_skipped_policy")
        if not sub_free:
            self.sub.stats.events_skipped_radio += 1
            sub_ctrl.scheduler.deny(self._sub_activity)
            if metrics_on:
                METRICS.inc(sub_ctrl.name, "ble.conn_events_skipped_radio")
        elif sub_yield:
            self.sub.stats.events_skipped_policy += 1
            sub_ctrl.scheduler.deny(self._sub_activity)
            if metrics_on:
                METRICS.inc(sub_ctrl.name, "ble.conn_events_skipped_policy")
        elif not window_hit:
            self.sub.stats.events_missed_window += 1
            if metrics_on:
                METRICS.inc(sub_ctrl.name, "ble.conn_events_missed_window")

        event_end = t0
        if coord_runs and sub_listens:
            if metrics_on:
                METRICS.inc(coord_ctrl.name, "ble.conn_events_served")
                METRICS.inc(sub_ctrl.name, "ble.conn_events_served")
            end = self._exchange_loop(t0, channel, interval_true)
            csched = coord_ctrl.scheduler
            ssched = sub_ctrl.scheduler
            if trace_on or metrics_on:
                csched.claim(self._coord_activity, t0, end)
                ssched.claim(self._sub_activity, t0, end)
            elif t0 < csched._busy_until or t0 < ssched._busy_until:
                # Overlap: delegate to claim() for its diagnostic raise --
                # the radio-exclusivity invariant must keep firing.
                csched.claim(self._coord_activity, t0, end)
                ssched.claim(self._sub_activity, t0, end)
            else:
                # Inlined RadioScheduler.claim fast path (instrumentation
                # off; _exchange_loop guarantees end >= t0).
                dur = end - t0
                csched._busy_until = end
                csched._busy_owner = self._coord_activity
                csched.busy_ns_total += dur
                csched.claims += 1
                self._coord_activity.consec_skips = 0
                ssched._busy_until = end
                ssched._busy_owner = self._sub_activity
                ssched.busy_ns_total += dur
                ssched.claims += 1
                self._sub_activity.consec_skips = 0
            # Inlined note_conn_event x2 (energy accounting).
            dur = end - t0
            coord_ctrl.conn_events_coord += 1
            coord_ctrl.conn_event_ns += dur
            sub_ctrl.conn_events_sub += 1
            sub_ctrl.conn_event_ns += dur
            event_end = end
        elif coord_runs:
            # TX into the void: one unanswered packet, then the event closes.
            spans_on = SPANS.enabled
            retx = (trace_on or spans_on) and self.coord._outstanding is not None
            pdu = self.coord.build_tx_pdu()
            if trace_on:
                self.coord._trace_tx(pdu, t0, retx)
            dur = ble_air_time_ns(len(pdu.payload), self.phy)
            if spans_on:
                tag = pdu.tag
                if type(tag) is tuple and tag[0] == "kframe":
                    # Nobody listened: on-air but lost for span purposes.
                    SPANS.ll_tx(
                        tag[2], t0, t0 + dur, len(pdu.payload),
                        True, retx, t0, interval_true,
                    )
            if not pdu.is_empty:
                self.coord.stats.per_channel[channel][0] += 1
                if metrics_on:
                    METRICS.inc_vec(
                        coord_ctrl.name, "ble.pdus_by_channel", channel,
                        label_key="channel",
                    )
            end = t0 + dur + T_IFS_NS + ble_air_time_ns(0, self.phy)
            coord_ctrl.scheduler.claim(self._coord_activity, t0, end)
            coord_ctrl.note_conn_event(Role.COORDINATOR, end - t0)
            event_end = end
        elif sub_listens:
            # Subordinate listens but the coordinator never transmits.
            listen_end = min(pred + widening, t0 + interval_true // 2)
            sub_ctrl.scheduler.claim(self._sub_activity, t0, max(t0, listen_end))
            sub_ctrl.note_conn_event(Role.SUBORDINATE, max(0, listen_end - t0))
            event_end = max(t0, listen_end)

        if not self.open:
            return  # torn down by a control procedure during the event

        # --- supervision timeout (both sides judge independently) ----------
        timeout = self._timeout_ns
        now = sim.now if sim.now > t0 else t0
        if trace_on:
            TRACE.emit(
                now, "ble", "conn_event_end",
                conn=self.conn_id, event=self.event_counter,
                end=event_end, now=now, timeout_ns=timeout,
            )
        if (
            now - self.coord.last_rx_valid >= timeout
            or now - self.sub.last_rx_valid >= timeout
        ):
            self.close(DisconnectReason.SUPERVISION_TIMEOUT)
            return

        # --- apply pending control procedures at the event boundary --------
        if self._pending_chan_map is not None:
            self.chan_map = self._pending_chan_map
            self._pending_chan_map = None
        if self._pending_params is not None:
            self.params = self._pending_params
            self._pending_params = None
            self._interval_true = coord_ctrl.clock.local_duration_to_true(
                self.params.interval_ns
            )
            self._timeout_ns = self.params.effective_supervision_timeout_ns()
            interval_true = self._interval_true
            if trace_on:
                TRACE.emit(
                    None, "ble", "param_update",
                    conn=self.conn_id, interval_ns=self.params.interval_ns,
                )
            # Parameter updates re-anchor the link: both sides agree on the
            # instant, so the subordinate is synced by definition.
            self._sync_true = t0 + interval_true
            self._sync_counter = self.event_counter + 1
            self._sync_local = sub_ctrl.clock.to_local(self._sync_true)

        # --- schedule the next event ----------------------------------------
        self.event_counter += 1
        self.anchor_true = t0 + interval_true
        timer = self._timer
        if timer is not None:
            # The handle that fired this event is ours to reuse (rearm).
            self._timer = sim.rearm(timer, self.anchor_true)
        else:
            self._timer = sim.at(self.anchor_true, self._run_event)

    def _exchange_loop(self, t0: int, channel: int, interval_true: int) -> int:
        """Play out the packet exchanges of one event; returns its end time.

        Follows Figure 3: the coordinator opens every exchange; the
        subordinate answers one T_IFS later; a CRC error on either side
        closes the event immediately (BT 5.2 Vol 6 Part B §4.5.6).
        """
        coord, sub = self.coord, self.sub
        # Inlined _event_budget_end for both endpoints (hot path): the
        # event may run until the interval ends, the next competing radio
        # demand on either node, or the controller's event-length cap,
        # whichever is earliest.
        budget_end = t0 + interval_true - T_IFS_NS
        coord_ctrl = coord.controller
        sub_ctrl = sub.controller
        demand_t, _ = coord_ctrl.scheduler.next_demand_after(
            t0, self._coord_activity
        )
        if demand_t is not None and demand_t - T_IFS_NS < budget_end:
            budget_end = demand_t - T_IFS_NS
        demand_t, _ = sub_ctrl.scheduler.next_demand_after(t0, self._sub_activity)
        if demand_t is not None and demand_t - T_IFS_NS < budget_end:
            budget_end = demand_t - T_IFS_NS
        max_len = coord_ctrl.config.max_event_len_ns
        if max_len > 0 and t0 + max_len < budget_end:
            budget_end = t0 + max_len
        max_len = sub_ctrl.config.max_event_len_ns
        if max_len > 0 and t0 + max_len < budget_end:
            budget_end = t0 + max_len
        medium = self.medium
        # Loop-invariant loads, hoisted out of the per-exchange iteration:
        # instrumentation flags only toggle between runs, never inside a
        # connection event, and the PHY / abort policy are fixed per event.
        trace_on = TRACE.enabled
        metrics_on = METRICS.enabled
        spans_on = SPANS.enabled
        phy = self.phy
        air = ble_air_time_table(phy)
        abort_on_crc = coord_ctrl.config.abort_event_on_crc_error
        packet_lost = medium.packet_lost
        # Loss draws are charged to the connection's cluster stream: under
        # sharded media (attach_clusters) each cluster owns its own RNG so
        # lane order cannot change which stream a draw comes from; without
        # sharding loss_rng()/packet_lost(addr=...) fall back to the one
        # legacy stream and the draw sequence is unchanged.
        cluster_addr = coord_ctrl.identity
        llid_cont = Llid.DATA_CONT
        coord_chan_row = coord.stats.per_channel[channel]
        sub_chan_row = sub.stats.per_channel[channel]
        # With instrumentation off, loss sampling is inlined: the PER for a
        # given (channel, nbytes) is constant for the whole event (kernel
        # time does not advance inside a callback, so burst activity cannot
        # change mid-event) and is memoized per length.  The RNG draw
        # discipline is identical to BleMedium.packet_lost: one draw per
        # packet, skipped when PER <= 0.  The inline is only taken when
        # ``packet_lost`` is the stock implementation -- tests and fault
        # injectors that patch or override it keep their seam.
        fast_phy = (
            not trace_on
            and not metrics_on
            and "packet_lost" not in medium.__dict__
            and type(medium).packet_lost is BleMedium.packet_lost
        )
        if fast_phy:
            interf = medium.interference
            per_of = interf.packet_error_rate
            rng_random = medium.loss_rng(cluster_addr).random
            sim_now = self.sim.now
            if interf.bursts:
                # Bursts make PER time-dependent: memoize within this
                # event only (kernel time is frozen inside a callback).
                per_cache: Dict[int, float] = {}
            else:
                # No bursts: PER is a pure function of (channel, nbytes)
                # until the static interference config changes, so the
                # memo survives across events.  The stamp mirrors the
                # model's own dirty flag (invalidate() resets it).
                per_cache = self._per_memo
                stamp = interf._chan_stamp
                if stamp != self._per_memo_stamp:
                    per_cache.clear()
                    self._per_memo_stamp = stamp
            # nbytes < 512 always (max BLE payload 251 + overhead), so
            # `channel * 512 + nbytes` is a collision-free int key.
            chan_key = channel << 9
        t = t0
        first = True
        coord_active = False
        sub_active = False
        lost_c = lost_s = False
        while True:
            # The first exchange always runs in full: the coordinator opens
            # the event and a started packet completes even when it overruns
            # a co-located connection's anchor (that connection's event is
            # then skipped -- the load-induced starvation behind §5.2's
            # connection drops and "beneficial reconnects").  Additional
            # exchanges are only *started* while they fit the budget (the
            # `needed` check below).
            retx_c = (trace_on or spans_on) and coord._outstanding is not None
            pdu_c = coord.build_tx_pdu()
            if trace_on:
                coord._trace_tx(pdu_c, t, retx_c)
            if pdu_c.payload or pdu_c.llid is not llid_cont:  # not is_empty
                coord_chan_row[0] += 1
                if metrics_on:
                    METRICS.inc_vec(
                        coord.controller.name, "ble.pdus_by_channel", channel,
                        label_key="channel",
                    )
            len_c = len(pdu_c.payload)
            if fast_phy:
                nb = len_c + 10
                per = per_cache.get(chan_key + nb)
                if per is None:
                    per = per_of(channel, nb, sim_now)
                    per_cache[chan_key + nb] = per
                medium.packets_sampled += 1
                if per <= 0.0:
                    lost_c = False
                else:
                    lost_c = rng_random() < per
                    if lost_c:
                        medium.packets_lost += 1
            else:
                lost_c = packet_lost(channel, len_c + 10, cluster_addr)
            t += air[len_c]
            if spans_on:
                tag = pdu_c.tag
                if type(tag) is tuple and tag[0] == "kframe":
                    SPANS.ll_tx(
                        tag[2], t - air[len_c], t, len_c,
                        lost_c, retx_c, t0, interval_true,
                    )
            if lost_c:
                if trace_on:
                    TRACE.emit(
                        t, "ble", "crc_loss",
                        conn=self.conn_id, role=sub.role.value,
                        channel=channel, len=len_c,
                    )
                coord.stats.events_crc_abort += 1
                if metrics_on:
                    METRICS.inc(
                        coord.controller.name, "ble.conn_events_crc_abort"
                    )
                if abort_on_crc:
                    break
                # ablation: keep the event open and retry after one IFS
                if t + T_IFS_NS + MIN_EXCHANGE_NS > budget_end:
                    break
                t += T_IFS_NS
                continue
            if first:
                # Inlined _resync_sub: the sub locks onto this anchor.
                self._sync_true = t0
                self._sync_counter = self.event_counter
                self._sync_local = self._sub_clock.to_local(t0)
            if spans_on:
                # Publish the exact in-event time: sim.now is frozen at the
                # anchor, but spans opened or closed by this delivery chain
                # must carry the true air-time instant to tile exactly.
                SPANS.now_hint = t
                sub.process_rx(pdu_c, t, channel)
                SPANS.now_hint = None
            else:
                sub.process_rx(pdu_c, t, channel)
            sub_active = True

            t += T_IFS_NS
            retx_s = (trace_on or spans_on) and sub._outstanding is not None
            pdu_s = sub.build_tx_pdu()
            if trace_on:
                sub._trace_tx(pdu_s, t, retx_s)
            if pdu_s.payload or pdu_s.llid is not llid_cont:  # not is_empty
                sub_chan_row[0] += 1
                if metrics_on:
                    METRICS.inc_vec(
                        sub.controller.name, "ble.pdus_by_channel", channel,
                        label_key="channel",
                    )
            len_s = len(pdu_s.payload)
            if fast_phy:
                nb = len_s + 10
                per = per_cache.get(chan_key + nb)
                if per is None:
                    per = per_of(channel, nb, sim_now)
                    per_cache[chan_key + nb] = per
                medium.packets_sampled += 1
                if per <= 0.0:
                    lost_s = False
                else:
                    lost_s = rng_random() < per
                    if lost_s:
                        medium.packets_lost += 1
            else:
                lost_s = packet_lost(channel, len_s + 10, cluster_addr)
            t += air[len_s]
            if spans_on:
                tag = pdu_s.tag
                if type(tag) is tuple and tag[0] == "kframe":
                    SPANS.ll_tx(
                        tag[2], t - air[len_s], t, len_s,
                        lost_s, retx_s, t0, interval_true,
                    )
            if lost_s:
                if trace_on:
                    TRACE.emit(
                        t, "ble", "crc_loss",
                        conn=self.conn_id, role=coord.role.value,
                        channel=channel, len=len_s,
                    )
                sub.stats.events_crc_abort += 1
                if metrics_on:
                    METRICS.inc(
                        sub.controller.name, "ble.conn_events_crc_abort"
                    )
                if abort_on_crc:
                    break
                if t + T_IFS_NS + MIN_EXCHANGE_NS > budget_end:
                    break
                t += T_IFS_NS
                continue
            if spans_on:
                SPANS.now_hint = t
                coord.process_rx(pdu_s, t, channel)
                SPANS.now_hint = None
            else:
                coord.process_rx(pdu_s, t, channel)
            coord_active = True
            first = False

            if not (coord.tx_queue or sub.tx_queue):
                break
            # Inlined next_tx_len for both endpoints (hot loop).
            o = coord._outstanding
            if o is not None:
                next_c = len(o.payload)
            else:
                next_c = len(coord.tx_queue[0].payload) if coord.tx_queue else 0
            o = sub._outstanding
            if o is not None:
                next_s = len(o.payload)
            else:
                next_s = len(sub.tx_queue[0].payload) if sub.tx_queue else 0
            needed = T_IFS_NS + air[next_c] + T_IFS_NS + air[next_s]
            if t + needed > budget_end:
                break
            t += T_IFS_NS
        if coord_active:
            coord.stats.events_active += 1
        if sub_active:
            sub.stats.events_active += 1
        event_row = coord.stats.per_channel_events[channel]
        event_row[0] += 1
        if lost_c or lost_s:
            event_row[1] += 1
        return t

    def _resync_sub(self, anchor_true: int) -> None:
        """The subordinate locks onto the coordinator's anchor (first RX)."""
        self._sync_true = anchor_true
        self._sync_counter = self.event_counter
        self._sync_local = self.sub.controller.clock.to_local(anchor_true)
