"""The BLE connection state machine.

One :class:`Connection` object models both endpoints of a link (coordinator
and subordinate) and executes each *connection event* as a single composite
transaction at the coordinator's anchor point.  Within the transaction the
full packet flow of Figure 3 is played out -- coordinator TX, T_IFS,
subordinate TX, repeat while More Data is signalled and the time budget
allows -- with per-packet loss sampled from the medium and exact SN/NESN
acknowledgement bookkeeping.

Everything the paper blames for its observations is here:

* anchors advance on the **coordinator's drifting clock** while the
  subordinate predicts them on **its own clock** (window widening, §6.1);
* each endpoint's node has a **single radio**, so overlapping events of
  co-located connections are skipped or alternated per the scheduler
  policy (connection shading);
* a **CRC error closes the event** even when packets are still queued
  (the burst-collapse of §5.2);
* no valid packet for *supervision timeout* kills the connection (the
  random connection losses of §5.1).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Deque, List, Optional, Tuple

from repro.ble.chanmap import ChannelMap
from repro.ble.config import BleConfig, ConnParams, CsaVariant, SchedulerPolicy
from repro.ble.csa import Csa1, Csa2, ChannelSelection
from repro.ble.pdu import DataPdu, Llid
from repro.obs.registry import METRICS
from repro.phy.frames import T_IFS_NS, ble_air_time_ns
from repro.sim.kernel import Simulator, Timer
from repro.trace.tracer import TRACE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.ble.controller import BleController


class Role(enum.Enum):
    """Connection role of one endpoint (§2.1)."""

    COORDINATOR = "coordinator"
    SUBORDINATE = "subordinate"


class DisconnectReason(enum.Enum):
    """Why a connection ended."""

    SUPERVISION_TIMEOUT = "supervision-timeout"
    LOCAL_CLOSE = "local-close"
    #: §6.3: the subordinate closes a fresh connection whose interval
    #: collides with one of its existing connections.
    INTERVAL_COLLISION = "interval-collision"


#: Duration of one minimal (empty <-> empty) packet exchange at LE 1M:
#: 80 us + T_IFS + 80 us.
MIN_EXCHANGE_NS: int = ble_air_time_ns(0) + T_IFS_NS + ble_air_time_ns(0)


@dataclass
class LinkStats:
    """Per-endpoint link-layer counters (inputs to the paper's LL PDR)."""

    #: Data PDU transmission attempts (retransmissions count again).
    tx_data_attempts: int = 0
    #: Data PDUs acknowledged by the peer (delivered exactly once).
    tx_data_acked: int = 0
    #: Unique data PDUs received (duplicates excluded).
    rx_data_unique: int = 0
    #: Duplicate data PDUs received (retransmissions of delivered PDUs).
    rx_data_dup: int = 0
    #: Empty PDUs transmitted.
    tx_empty: int = 0
    #: Connection events in which this endpoint exchanged >= 1 valid packet.
    events_active: int = 0
    #: Events this endpoint skipped because its radio was claimed elsewhere.
    events_skipped_radio: int = 0
    #: Events this endpoint voluntarily skipped (ALTERNATE policy yield).
    events_skipped_policy: int = 0
    #: Events where the subordinate's window missed the coordinator's TX.
    events_missed_window: int = 0
    #: Events aborted early by a CRC error (packet loss on air).
    events_crc_abort: int = 0
    #: Per-channel (attempts, acked) for this endpoint's transmissions.
    per_channel: List[List[int]] = field(
        default_factory=lambda: [[0, 0] for _ in range(37)]
    )
    #: Per-channel (events run, events CRC-aborted) -- the AFH manager's
    #: input (kept on the coordinator endpoint only).
    per_channel_events: List[List[int]] = field(
        default_factory=lambda: [[0, 0] for _ in range(37)]
    )

    def snapshot(self) -> Tuple[int, int, int, int]:
        """(tx_attempts, tx_acked, rx_unique, events_active) for sampling."""
        return (
            self.tx_data_attempts,
            self.tx_data_acked,
            self.rx_data_unique,
            self.events_active,
        )


class Endpoint:
    """One side of a connection: queues, sequence bits, timers, stats."""

    def __init__(self, conn: "Connection", controller: "BleController", role: Role):
        self.conn = conn
        self.controller = controller
        self.role = role
        self.tx_queue: Deque[DataPdu] = deque()
        self.tx_queue_bytes = 0
        self.sn = 0
        self.nesn = 0
        #: The PDU pinned in flight (queue head or an empty); it keeps its
        #: sequence number until acknowledged, so a lost acknowledgement
        #: triggers a retransmission of the *same* PDU -- even an empty one,
        #: which consumes a sequence number like any data PDU.
        self._outstanding: Optional[DataPdu] = None
        #: True time of the last CRC-valid packet received (supervision basis).
        self.last_rx_valid = 0
        self.stats = LinkStats()
        #: Upper-layer receive hook, set by L2CAP: ``on_rx_pdu(pdu)``.
        self.on_rx_pdu: Optional[Callable[[DataPdu], None]] = None
        #: Upper-layer ack hook: ``on_pdu_acked(pdu)``.
        self.on_pdu_acked: Optional[Callable[[DataPdu], None]] = None

    @property
    def has_data(self) -> bool:
        """Whether this endpoint has PDUs waiting (drives the MD flag)."""
        return bool(self.tx_queue)

    def enqueue(self, pdu: DataPdu) -> bool:
        """Queue a PDU for transfer, charging the controller's buffer pool.

        :returns: False when the pool is exhausted (caller must back off).
        """
        if not self.controller.buffer_pool.try_alloc(len(pdu.payload)):
            return False
        self.tx_queue.append(pdu)
        self.tx_queue_bytes += len(pdu.payload)
        return True

    def next_tx_len(self) -> int:
        """Payload length of the PDU the next ``build_tx_pdu`` would send."""
        if self._outstanding is not None:
            return len(self._outstanding.payload)
        return len(self.tx_queue[0].payload) if self.tx_queue else 0

    def build_tx_pdu(self, max_payload: int = 251) -> DataPdu:
        """Stamp and return the next PDU to transmit.

        The outstanding PDU (queue head or an empty) is *not* released: it
        stays pinned with its sequence number until the peer acknowledges it
        via NESN, which makes loss-triggered retransmission automatic
        (§2.2's 1-bit piggybacked ack).  Empty PDUs consume sequence numbers
        exactly like data PDUs, so an unacknowledged empty is retransmitted
        before any newly queued data may use its sequence number.

        :param max_payload: the largest payload that still fits before the
            node's next scheduled radio activity.  Fresh data larger than
            this is deferred (an empty PDU is pinned instead), mirroring how
            a controller avoids starting a packet it cannot finish -- the
            Figure 4 capacity truncation.  A PDU that already went on air is
            exempt: a retransmission must repeat the original PDU.
        """
        pdu = self._outstanding
        if pdu is None:
            if self.tx_queue and len(self.tx_queue[0].payload) <= max_payload:
                pdu = self.tx_queue[0]
            else:
                pdu = DataPdu(payload=b"", llid=Llid.DATA_CONT)
            pdu.sn = self.sn
            self._outstanding = pdu
        elif pdu.payload and METRICS.enabled:
            METRICS.inc(self.controller.name, "ble.retransmissions")
        pdu.nesn = self.nesn
        pdu.md = len(self.tx_queue) > (1 if pdu.payload else 0)
        if pdu.payload:
            self.stats.tx_data_attempts += 1
        else:
            self.stats.tx_empty += 1
        return pdu

    def _trace_tx(self, pdu: DataPdu, t: int, retx: bool) -> None:
        """Emit one ``ble.ll_tx`` record (caller checks ``TRACE.enabled``)."""
        TRACE.emit(
            t, "ble", "ll_tx",
            conn=self.conn.conn_id, role=self.role.value,
            sn=pdu.sn, nesn=pdu.nesn, len=len(pdu.payload), retx=retx,
        )

    def process_rx(self, pdu: DataPdu, now_ns: int, channel: int) -> None:
        """Handle one CRC-valid received packet (ack + accept logic)."""
        if TRACE.enabled:
            TRACE.emit(
                now_ns, "ble", "ll_rx",
                conn=self.conn.conn_id, role=self.role.value,
                sn=pdu.sn, nesn=pdu.nesn, len=len(pdu.payload),
                my_sn=self.sn, my_nesn=self.nesn,
            )
        self.last_rx_valid = now_ns
        # Acknowledgement: the peer advanced its NESN past our SN.
        if pdu.nesn != self.sn:
            self.sn ^= 1
            outstanding = self._outstanding
            self._outstanding = None
            if outstanding is not None and outstanding.payload:
                done = self.tx_queue.popleft()
                assert done is outstanding, "acked PDU must be the queue head"
                self.tx_queue_bytes -= len(done.payload)
                self.controller.buffer_pool.free(len(done.payload))
                self.stats.tx_data_acked += 1
                self.stats.per_channel[channel][1] += 1
                if self.on_pdu_acked is not None:
                    self.on_pdu_acked(done)
        # Acceptance: new sequence number means new data.
        if pdu.sn == self.nesn:
            self.nesn ^= 1
            if not pdu.is_empty:
                self.stats.rx_data_unique += 1
                if pdu.llid is Llid.CTRL:
                    self.conn._handle_ctrl(self, pdu)
                elif self.on_rx_pdu is not None:
                    self.on_rx_pdu(pdu)
        elif not pdu.is_empty:
            self.stats.rx_data_dup += 1

    def drain_queue(self) -> None:
        """Free all queued PDUs (connection teardown)."""
        while self.tx_queue:
            pdu = self.tx_queue.popleft()
            self.controller.buffer_pool.free(len(pdu.payload))
        self.tx_queue_bytes = 0
        self._outstanding = None


class _ConnActivity:
    """Scheduler-facing adapter: one per (connection, node) pair."""

    __slots__ = ("conn", "role", "consec_skips")

    def __init__(self, conn: "Connection", role: Role):
        self.conn = conn
        self.role = role
        self.consec_skips = 0

    def next_radio_time(self, after_ns: int) -> Optional[int]:
        return self.conn._next_radio_time(self.role, after_ns)


class Connection:
    """A live BLE connection between two controllers.

    :param sim: simulation kernel.
    :param coordinator: controller in the coordinator role.
    :param subordinate: controller in the subordinate role.
    :param params: timing parameters chosen by the coordinator.
    :param access_address: 32-bit access address (seeds CSA#2).
    :param anchor0_true: true time of the first connection event.
    :param hop_increment: CSA#1 hop (ignored for CSA#2).
    """

    _next_id = 0

    def __init__(
        self,
        sim: Simulator,
        coordinator: "BleController",
        subordinate: "BleController",
        params: ConnParams,
        access_address: int,
        anchor0_true: int,
        hop_increment: int = 7,
    ) -> None:
        if coordinator is subordinate:
            raise ValueError("a connection needs two distinct nodes")
        self.sim = sim
        self.conn_id = Connection._next_id
        Connection._next_id += 1
        self.params = params
        self.access_address = access_address
        self.medium = coordinator.medium
        # The coordinator dictates the hopping parameters (§2.2) and the
        # PHY mode (LE 1M in the paper; LE 2M as an extension -- both peers
        # must support it, which the simulated radios do).
        self.phy = coordinator.config.phy
        self.chan_map: ChannelMap = coordinator.config.chan_map
        self.csa: ChannelSelection
        if coordinator.config.csa is CsaVariant.CSA2:
            self.csa = Csa2(access_address)
        else:
            self.csa = Csa1(hop_increment)

        self.coord = Endpoint(self, coordinator, Role.COORDINATOR)
        self.sub = Endpoint(self, subordinate, Role.SUBORDINATE)
        self._coord_activity = _ConnActivity(self, Role.COORDINATOR)
        self._sub_activity = _ConnActivity(self, Role.SUBORDINATE)

        self.event_counter = 0
        self.anchor_true = anchor0_true
        # Subordinate sync state: CONNECT_IND hands the sub exact timing, so
        # it is "synced" to the first anchor by definition.
        self._sync_true = anchor0_true
        self._sync_counter = 0
        self._sub_latency_credit = 0
        self._pending_params: Optional[ConnParams] = None
        self._pending_chan_map: Optional[ChannelMap] = None
        self.open = True
        self._timer: Optional[Timer] = None
        #: Called once on teardown: ``on_closed(conn, reason)``.
        self.on_closed: Optional[Callable[["Connection", DisconnectReason], None]] = None

        coordinator.attach_connection(self, self._coord_activity)
        subordinate.attach_connection(self, self._sub_activity)
        self._timer = sim.at(anchor0_true, self._run_event)
        self.coord.last_rx_valid = anchor0_true
        self.sub.last_rx_valid = anchor0_true
        if TRACE.enabled:
            TRACE.emit(
                sim.now, "ble", "conn_open",
                conn=self.conn_id,
                coordinator=coordinator.name,
                subordinate=subordinate.name,
                interval_ns=params.interval_ns,
                anchor0=anchor0_true,
                timeout_ns=params.effective_supervision_timeout_ns(),
            )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    @property
    def interval_ns(self) -> int:
        """Nominal connection interval (local clock nanoseconds)."""
        return self.params.interval_ns

    def endpoint_of(self, controller: "BleController") -> Endpoint:
        """The endpoint owned by ``controller``."""
        if controller is self.coord.controller:
            return self.coord
        if controller is self.sub.controller:
            return self.sub
        raise ValueError(f"{controller} is not part of this connection")

    def peer_of(self, controller: "BleController") -> "BleController":
        """The other node of the link."""
        self.endpoint_of(controller)  # membership check
        return (
            self.sub.controller
            if controller is self.coord.controller
            else self.coord.controller
        )

    def send(
        self,
        controller: "BleController",
        payload: bytes,
        llid: Llid = Llid.DATA_START,
        tag: Optional[object] = None,
    ) -> bool:
        """Queue ``payload`` as one LL data PDU from ``controller``'s side.

        :returns: False when the node's buffer pool is exhausted.
        """
        if not self.open:
            return False
        max_payload = controller.config.max_ll_payload
        if len(payload) > max_payload:
            raise ValueError(
                f"LL payload {len(payload)} exceeds max {max_payload}; "
                "segment at L2CAP"
            )
        return self.endpoint_of(controller).enqueue(
            DataPdu(payload=payload, llid=llid, tag=tag)
        )

    def close(self, reason: DisconnectReason = DisconnectReason.LOCAL_CLOSE) -> None:
        """Tear the connection down on both ends."""
        if not self.open:
            return
        self.open = False
        if TRACE.enabled:
            TRACE.emit(
                None, "ble", "conn_close",
                conn=self.conn_id, reason=reason.value,
            )
        if METRICS.enabled and reason is DisconnectReason.SUPERVISION_TIMEOUT:
            METRICS.inc(self.coord.controller.name, "ble.supervision_resets")
            METRICS.inc(self.sub.controller.name, "ble.supervision_resets")
        if self._timer is not None:
            self._timer.cancel()
        self.coord.drain_queue()
        self.sub.drain_queue()
        self.coord.controller.detach_connection(self, self._coord_activity)
        self.sub.controller.detach_connection(self, self._sub_activity)
        self.coord.controller.notify_closed(self, reason)
        self.sub.controller.notify_closed(self, reason)
        if self.on_closed is not None:
            self.on_closed(self, reason)

    def request_param_update(self, new_params: ConnParams) -> None:
        """LL control procedure: update timing parameters in flight (§2.2).

        Modelled as a control PDU from the coordinator; the new parameters
        apply at the first event boundary after the PDU is acknowledged.
        """
        pdu = DataPdu(
            payload=b"\x00" * 12,  # CONNECTION_UPDATE_IND is 12 bytes
            llid=Llid.CTRL,
            tag=("conn-param-update", new_params),
        )
        if not self.coord.enqueue(pdu):
            raise RuntimeError("buffer pool exhausted for control PDU")

    def request_chan_map_update(self, new_map: ChannelMap) -> None:
        """LL control procedure: restrict the data channels in flight."""
        pdu = DataPdu(
            payload=b"\x00" * 8,  # CHANNEL_MAP_IND is 8 bytes
            llid=Llid.CTRL,
            tag=("chan-map-update", new_map),
        )
        if not self.coord.enqueue(pdu):
            raise RuntimeError("buffer pool exhausted for control PDU")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _handle_ctrl(self, receiver: Endpoint, pdu: DataPdu) -> None:
        """Apply a received LL control PDU at the next event boundary."""
        if not isinstance(pdu.tag, tuple):
            return
        kind, arg = pdu.tag
        if kind == "conn-param-update":
            self._pending_params = arg
        elif kind == "chan-map-update":
            self._pending_chan_map = arg

    def _interval_true_coord(self) -> int:
        """One interval as counted by the coordinator's clock, in true ns."""
        return self.coord.controller.clock.local_duration_to_true(
            self.params.interval_ns
        )

    def _next_radio_time(self, role: Role, after_ns: int) -> Optional[int]:
        """Scheduler callback: when does this connection need the radio next."""
        if not self.open:
            return None
        anchor = self.anchor_true
        if anchor <= after_ns:
            interval = self._interval_true_coord()
            periods = (after_ns - anchor) // interval + 1
            anchor += periods * interval
        if role is Role.SUBORDINATE:
            # The subordinate opens its window early; approximating with the
            # current widening is enough for budget queries.
            anchor -= self._window_widening(anchor)
        return anchor

    def _sub_predicted_anchor(self) -> int:
        """Where the subordinate's clock believes the current anchor lies."""
        sub_clock = self.sub.controller.clock
        elapsed_events = self.event_counter - self._sync_counter
        sync_local = sub_clock.to_local(self._sync_true)
        pred_local = sync_local + elapsed_events * self.params.interval_ns
        return sub_clock.to_true(pred_local)

    def _window_widening(self, pred_true: int) -> int:
        """Receive window half-width around the predicted anchor (§6.1)."""
        cfg_c = self.coord.controller.config
        cfg_s = self.sub.controller.config
        sca_sum_ppm = cfg_c.declared_sca_ppm + cfg_s.declared_sca_ppm
        dt = max(0, pred_true - self._sync_true)
        return cfg_s.window_widening_base_ns + int(dt * sca_sum_ppm * 1e-6)

    def _policy_yield(
        self, controller: "BleController", activity: _ConnActivity, t0: int
    ) -> bool:
        """ALTERNATE policy: yield to a more-starved co-located activity."""
        if controller.config.scheduler_policy is not SchedulerPolicy.ALTERNATE:
            return False
        demand_t, demand_a = controller.scheduler.next_demand_after(
            t0, exclude=activity
        )
        if demand_t is None or demand_a is None:
            return False
        return (
            demand_t <= t0 + MIN_EXCHANGE_NS
            and demand_a.consec_skips > activity.consec_skips
        )

    def _event_budget_end(
        self,
        controller: "BleController",
        activity: _ConnActivity,
        t0: int,
        interval_true: int,
    ) -> int:
        """Latest time this event may occupy ``controller``'s radio."""
        end = t0 + interval_true - T_IFS_NS
        demand_t, _ = controller.scheduler.next_demand_after(t0, exclude=activity)
        if demand_t is not None:
            end = min(end, demand_t - T_IFS_NS)
        max_len = controller.config.max_event_len_ns
        if max_len > 0:
            end = min(end, t0 + max_len)
        return end

    def _run_event(self) -> None:
        """Execute one connection event (the composite transaction)."""
        if not self.open:
            return
        sim = self.sim
        t0 = self.anchor_true
        coord_ctrl = self.coord.controller
        sub_ctrl = self.sub.controller
        interval_true = self._interval_true_coord()

        channel = self.csa.channel_for_event(self.event_counter & 0xFFFF, self.chan_map)

        # --- subordinate's view: does its window catch the anchor? ---------
        pred = self._sub_predicted_anchor()
        widening = self._window_widening(pred)
        window_hit = pred - widening <= t0 <= pred + widening

        # --- subordinate latency: may it sleep through this event? ---------
        latency_skip = False
        if self.params.latency > 0 and not self.sub.has_data:
            if self._sub_latency_credit > 0:
                self._sub_latency_credit -= 1
                latency_skip = True
            else:
                self._sub_latency_credit = self.params.latency

        # --- radio arbitration on both nodes --------------------------------
        coord_free = coord_ctrl.scheduler.is_free(t0)
        sub_free = sub_ctrl.scheduler.is_free(t0)
        coord_yield = coord_free and self._policy_yield(
            coord_ctrl, self._coord_activity, t0
        )
        sub_yield = sub_free and self._policy_yield(sub_ctrl, self._sub_activity, t0)

        coord_runs = coord_free and not coord_yield
        sub_listens = (
            sub_free and not sub_yield and window_hit and not latency_skip
        )

        if TRACE.enabled:
            TRACE.emit(
                t0, "ble", "conn_event",
                conn=self.conn_id, event=self.event_counter, anchor=t0,
                channel=channel, interval_ns=self.params.interval_ns,
                widening=widening, window_hit=window_hit,
                coord_runs=coord_runs, sub_listens=sub_listens,
            )

        if not coord_free:
            self.coord.stats.events_skipped_radio += 1
            coord_ctrl.scheduler.deny(self._coord_activity)
            if METRICS.enabled:
                METRICS.inc(coord_ctrl.name, "ble.conn_events_skipped_radio")
        elif coord_yield:
            self.coord.stats.events_skipped_policy += 1
            coord_ctrl.scheduler.deny(self._coord_activity)
            if METRICS.enabled:
                METRICS.inc(coord_ctrl.name, "ble.conn_events_skipped_policy")
        if not sub_free:
            self.sub.stats.events_skipped_radio += 1
            sub_ctrl.scheduler.deny(self._sub_activity)
            if METRICS.enabled:
                METRICS.inc(sub_ctrl.name, "ble.conn_events_skipped_radio")
        elif sub_yield:
            self.sub.stats.events_skipped_policy += 1
            sub_ctrl.scheduler.deny(self._sub_activity)
            if METRICS.enabled:
                METRICS.inc(sub_ctrl.name, "ble.conn_events_skipped_policy")
        elif not window_hit:
            self.sub.stats.events_missed_window += 1
            if METRICS.enabled:
                METRICS.inc(sub_ctrl.name, "ble.conn_events_missed_window")

        event_end = t0
        if coord_runs and sub_listens:
            if METRICS.enabled:
                METRICS.inc(coord_ctrl.name, "ble.conn_events_served")
                METRICS.inc(sub_ctrl.name, "ble.conn_events_served")
            end = self._exchange_loop(t0, channel, interval_true)
            coord_ctrl.scheduler.claim(self._coord_activity, t0, end)
            sub_ctrl.scheduler.claim(self._sub_activity, t0, end)
            coord_ctrl.note_conn_event(Role.COORDINATOR, end - t0)
            sub_ctrl.note_conn_event(Role.SUBORDINATE, end - t0)
            event_end = end
        elif coord_runs:
            # TX into the void: one unanswered packet, then the event closes.
            retx = TRACE.enabled and self.coord._outstanding is not None
            pdu = self.coord.build_tx_pdu()
            if TRACE.enabled:
                self.coord._trace_tx(pdu, t0, retx)
            dur = ble_air_time_ns(len(pdu.payload), self.phy)
            if not pdu.is_empty:
                self.coord.stats.per_channel[channel][0] += 1
                if METRICS.enabled:
                    METRICS.inc_vec(
                        coord_ctrl.name, "ble.pdus_by_channel", channel,
                        label_key="channel",
                    )
            end = t0 + dur + T_IFS_NS + ble_air_time_ns(0, self.phy)
            coord_ctrl.scheduler.claim(self._coord_activity, t0, end)
            coord_ctrl.note_conn_event(Role.COORDINATOR, end - t0)
            event_end = end
        elif sub_listens:
            # Subordinate listens but the coordinator never transmits.
            listen_end = min(pred + widening, t0 + interval_true // 2)
            sub_ctrl.scheduler.claim(self._sub_activity, t0, max(t0, listen_end))
            sub_ctrl.note_conn_event(Role.SUBORDINATE, max(0, listen_end - t0))
            event_end = max(t0, listen_end)

        if not self.open:
            return  # torn down by a control procedure during the event

        # --- supervision timeout (both sides judge independently) ----------
        timeout = self.params.effective_supervision_timeout_ns()
        now = sim.now if sim.now > t0 else t0
        if TRACE.enabled:
            TRACE.emit(
                now, "ble", "conn_event_end",
                conn=self.conn_id, event=self.event_counter,
                end=event_end, now=now, timeout_ns=timeout,
            )
        if (
            now - self.coord.last_rx_valid >= timeout
            or now - self.sub.last_rx_valid >= timeout
        ):
            self.close(DisconnectReason.SUPERVISION_TIMEOUT)
            return

        # --- apply pending control procedures at the event boundary --------
        if self._pending_chan_map is not None:
            self.chan_map = self._pending_chan_map
            self._pending_chan_map = None
        if self._pending_params is not None:
            self.params = self._pending_params
            self._pending_params = None
            interval_true = self._interval_true_coord()
            if TRACE.enabled:
                TRACE.emit(
                    None, "ble", "param_update",
                    conn=self.conn_id, interval_ns=self.params.interval_ns,
                )
            # Parameter updates re-anchor the link: both sides agree on the
            # instant, so the subordinate is synced by definition.
            self._sync_true = t0 + interval_true
            self._sync_counter = self.event_counter + 1

        # --- schedule the next event ----------------------------------------
        self.event_counter += 1
        self.anchor_true = t0 + interval_true
        self._timer = sim.at(self.anchor_true, self._run_event)

    def _exchange_loop(self, t0: int, channel: int, interval_true: int) -> int:
        """Play out the packet exchanges of one event; returns its end time.

        Follows Figure 3: the coordinator opens every exchange; the
        subordinate answers one T_IFS later; a CRC error on either side
        closes the event immediately (BT 5.2 Vol 6 Part B §4.5.6).
        """
        coord, sub = self.coord, self.sub
        budget_end = min(
            self._event_budget_end(
                coord.controller, self._coord_activity, t0, interval_true
            ),
            self._event_budget_end(
                sub.controller, self._sub_activity, t0, interval_true
            ),
        )
        medium = self.medium
        t = t0
        first = True
        coord_active = False
        sub_active = False
        lost_c = lost_s = False
        while True:
            # The first exchange always runs in full: the coordinator opens
            # the event and a started packet completes even when it overruns
            # a co-located connection's anchor (that connection's event is
            # then skipped -- the load-induced starvation behind §5.2's
            # connection drops and "beneficial reconnects").  Additional
            # exchanges are only *started* while they fit the budget (the
            # `needed` check below).
            retx_c = TRACE.enabled and coord._outstanding is not None
            pdu_c = coord.build_tx_pdu()
            if TRACE.enabled:
                coord._trace_tx(pdu_c, t, retx_c)
            if not pdu_c.is_empty:
                coord.stats.per_channel[channel][0] += 1
                if METRICS.enabled:
                    METRICS.inc_vec(
                        coord.controller.name, "ble.pdus_by_channel", channel,
                        label_key="channel",
                    )
            dur_c = ble_air_time_ns(len(pdu_c.payload), self.phy)
            lost_c = medium.packet_lost(channel, len(pdu_c.payload) + 10)
            t += dur_c
            if lost_c:
                if TRACE.enabled:
                    TRACE.emit(
                        t, "ble", "crc_loss",
                        conn=self.conn_id, role=sub.role.value,
                        channel=channel, len=len(pdu_c.payload),
                    )
                coord.stats.events_crc_abort += 1
                if METRICS.enabled:
                    METRICS.inc(
                        coord.controller.name, "ble.conn_events_crc_abort"
                    )
                if coord.controller.config.abort_event_on_crc_error:
                    break
                # ablation: keep the event open and retry after one IFS
                if t + T_IFS_NS + MIN_EXCHANGE_NS > budget_end:
                    break
                t += T_IFS_NS
                continue
            if first:
                self._resync_sub(t0)
            sub.process_rx(pdu_c, t, channel)
            sub_active = True

            t += T_IFS_NS
            retx_s = TRACE.enabled and sub._outstanding is not None
            pdu_s = sub.build_tx_pdu()
            if TRACE.enabled:
                sub._trace_tx(pdu_s, t, retx_s)
            if not pdu_s.is_empty:
                sub.stats.per_channel[channel][0] += 1
                if METRICS.enabled:
                    METRICS.inc_vec(
                        sub.controller.name, "ble.pdus_by_channel", channel,
                        label_key="channel",
                    )
            dur_s = ble_air_time_ns(len(pdu_s.payload), self.phy)
            lost_s = medium.packet_lost(channel, len(pdu_s.payload) + 10)
            t += dur_s
            if lost_s:
                if TRACE.enabled:
                    TRACE.emit(
                        t, "ble", "crc_loss",
                        conn=self.conn_id, role=coord.role.value,
                        channel=channel, len=len(pdu_s.payload),
                    )
                sub.stats.events_crc_abort += 1
                if METRICS.enabled:
                    METRICS.inc(
                        sub.controller.name, "ble.conn_events_crc_abort"
                    )
                if coord.controller.config.abort_event_on_crc_error:
                    break
                if t + T_IFS_NS + MIN_EXCHANGE_NS > budget_end:
                    break
                t += T_IFS_NS
                continue
            coord.process_rx(pdu_s, t, channel)
            coord_active = True
            first = False

            if not (coord.has_data or sub.has_data):
                break
            needed = (
                T_IFS_NS
                + ble_air_time_ns(coord.next_tx_len(), self.phy)
                + T_IFS_NS
                + ble_air_time_ns(sub.next_tx_len(), self.phy)
            )
            if t + needed > budget_end:
                break
            t += T_IFS_NS
        if coord_active:
            coord.stats.events_active += 1
        if sub_active:
            sub.stats.events_active += 1
        event_row = coord.stats.per_channel_events[channel]
        event_row[0] += 1
        if lost_c or lost_s:
            event_row[1] += 1
        return t

    def _resync_sub(self, anchor_true: int) -> None:
        """The subordinate locks onto the coordinator's anchor (first RX)."""
        self._sync_true = anchor_true
        self._sync_counter = self.event_counter
