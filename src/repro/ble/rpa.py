"""Resolvable-private-address rotation: identities vs. on-air addresses.

Real BLE privacy (BT 5.2 Vol 3 Part C §10.7) rotates the advertised MAC
every few minutes; bonded peers resolve the new resolvable private address
(RPA) back to the peer's *identity address* with the stored IRK and carry
on as if nothing happened.  The simulation models the observable split
without the crypto:

* :attr:`~repro.ble.controller.BleController.identity` is the immutable
  identity address (the node id; it derives the IPv6 IID per RFC 7668 and
  keys every table above the air interface),
* :attr:`~repro.ble.controller.BleController.addr` is the *current on-air*
  address -- the only thing the medium, the geometry, and the advertising
  delivery path see,
* an :class:`IdentityResolver` per controller plays the role of the
  resolving list: it remembers the last on-air address observed per peer
  identity and emits one ``ble.rpa_resolve`` trace record whenever a peer
  shows up under a fresh address (exactly once per rotation per observer).

Upper layers (netif, statconn, dynconn, RPL, the experiment sampler) key
peers by identity exclusively, so peering, routing state, and link series
survive a MAC change -- the reconnection edge case this module exists to
exercise.  Before the first rotation ``identity == addr``, which keeps
every pre-rotation trace byte-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.trace.tracer import TRACE

if TYPE_CHECKING:  # pragma: no cover
    from repro.ble.controller import BleController


class IdentityResolver:
    """One node's resolving list: peer identity -> last seen on-air address."""

    def __init__(self, owner: "BleController") -> None:
        self.owner = owner
        self._known: Dict[int, int] = {}
        #: Successful re-resolutions (address changed for a known identity).
        self.resolutions = 0

    def observe(self, peer: "BleController") -> None:
        """Note the peer's current on-air address; trace a change.

        Called from the scan path (the only place a node *sees* another
        node's advertised address).  The first sighting just records the
        mapping; a sighting under a *different* address is a resolution
        event -- emitted exactly once per rotation per observer, which the
        ``reattach`` invariant checker counts.
        """
        ident = peer.identity
        current = peer.addr
        previous = self._known.get(ident)
        if previous == current:
            return
        self._known[ident] = current
        if previous is None:
            return
        self.resolutions += 1
        if TRACE.enabled:
            TRACE.emit(
                self.owner.sim.now, "ble", "rpa_resolve",
                node=self.owner.name, identity=ident,
                old=previous, new=current,
            )

    def current_addr(self, identity: int) -> int:
        """The last observed on-air address of ``identity`` (or itself)."""
        return self._known.get(identity, identity)
