"""Adaptive frequency hopping (the ADH the standard leaves to implementers).

BT allows connections to restrict their channel maps, but "does not
describe how to implement the ADH algorithms -- it leaves this completely
to implementers of controllers" (paper §2.2).  The paper's testbed worked
around its permanently jammed channel 22 by *static* exclusion, and §7
points at Spörk et al.'s adaptive-hopping results as a promising extension.

:class:`AfhManager` is that extension: the connection coordinator
periodically evaluates the per-channel connection-event abort rates,
blacklists channels whose abort rate crosses a threshold, pushes the
restricted map to the peer via the channel-map-update control procedure,
and periodically paroles one blacklisted channel to re-probe it (so the map
recovers when interference moves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.ble.chanmap import ChannelMap
from repro.ble.conn import Connection
from repro.phy.channels import BLE_NUM_DATA_CHANNELS
from repro.sim.units import SEC


@dataclass
class AfhConfig:
    """AFH policy knobs.

    :param eval_interval_ns: how often the channel statistics are judged.
    :param abort_rate_threshold: blacklist a channel whose connection events
        abort more often than this.
    :param min_samples: events needed on a channel before judging it.
    :param min_channels: never restrict the map below this many channels
        (the CSA needs room to hop; Bluetooth requires >= 2, we keep more).
    :param probation_evals: every this-many evaluations, re-admit one
        blacklisted channel to probe whether the interference cleared.
    """

    eval_interval_ns: int = 10 * SEC
    abort_rate_threshold: float = 0.5
    min_samples: int = 8
    min_channels: int = 10
    probation_evals: int = 6


class AfhManager:
    """PER-driven channel-map adaptation for one connection."""

    def __init__(self, conn: Connection, config: Optional[AfhConfig] = None):
        self.conn = conn
        self.config = config or AfhConfig()
        self.blacklist: Set[int] = set()
        self._last_counts: List[List[int]] = [
            [0, 0] for _ in range(BLE_NUM_DATA_CHANNELS)
        ]
        self._evals = 0
        self._running = False
        # Statistics.
        self.map_updates = 0
        self.paroles = 0

    @property
    def cluster_addr(self) -> int:
        """Dispatch-cluster owner (evaluation rides the connection)."""
        return self.conn.cluster_addr

    def start(self) -> None:
        """Begin periodic evaluation (coordinator side)."""
        if self._running:
            return
        self._running = True
        self.conn.sim.after(self.config.eval_interval_ns, self._evaluate)

    def stop(self) -> None:
        """Stop adapting (the current map stays in force)."""
        self._running = False

    # -- internals --------------------------------------------------------------

    def _evaluate(self) -> None:
        if not self._running or not self.conn.open:
            return
        self._evals += 1
        stats = self.conn.coord.stats.per_channel_events
        changed = False
        for channel in range(BLE_NUM_DATA_CHANNELS):
            runs, aborts = stats[channel]
            d_runs = runs - self._last_counts[channel][0]
            d_aborts = aborts - self._last_counts[channel][1]
            self._last_counts[channel] = [runs, aborts]
            if channel in self.blacklist:
                continue
            if d_runs >= self.config.min_samples:
                if d_aborts / d_runs > self.config.abort_rate_threshold:
                    if self._usable_count() - 1 >= self.config.min_channels:
                        self.blacklist.add(channel)
                        changed = True
        # probation: periodically re-admit the longest-serving entry
        if (
            self.blacklist
            and self._evals % self.config.probation_evals == 0
        ):
            paroled = min(self.blacklist)
            self.blacklist.discard(paroled)
            self.paroles += 1
            changed = True
        if changed:
            self._push_map()
        self.conn.sim.after(self.config.eval_interval_ns, self._evaluate)

    def _usable_count(self) -> int:
        return BLE_NUM_DATA_CHANNELS - len(self.blacklist)

    def _push_map(self) -> None:
        new_map = ChannelMap.excluding(self.blacklist)
        self.map_updates += 1
        self.conn.request_chan_map_update(new_map)
