"""Configuration objects for the BLE controller model."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.ble.chanmap import ChannelMap
from repro.phy.frames import BlePhyMode
from repro.sim.units import MSEC, USEC


class SchedulerPolicy(enum.Enum):
    """How a controller arbitrates overlapping radio demands (§6.1).

    The Bluetooth standard leaves this to implementers.  The paper describes
    the two observable outcomes when connection events of two connections
    overlap:

    * ``EARLIEST_WINS`` -- the event whose anchor comes first runs to (at
      least) one full packet exchange; the later event is skipped entirely.
      With identical connection intervals and slow relative clock drift the
      same connection loses every time, starving it until the supervision
      timeout kills it (paper choice (i): random connection losses).
    * ``ALTERNATE`` -- the controller grants the radio to whichever
      connection has been skipped more often, so overlapping connections
      alternate; each one transfers at every second event, halving its link
      capacity (paper choice (ii): the ~50 % link PDR plateau of Fig. 12).
    """

    EARLIEST_WINS = "earliest-wins"
    ALTERNATE = "alternate"


class CsaVariant(enum.Enum):
    """Which channel selection algorithm a connection uses."""

    CSA1 = "csa1"
    CSA2 = "csa2"


#: The connection interval quantum: all intervals are multiples of 1.25 ms.
CONN_INTERVAL_UNIT_NS: int = 1_250_000
#: Smallest interval the standard allows (7.5 ms), used by §6.2's worst case.
CONN_INTERVAL_MIN_NS: int = 6 * CONN_INTERVAL_UNIT_NS
#: Largest interval the standard allows (4.0 s).
CONN_INTERVAL_MAX_NS: int = 3200 * CONN_INTERVAL_UNIT_NS


def quantize_interval_ns(interval_ns: int) -> int:
    """Clamp and round an interval to the standard's 1.25 ms grid."""
    units = max(1, round(interval_ns / CONN_INTERVAL_UNIT_NS))
    quantized = units * CONN_INTERVAL_UNIT_NS
    return min(max(quantized, CONN_INTERVAL_MIN_NS), CONN_INTERVAL_MAX_NS)


@dataclass(frozen=True)
class ConnParams:
    """Per-connection timing parameters, dictated by the coordinator (§2.2).

    :param interval_ns: nominal connection interval (local clock units; both
        peers count it on their own drifting clocks -- the root cause of
        connection shading).
    :param latency: subordinate latency, the number of connection events the
        subordinate may skip when it has nothing to send.
    :param supervision_timeout_ns: declare the connection lost when no valid
        packet arrives for this long.  ``None`` derives the RIOT/statconn
        style default ``max(6 * interval, 100 ms)``.
    """

    interval_ns: int = 75 * MSEC
    latency: int = 0
    supervision_timeout_ns: Optional[int] = None

    def effective_supervision_timeout_ns(self) -> int:
        """Resolve the supervision timeout default."""
        if self.supervision_timeout_ns is not None:
            return self.supervision_timeout_ns
        return max(6 * self.interval_ns * (self.latency + 1), 100 * MSEC)


@dataclass
class BleConfig:
    """Node-level controller configuration (NimBLE-equivalent knobs, §4.2).

    :param phy: PHY mode; the paper uses LE 1M throughout.
    :param scheduler_policy: overlap arbitration, see :class:`SchedulerPolicy`.
    :param csa: channel selection algorithm variant.
    :param chan_map: data channels this node uses (paper: all but 22).
    :param declared_sca_ppm: sleep clock accuracy *declared* to peers; window
        widening grows at the sum of both peers' declared SCA.
    :param window_widening_base_ns: constant term of the receive window.
    :param max_event_len_ns: hard cap of a single connection event; 0 means
        "until the next radio demand" (NimBLE behaviour with one connection).
    :param buffer_pool_bytes: LL/L2CAP transmit buffer pool (NimBLE msys was
        configured to 6600 bytes in the paper).
    :param max_ll_payload: LL data payload cap; 251 with the data length
        extension enabled (the paper's default), 27 without.
    :param adv_interval_ns: advertising interval of the statconn subordinate
      role (90 ms in the paper).
    :param scan_interval_ns / scan_window_ns: statconn coordinator role scan
      timing (100 ms / 100 ms in the paper == continuous scanning).
    """

    phy: BlePhyMode = BlePhyMode.LE_1M
    scheduler_policy: SchedulerPolicy = SchedulerPolicy.EARLIEST_WINS
    csa: CsaVariant = CsaVariant.CSA2
    chan_map: ChannelMap = field(default_factory=ChannelMap.all_channels)
    declared_sca_ppm: float = 50.0
    window_widening_base_ns: int = 32 * USEC
    max_event_len_ns: int = 0
    buffer_pool_bytes: int = 6600
    max_ll_payload: int = 251
    adv_interval_ns: int = 90 * MSEC
    scan_interval_ns: int = 100 * MSEC
    scan_window_ns: int = 100 * MSEC
    #: BT 5.2 Vol 6 Part B §4.5.6: a CRC error closes the connection event
    #: even when packets still wait -- the mechanism behind the burst
    #: collapse of §5.2 (Fig. 9b).  Disable for the ablation bench only.
    abort_event_on_crc_error: bool = True
