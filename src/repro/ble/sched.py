"""Per-node radio scheduler.

Every node owns exactly one transceiver.  Connection events of different
connections -- plus advertising events -- compete for it.  The scheduler

* tracks the single currently-claimed busy interval (composite connection
  events claim their full computed duration up front),
* answers "when does some *other* activity need the radio next?" so a
  running connection event can bound its packet exchanges (the capacity
  fluctuation of Figure 4), and
* tracks per-activity skip streaks so the :class:`~repro.ble.config.
  SchedulerPolicy` can starve (EARLIEST_WINS) or alternate (ALTERNATE)
  overlapping events -- the two behaviours the paper observes when
  connection shading strikes (§6.1).
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Tuple

from repro.obs.registry import METRICS
from repro.trace.tracer import TRACE

#: The busy-until sentinel of a fail-stopped radio: far beyond any
#: simulated horizon, so every is_free() check denies until resume().
FAIL_STOP_NS: int = 1 << 62


class RadioActivity(Protocol):
    """Anything that periodically needs the node's radio."""

    #: Consecutive times this activity was denied the radio (reset on a
    #: successful grant); the ALTERNATE policy uses it as priority.
    consec_skips: int

    def next_radio_time(self, after_ns: int) -> Optional[int]:
        """Next time (> after_ns, true ns) this activity wants the radio.

        ``None`` if the activity is dormant.
        """
        ...


class RadioScheduler:
    """Single-transceiver arbitration for one node."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._activities: List[RadioActivity] = []
        self._busy_until: int = 0
        self._busy_owner: Optional[RadioActivity] = None
        #: Total radio-busy nanoseconds (energy accounting input).
        self.busy_ns_total: int = 0
        #: Number of claims granted.
        self.claims: int = 0
        #: Number of times an activity found the radio busy.
        self.denials: int = 0

    def register(self, activity: RadioActivity) -> None:
        """Add an activity to the demand table."""
        if activity not in self._activities:
            self._activities.append(activity)

    def unregister(self, activity: RadioActivity) -> None:
        """Remove an activity (connection closed, advertising stopped)."""
        if activity in self._activities:
            self._activities.remove(activity)

    def is_free(self, at_ns: int) -> bool:
        """Whether the radio is unclaimed at ``at_ns``."""
        return at_ns >= self._busy_until

    @property
    def failed(self) -> bool:
        """Whether the radio is fail-stopped (see :meth:`fail_stop`)."""
        return self._busy_until >= FAIL_STOP_NS

    def fail_stop(self) -> None:
        """Silence the radio mid-whatever: hard fail-stop fault injection.

        The transceiver is marked busy until the far side of the simulated
        universe, so every connection event and advertising event on this
        node is denied from now on -- exactly the observable behaviour of a
        node whose radio died without a disconnect.  Peers discover the
        death the way the spec makes them: supervision timeout.  The claim
        currently in progress (if any) is left accounted; no state other
        than the busy horizon changes, so :meth:`resume` is exact.
        """
        self._busy_until = FAIL_STOP_NS
        self._busy_owner = None

    def resume(self, now_ns: int) -> None:
        """Revive a fail-stopped radio at ``now_ns`` (idempotent)."""
        if self._busy_until >= FAIL_STOP_NS:
            self._busy_until = now_ns

    @property
    def busy_until(self) -> int:
        """End of the current claim (past values mean: free now)."""
        return self._busy_until

    def claim(self, owner: RadioActivity, start_ns: int, end_ns: int) -> None:
        """Mark the radio busy for [start, end).

        The caller must have checked :meth:`is_free` -- overlapping claims
        indicate a simulation bug and raise.
        """
        if start_ns < self._busy_until:
            raise RuntimeError(
                f"radio {self.name}: overlapping claim "
                f"[{start_ns}, {end_ns}) while busy until {self._busy_until}"
            )
        if end_ns < start_ns:
            raise RuntimeError(f"radio {self.name}: negative claim duration")
        if TRACE.enabled:
            TRACE.emit(
                start_ns, "ble", "radio_claim",
                node=self.name, start=start_ns, end=end_ns,
            )
        self._busy_until = end_ns
        self._busy_owner = owner
        self.busy_ns_total += end_ns - start_ns
        self.claims += 1
        owner.consec_skips = 0
        if METRICS.enabled:
            METRICS.inc(self.name, "radio.claims")
            METRICS.inc(self.name, "radio.busy_ns", end_ns - start_ns)

    def deny(self, activity: RadioActivity) -> None:
        """Record that ``activity`` was denied the radio (skip streak +1)."""
        activity.consec_skips += 1
        self.denials += 1
        if TRACE.enabled:
            TRACE.emit(None, "ble", "radio_deny", node=self.name)
        if METRICS.enabled:
            METRICS.inc(self.name, "radio.denials")

    def next_demand_after(
        self, after_ns: int, exclude: Optional[RadioActivity] = None
    ) -> Tuple[Optional[int], Optional[RadioActivity]]:
        """Earliest future radio demand of any *other* activity.

        :returns: ``(time_ns, activity)`` or ``(None, None)`` when no other
            activity has pending demand.
        """
        activities = self._activities
        # Common fast path: a leaf node whose only activity is the asking
        # connection has, by definition, no competing demand.
        if len(activities) == 1 and activities[0] is exclude:
            return None, None
        best_t: Optional[int] = None
        best_a: Optional[RadioActivity] = None
        for activity in activities:
            if activity is exclude:
                continue
            t = activity.next_radio_time(after_ns)
            if t is not None and (best_t is None or t < best_t):
                best_t = t
                best_a = activity
        return best_t, best_a
