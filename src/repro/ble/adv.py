"""Advertising, scanning, and connection establishment.

statconn (§3) keeps every configured link alive by letting the parent
(subordinate role) advertise and the child (coordinator role) scan and
initiate.  The paper's configuration -- 90 ms advertising interval, 100 ms
scan interval *and* window, i.e. continuous scanning -- yields the 10-100 ms
reconnect delay reported in §4.2, which this module reproduces:

* an advertising event fires every ``adv_interval + advDelay`` with
  ``advDelay ~ U(0, 10 ms)`` (BT 5.2 Vol 6 Part B §4.4.2.2.1) and transmits
  one ADV_IND on each of the three advertising channels;
* a continuously scanning initiator hears the event if its radio is idle and
  the PDU survives the medium, then answers with CONNECT_IND;
* the connection's first anchor point lies one ``transmitWindowDelay``
  (1.25 ms) plus a coordinator-chosen offset after the CONNECT_IND.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Optional

from repro.ble.config import ConnParams
from repro.ble.conn import Connection
from repro.phy.channels import BLE_ADV_CHANNELS
from repro.phy.frames import T_IFS_NS, ble_adv_air_time_ns
from repro.sim.kernel import Timer
from repro.sim.units import MSEC, USEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.ble.controller import BleController

#: Mandatory delay between CONNECT_IND and the transmit window (BT spec).
TRANSMIT_WINDOW_DELAY_NS: int = 1_250_000
#: CONNECT_IND payload length (LLData): 22 bytes + 12 header/addresses.
CONNECT_IND_PAYLOAD: int = 34
#: Upper bound of the pseudo-random per-event advDelay (BT 5.2 Vol 6
#: Part B §4.4.2.2.1: 0..10 ms).
ADV_DELAY_MAX_NS: int = 10 * MSEC
#: The BLE time-slot quantum the transmit-window offset is counted in.
TIME_SLOT_NS: int = 625 * USEC
#: Cap on the randomized first-anchor offset: one connection interval, but
#: never more than the spec's 10 ms transmit-window span.
WIN_OFFSET_CAP_NS: int = 10 * MSEC


class Advertiser:
    """Periodic connectable advertising (the statconn subordinate role).

    :param controller: the advertising node.
    :param payload_len: AdvData length in bytes (affects air time only).
    :param on_connected: called with the new :class:`Connection` when an
        initiator completes the handshake.
    """

    def __init__(
        self,
        controller: "BleController",
        rng: random.Random,
        payload_len: int = 0,
        on_connected: Optional[Callable[[Connection], None]] = None,
    ) -> None:
        self.controller = controller
        self.rng = rng
        self.payload_len = payload_len
        self.on_connected = on_connected
        self.active = False
        self.consec_skips = 0  # RadioActivity protocol
        self._timer: Optional[Timer] = None
        self._next_event_true: Optional[int] = None
        #: Advertising events actually transmitted (energy accounting).
        self.events_sent = 0

    # -- RadioActivity protocol -----------------------------------------
    def next_radio_time(self, after_ns: int) -> Optional[int]:
        """Scheduler demand: the upcoming advertising event, if any."""
        if not self.active or self._next_event_true is None:
            return None
        return self._next_event_true if self._next_event_true > after_ns else None

    @property
    def cluster_addr(self) -> int:
        """Dispatch-cluster owner of advertising timers.

        Every scanner this advertiser can reach is a spatial neighbor, so
        the whole advertising exchange stays inside the advertiser's
        cluster (geometry components seed the ClusterMap).
        """
        return self.controller.identity

    # -- control ----------------------------------------------------------
    def start(self) -> None:
        """Begin advertising (first event after a random initial delay)."""
        if self.active:
            return
        self.active = True
        self.controller.scheduler.register(self)
        first = self.controller.sim.now + self.rng.randrange(
            0, self.controller.config.adv_interval_ns
        )
        self._schedule(first)

    def stop(self) -> None:
        """Stop advertising and withdraw from the scheduler."""
        if not self.active:
            return
        self.active = False
        self.controller.scheduler.unregister(self)
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None  # cancelled handles must not be retained
        self._next_event_true = None

    def _schedule(self, when: int) -> None:
        self._next_event_true = when
        self._timer = self.controller.sim.at(when, self._adv_event)

    def _event_duration_ns(self) -> int:
        """Three ADV_IND PDUs plus inter-channel turnaround."""
        per_pdu = ble_adv_air_time_ns(self.payload_len)
        return 3 * per_pdu + 2 * T_IFS_NS

    def _adv_event(self) -> None:
        """Transmit one advertising event and poll for interested scanners."""
        if not self.active:
            return
        sim = self.controller.sim
        now = sim.now
        duration = self._event_duration_ns()
        connected = False
        if self.controller.scheduler.is_free(now):
            self.controller.scheduler.claim(self, now, now + duration)
            self.controller.note_adv_event(duration)
            self.events_sent += 1
            connected = self._offer_to_scanners(now)
        else:
            self.controller.scheduler.deny(self)
        if connected or not self.active:
            return
        adv_delay = self.rng.randrange(0, ADV_DELAY_MAX_NS)
        self._schedule(now + self.controller.config.adv_interval_ns + adv_delay)

    def _offer_to_scanners(self, now: int) -> bool:
        """Let listening initiators react to this advertising event.

        :returns: True when a connection was established (advertising then
            stops, mirroring the controller behaviour on CONNECT_IND).

        Candidate scanners come from the medium's delivery registry
        (:meth:`~repro.phy.medium.BleMedium.scanners_hearing`): all of them
        on the paper's all-in-range plane, only the advertiser's spatial
        neighbors on a geometry-equipped medium.
        """
        medium = self.controller.medium
        for scanner in medium.scanners_hearing(self.controller.addr):
            if not scanner.wants(self.controller):
                continue
            if not scanner.controller.scheduler.is_free(now):
                continue
            # The scanner dwells on one of the three advertising channels;
            # the event covers all three, so channel match is guaranteed --
            # only air loss can break it.
            channel = scanner.current_channel(now)
            if medium.packet_lost(
                channel, 16 + self.payload_len, self.controller.identity
            ):
                continue
            # CONNECT_IND back to us, one IFS later, same channel.
            if medium.packet_lost(
                channel, CONNECT_IND_PAYLOAD, self.controller.identity
            ):
                continue
            conn = scanner.complete_connection(self, now)
            if conn is not None:
                return True
        return False


class Scanner:
    """A continuously scanning initiator (the statconn coordinator role).

    :param controller: the scanning node.
    :param target_addr: only advertisements from this address are answered.
    :param params_factory: produces the :class:`ConnParams` for the new
        connection -- this is where §6.3's randomized-interval policy hooks
        in.
    :param on_connected: completion callback.
    """

    def __init__(
        self,
        controller: "BleController",
        rng: random.Random,
        target_addr: Optional[int],
        params_factory: Callable[[], ConnParams],
        on_connected: Optional[Callable[[Connection], None]] = None,
        accept: Optional[Callable[[int], bool]] = None,
    ) -> None:
        self.controller = controller
        self.rng = rng
        #: ``None`` scans for *any* advertiser (wildcard; used by the
        #: dynamic connection manager), optionally filtered by ``accept``.
        self.target_addr = target_addr
        self.params_factory = params_factory
        self.on_connected = on_connected
        self.accept = accept
        self.active = False

    @property
    def cluster_addr(self) -> int:
        """Dispatch-cluster owner of this scanner's work."""
        return self.controller.identity

    def start(self) -> None:
        """Begin scanning (registers with the shared medium)."""
        if self.active:
            return
        self.active = True
        self.controller.medium.register_scanner(self)

    def stop(self) -> None:
        """Stop scanning."""
        if not self.active:
            return
        self.active = False
        self.controller.medium.unregister_scanner(self)

    def wants(self, advertiser: "BleController") -> bool:
        """Whether this scanner is hunting for ``advertiser``.

        Matching is by *identity*: the scan path is where RPA resolution
        happens (see :mod:`repro.ble.rpa`), so a targeted scanner keeps
        finding its peer after the peer rotated its on-air address, and the
        ``accept`` filter sees stable identities.
        """
        if not self.active:
            return False
        identity = advertiser.identity
        if identity == self.controller.identity:
            return False
        self.controller.resolver.observe(advertiser)
        if self.target_addr is not None and identity != self.target_addr:
            return False
        if self.controller.connection_to(identity) is not None:
            return False
        return self.accept is None or self.accept(identity)

    def current_channel(self, now: int) -> int:
        """The advertising channel the scanner currently dwells on.

        The scanner rotates through 37/38/39, one per scan interval.
        """
        interval = self.controller.config.scan_interval_ns
        return BLE_ADV_CHANNELS[(now // interval) % len(BLE_ADV_CHANNELS)]

    def complete_connection(
        self, advertiser: Advertiser, now: int
    ) -> Optional[Connection]:
        """Finish the CONNECT_IND handshake and create the connection."""
        params = self.params_factory()
        offset_cap = min(params.interval_ns, WIN_OFFSET_CAP_NS)
        offset_units = self.rng.randrange(0, max(1, offset_cap // TIME_SLOT_NS))
        anchor0 = now + TRANSMIT_WINDOW_DELAY_NS + offset_units * TIME_SLOT_NS
        access_address = self.rng.getrandbits(32)
        hop = self.rng.randrange(5, 17)
        # CONNECT_IND ends both advertising and scanning *before* the
        # connection exists -- open-listeners must observe that state.
        advertiser.stop()
        self.stop()
        conn = Connection(
            sim=self.controller.sim,
            coordinator=self.controller,
            subordinate=advertiser.controller,
            params=params,
            access_address=access_address,
            anchor0_true=anchor0,
            hop_increment=hop,
        )
        if self.on_connected is not None:
            self.on_connected(conn)
        if advertiser.on_connected is not None:
            advertiser.on_connected(conn)
        return conn
