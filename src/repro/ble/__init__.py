"""BLE link layer (controller) model.

This package reproduces the connection-oriented BLE machinery the paper's
experiments exercise (§2):

* :mod:`repro.ble.pdu` -- data / advertising PDU structures and header bits,
* :mod:`repro.ble.chanmap` -- the 37-bit data channel map,
* :mod:`repro.ble.csa` -- channel selection algorithms #1 and #2,
* :mod:`repro.ble.sched` -- the per-node radio scheduler that arbitrates
  overlapping connection events (the mechanism behind *connection shading*),
* :mod:`repro.ble.conn` -- the connection state machine: connection events,
  anchor points, SN/NESN acknowledgement, More Data, event abort on CRC
  error, window widening, supervision timeout,
* :mod:`repro.ble.adv` -- advertising and scanning, connection establishment,
* :mod:`repro.ble.llcp` -- the connection parameter update control procedure,
* :mod:`repro.ble.controller` -- the per-node facade tying it all together
  (the NimBLE-equivalent of Figure 5).
"""

from repro.ble.config import BleConfig, ConnParams, SchedulerPolicy
from repro.ble.chanmap import ChannelMap
from repro.ble.csa import Csa1, Csa2, ChannelSelection
from repro.ble.controller import BleController
from repro.ble.conn import Connection, DisconnectReason, Role
from repro.ble.afh import AfhManager, AfhConfig

__all__ = [
    "BleConfig",
    "ConnParams",
    "SchedulerPolicy",
    "ChannelMap",
    "Csa1",
    "Csa2",
    "ChannelSelection",
    "BleController",
    "Connection",
    "DisconnectReason",
    "Role",
    "AfhManager",
    "AfhConfig",
]
