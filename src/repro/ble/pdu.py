"""BLE PDU structures.

Only the fields that influence timing and reliability are modelled:
payload length (air time), the LLID (start / continuation of an L2CAP PDU),
the SN/NESN acknowledgement bits, and the More Data flag.  Payloads are real
``bytes`` so upper layers run genuine codecs over the link.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class Llid(enum.IntEnum):
    """LLID field of the data channel PDU header (BT 5.2 Vol 6 Part B §4.5.1)."""

    #: Continuation fragment of an L2CAP message, or an empty PDU.
    DATA_CONT = 0b01
    #: Start of an L2CAP message (or a complete one).
    DATA_START = 0b10
    #: LL control PDU (connection parameter update, channel map update, ...).
    CTRL = 0b11


@dataclass(slots=True)
class DataPdu:
    """One data channel PDU queued for transfer on a connection.

    :param payload: LL payload bytes (0..251 with the data length extension).
    :param llid: start / continuation / control marker.
    :param sn: sequence number bit, stamped by the connection at TX time.
    :param nesn: next-expected-sequence-number bit, stamped at TX time.
    :param md: More Data flag, stamped at TX time.
    :param tag: opaque upper-layer cookie (used for delivery callbacks).
    """

    payload: bytes = b""
    llid: Llid = Llid.DATA_CONT
    sn: int = 0
    nesn: int = 0
    md: bool = False
    tag: Optional[object] = None

    @property
    def is_empty(self) -> bool:
        """True for the empty PDUs exchanged by idle connections (§2.2)."""
        return len(self.payload) == 0 and self.llid is Llid.DATA_CONT

    def __len__(self) -> int:
        return len(self.payload)


class AdvPduType(enum.IntEnum):
    """Advertising channel PDU types used by connection establishment."""

    ADV_IND = 0x0
    SCAN_REQ = 0x3
    SCAN_RSP = 0x4
    CONNECT_IND = 0x5


@dataclass
class AdvPdu:
    """An advertising channel PDU.

    :param pdu_type: one of :class:`AdvPduType`.
    :param advertiser_addr: link-layer address of the advertising node.
    :param initiator_addr: set on CONNECT_IND, else ``None``.
    :param payload: AdvData bytes (0..31 for legacy advertising).
    """

    pdu_type: AdvPduType
    advertiser_addr: int
    initiator_addr: Optional[int] = None
    payload: bytes = field(default=b"", repr=False)

    @property
    def air_payload_len(self) -> int:
        """AdvData length used for air-time computation."""
        return len(self.payload)
