"""Per-node BLE controller facade.

A :class:`BleController` bundles everything one node contributes to the BLE
plane: its drifting sleep clock, its single-transceiver scheduler, its
buffer pool, its live connections, and its advertising / scanning machinery.
It is the simulation counterpart of the NimBLE host+controller pair in the
paper's software architecture (Figure 5); upper layers (L2CAP, the
``nimble_netif`` equivalent) talk only to this facade.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from repro.ble.adv import Advertiser, Scanner
from repro.ble.bufpool import BufferPool
from repro.ble.config import BleConfig, ConnParams
from repro.ble.conn import Connection, DisconnectReason, Role
from repro.ble.rpa import IdentityResolver
from repro.ble.sched import RadioScheduler
from repro.phy.medium import BleMedium
from repro.sim.clock import DriftingClock
from repro.sim.kernel import Simulator


class BleController:
    """One node's BLE stack below L2CAP.

    :param sim: simulation kernel.
    :param medium: the shared radio plane.
    :param addr: link-layer address (any hashable int).
    :param clock: the node's sleep clock (drift source).
    :param config: controller configuration; defaults are the paper's.
    :param rng: random stream for advertising jitter / access addresses.
    :param name: diagnostic label.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: BleMedium,
        addr: int,
        clock: Optional[DriftingClock] = None,
        config: Optional[BleConfig] = None,
        rng: Optional[random.Random] = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.medium = medium
        #: The immutable identity address (RFC 7668 IID source; every table
        #: above the air interface keys peers by it).  See :mod:`repro.ble.rpa`.
        self.identity = addr
        #: The *current on-air* address; equals the identity until the first
        #: :meth:`rotate_address`.  Only the medium/geometry plane uses it.
        self.addr = addr
        medium.register_node(addr, self)
        self.name = name or f"ble-{addr}"
        self.resolver = IdentityResolver(self)
        #: Completed address rotations (diagnostics).
        self.rotations = 0
        self.clock = clock or DriftingClock(sim)
        self.config = config or BleConfig()
        self.rng = rng or random.Random(addr)
        self.scheduler = RadioScheduler(self.name)
        self.buffer_pool = BufferPool(self.config.buffer_pool_bytes, f"{self.name}.msys")
        self.connections: List[Connection] = []
        #: Subscribers called with (conn) when a connection opens here.
        self.conn_open_listeners: List[Callable[[Connection], None]] = []
        #: Subscribers called with (conn, reason) when a connection closes.
        self.conn_close_listeners: List[
            Callable[[Connection, DisconnectReason], None]
        ] = []
        # Energy accounting inputs (see repro.energy).
        self.conn_events_coord = 0
        self.conn_events_sub = 0
        self.conn_event_ns = 0
        self.adv_events = 0
        self.adv_ns = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BleController {self.name} conns={len(self.connections)}>"

    @property
    def cluster_addr(self) -> int:
        """Dispatch-cluster owner of this node's timers (see repro.sim.cluster).

        The *identity* address, not the rotating on-air address: cluster
        membership must be stable across RPA rotation, and the ClusterMap is
        seeded with identity addresses (initial on-air addresses) while
        :meth:`repro.sim.cluster.ClusterMap.note_alias` keeps rotated on-air
        addresses merged into the same cluster.
        """
        return self.identity

    # -- connection lifecycle (called by Connection) ----------------------

    def attach_connection(self, conn: Connection, activity) -> None:
        """Register a newly-established connection on this node."""
        self.connections.append(conn)
        self.scheduler.register(activity)
        for listener in list(self.conn_open_listeners):
            listener(conn)

    def detach_connection(self, conn: Connection, activity) -> None:
        """Remove a torn-down connection from this node."""
        if conn in self.connections:
            self.connections.remove(conn)
        self.scheduler.unregister(activity)

    def notify_closed(self, conn: Connection, reason: DisconnectReason) -> None:
        """Fan a connection-closed event out to subscribers."""
        for listener in list(self.conn_close_listeners):
            listener(conn, reason)

    def role_of(self, conn: Connection) -> Role:
        """This node's role on ``conn``."""
        return conn.endpoint_of(self).role

    def connection_to(self, peer_identity: int) -> Optional[Connection]:
        """The live connection to the peer with ``peer_identity``, if any."""
        for conn in self.connections:
            if conn.peer_of(self).identity == peer_identity:
                return conn
        return None

    def rotate_address(self, new_addr: int) -> None:
        """Adopt a fresh on-air address (RPA rotation; identity unchanged).

        The medium re-keys its node registry, any registered scanners, and
        the geometry position (invalidating the spatial index live); live
        connections are untouched -- they were established object-to-object
        and every upper-layer table keys by :attr:`identity`.
        """
        old = self.addr
        if new_addr == old:
            return
        self.medium.rotate_node(old, new_addr)
        self.addr = new_addr
        self.rotations += 1

    def used_intervals_ns(self) -> List[int]:
        """Connection intervals currently active on this node (§6.3 checks)."""
        return [conn.params.interval_ns for conn in self.connections]

    # -- energy accounting hooks ------------------------------------------

    def note_conn_event(self, role: Role, duration_ns: int) -> None:
        """Record one participated connection event (energy input, §5.4)."""
        if role is Role.COORDINATOR:
            self.conn_events_coord += 1
        else:
            self.conn_events_sub += 1
        self.conn_event_ns += max(0, duration_ns)

    def note_adv_event(self, duration_ns: int) -> None:
        """Record one transmitted advertising event (energy input, §5.4)."""
        self.adv_events += 1
        self.adv_ns += duration_ns

    # -- GAP-level operations ----------------------------------------------

    def advertise(
        self,
        payload_len: int = 0,
        on_connected: Optional[Callable[[Connection], None]] = None,
    ) -> Advertiser:
        """Start connectable advertising; returns the running advertiser."""
        adv = Advertiser(self, self.rng, payload_len, on_connected)
        adv.start()
        return adv

    def initiate(
        self,
        target_addr: Optional[int],
        params_factory: Callable[[], ConnParams],
        on_connected: Optional[Callable[[Connection], None]] = None,
        accept: Optional[Callable[[int], bool]] = None,
    ) -> Scanner:
        """Scan and connect; returns the running scanner.

        ``target_addr=None`` scans for *any* advertiser (optionally filtered
        by ``accept``) -- the dynamic connection manager's discovery mode.
        """
        scanner = Scanner(
            self, self.rng, target_addr, params_factory, on_connected, accept
        )
        scanner.start()
        return scanner
