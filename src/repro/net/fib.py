"""Static forwarding information base.

The paper configures IP routes manually so all traffic funnels towards the
tree root or the line end (§4.3); dynamic routing (RPL) is explicitly out of
scope there and here.  The table supports host routes, one default route,
and 64-bit-prefix routes, resolved in that order.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sixlowpan.ipv6 import Ipv6Address


class ForwardingTable:
    """Destination -> next-hop lookup with host / prefix / default routes."""

    def __init__(self) -> None:
        self._host_routes: Dict[Ipv6Address, Ipv6Address] = {}
        self._prefix_routes: Dict[bytes, Ipv6Address] = {}
        self._default: Optional[Ipv6Address] = None

    def add_host_route(self, dst: Ipv6Address, next_hop: Ipv6Address) -> None:
        """Route a single destination address via ``next_hop``."""
        self._host_routes[dst] = next_hop

    def add_prefix_route(self, prefix: bytes, next_hop: Ipv6Address) -> None:
        """Route a /64 prefix (8 bytes) via ``next_hop``."""
        if len(prefix) != 8:
            raise ValueError("prefix routes are /64: pass 8 bytes")
        self._prefix_routes[bytes(prefix)] = next_hop

    def set_default_route(self, next_hop: Ipv6Address) -> None:
        """Install the default route (used when nothing else matches)."""
        self._default = next_hop

    def clear_default_route(self) -> None:
        """Withdraw the default route (e.g. the RPL parent was lost)."""
        self._default = None

    def remove_host_route(self, dst: Ipv6Address) -> None:
        """Remove a host route (idempotent)."""
        self._host_routes.pop(dst, None)

    def lookup(self, dst: Ipv6Address) -> Optional[Ipv6Address]:
        """Next hop for ``dst``: host route, then /64, then default."""
        hop = self._host_routes.get(dst)
        if hop is not None:
            return hop
        hop = self._prefix_routes.get(dst.prefix)
        if hop is not None:
            return hop
        return self._default

    def __len__(self) -> int:
        return len(self._host_routes) + len(self._prefix_routes) + (
            1 if self._default else 0
        )
