"""The BLE network interface (the paper's ``nimble_netif``, §3).

One :class:`BleNetif` per node bridges the IP stack and the BLE controller:

* on connection open it attaches an L2CAP CoC to the link, installs
  neighbour-cache entries for the peer (RFC 7668 derives the IID from the
  device address, no address resolution needed), and starts forwarding;
* outbound packets are IPHC-compressed, charged against the GNRC packet
  buffer, and handed to the CoC; the buffer bytes are released only when the
  SDU is acknowledged on the link layer -- so a stalled link holds buffer
  space, which is precisely how the paper's overload losses arise (§5.2);
* on connection close all held buffer bytes are released and the neighbour
  entries are withdrawn.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.ble.conn import Connection, DisconnectReason
from repro.ble.controller import BleController
from repro.l2cap import CocConfig, L2capCoc
from repro.net.pktbuf import PacketBuffer
from repro.sixlowpan.adapt import BleAdaptation
from repro.sixlowpan.ipv6 import Ipv6Packet
from repro.spans.hub import SPANS
from repro.trace.tracer import TRACE

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.ip import Ipv6Stack


def coc_of(
    conn: Connection,
    config: Optional[CocConfig] = None,
    handshake: bool = False,
) -> L2capCoc:
    """The single shared CoC of a connection (created on first use).

    Both endpoints' netifs must drive the *same* channel object, so it is
    cached on the connection.
    """
    coc = getattr(conn, "_ipsp_coc", None)
    if coc is None:
        coc = L2capCoc(conn, config, handshake=handshake)
        conn._ipsp_coc = coc
    return coc


class BleNetif:
    """IPv6-over-BLE interface for one node.

    :param controller: the node's BLE controller.
    :param pktbuf: the node's GNRC packet buffer.
    :param coc_config: L2CAP channel parameters.
    """

    def __init__(
        self,
        controller: BleController,
        pktbuf: PacketBuffer,
        coc_config: Optional[CocConfig] = None,
    ) -> None:
        self.controller = controller
        self.pktbuf = pktbuf
        self.coc_config = coc_config
        self.adaptation = BleAdaptation()
        #: Set by :meth:`repro.net.ip.Ipv6Stack.add_netif`.
        self.ip: Optional["Ipv6Stack"] = None
        self._outstanding: Dict[Connection, int] = {}
        # Statistics.
        self.tx_packets = 0
        self.rx_packets = 0
        self.drops_pktbuf = 0
        self.drops_no_link = 0
        self.rx_decode_errors = 0
        controller.conn_open_listeners.append(self._on_conn_open)
        controller.conn_close_listeners.append(self._on_conn_close)

    @property
    def ll_addr(self) -> int:
        """This interface's link-layer *identity* address.

        The IID (RFC 7668) derives from the identity, not from the current
        on-air address, so IPv6 addressing survives RPA rotation (see
        :mod:`repro.ble.rpa`).
        """
        return self.controller.identity

    # -- link lifecycle ----------------------------------------------------

    def _on_conn_open(self, conn: Connection) -> None:
        from repro.ble.conn import Role
        from repro.l2cap.coc import IPSP_PSM

        coc = coc_of(conn, self.coc_config, handshake=True)
        coc.accept_psm(IPSP_PSM)
        end = coc.end_of(self.controller)
        peer_ll = conn.peer_of(self.controller).identity
        end.on_sdu = lambda sdu, peer=peer_ll: self._on_rx_sdu(sdu, peer)
        end.on_sdu_sent = self._on_sdu_sent
        self._outstanding[conn] = 0
        # RFC 7668: the coordinator (6LN/central) initiates the IPSP channel
        if self.controller.role_of(conn) is Role.COORDINATOR:
            coc.open_channel(self.controller, IPSP_PSM)
        if self.ip is not None:
            self.ip.neighbor_up(peer_ll, self)

    def _on_conn_close(self, conn: Connection, reason: DisconnectReason) -> None:
        held = self._outstanding.pop(conn, 0)
        if held:
            self.pktbuf.free(held)
        if SPANS.enabled:
            SPANS.conn_closed(conn)
        if self.ip is not None:
            self.ip.neighbor_down(conn.peer_of(self.controller).identity)

    # -- data path ----------------------------------------------------------

    def send(self, packet: Ipv6Packet, next_hop_ll: int) -> bool:
        """Queue ``packet`` towards the neighbour at ``next_hop_ll``.

        :returns: False when the link is down or the packet buffer is full
            (the packet is dropped and counted either way).
        """
        conn = self.controller.connection_to(next_hop_ll)
        if conn is None or not conn.open:
            self.drops_no_link += 1
            if SPANS.enabled:
                SPANS.drop("no-link")
            return False
        wire = self.adaptation.to_link(
            packet,
            BleAdaptation.iid_for_node(self.ll_addr),
            BleAdaptation.iid_for_node(next_hop_ll),
        )
        if not self.pktbuf.try_alloc(len(wire)):
            self.drops_pktbuf += 1
            if SPANS.enabled:
                SPANS.drop("pktbuf")
            return False
        if TRACE.enabled:
            TRACE.emit(
                self.controller.sim.now, "sixlo", "tx",
                node=self.ll_addr, peer=next_hop_ll,
                in_len=packet.total_len, out_len=len(wire), data=wire,
            )
        self._outstanding[conn] = self._outstanding.get(conn, 0) + len(wire)
        coc_of(conn, self.coc_config).send(
            self.controller, wire, tag=(conn, len(wire))
        )
        self.tx_packets += 1
        return True

    def send_multicast(self, packet: Ipv6Packet) -> int:
        """Unicast one copy per live connection (RFC 7668 §3.2.3 mapping).

        :returns: the number of copies actually queued.
        """
        sent = 0
        for conn in list(self.controller.connections):
            if conn.open and self.send(packet, conn.peer_of(self.controller).identity):
                sent += 1
        return sent

    def _on_sdu_sent(self, tag: object) -> None:
        """The link layer acknowledged a full SDU: release its buffer bytes."""
        if not isinstance(tag, tuple):
            return
        conn, nbytes = tag
        held = self._outstanding.get(conn)
        if held is None:
            return  # connection already closed; bytes were bulk-freed
        self._outstanding[conn] = held - nbytes
        self.pktbuf.free(nbytes)

    def _on_rx_sdu(self, sdu: bytes, peer_ll: int) -> None:
        """Decompress an inbound SDU and push it up to the IP stack."""
        try:
            packet = self.adaptation.from_link(
                sdu,
                BleAdaptation.iid_for_node(peer_ll),
                BleAdaptation.iid_for_node(self.ll_addr),
            )
        except ValueError:
            self.rx_decode_errors += 1
            return
        self.rx_packets += 1
        if TRACE.enabled:
            TRACE.emit(
                self.controller.sim.now, "sixlo", "rx",
                node=self.ll_addr, peer=peer_ll, len=len(sdu), data=sdu,
            )
        if self.ip is not None:
            self.ip.receive(packet, self)
