"""Minimal UDP layer with port demultiplexing.

CoAP (the paper's application protocol) rides on UDP; this layer provides
``bind`` / ``sendto`` with real checksummed datagrams so corruption anywhere
in the stack surfaces as a counted checksum error instead of silent
misdelivery.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.net.ip import Ipv6Stack
from repro.sixlowpan.ipv6 import (
    Ipv6Address,
    Ipv6Packet,
    PROTO_UDP,
    UdpDatagram,
)

#: ``handler(payload, src_addr, src_port)`` signature for bound ports.
UdpHandler = Callable[[bytes, Ipv6Address, int], None]


class UdpStack:
    """UDP sockets for one node, layered on an :class:`Ipv6Stack`."""

    def __init__(self, ip: Ipv6Stack) -> None:
        self.ip = ip
        self._ports: Dict[int, UdpHandler] = {}
        # Statistics.
        self.tx_datagrams = 0
        self.rx_datagrams = 0
        self.rx_no_port = 0
        self.rx_checksum_errors = 0
        ip.register_protocol(PROTO_UDP, self._on_packet)

    def bind(self, port: int, handler: UdpHandler) -> None:
        """Attach ``handler`` to ``port``; raises if the port is taken."""
        if port in self._ports:
            raise ValueError(f"port {port} already bound")
        self._ports[port] = handler

    def unbind(self, port: int) -> None:
        """Release a port (idempotent)."""
        self._ports.pop(port, None)

    def sendto(
        self,
        payload: bytes,
        dst: Ipv6Address,
        dst_port: int,
        src_port: int,
        src: Optional[Ipv6Address] = None,
        hop_limit: int = 64,
    ) -> bool:
        """Send one datagram; returns False if the stack dropped it."""
        src = src or self.ip.mesh_local
        dgram = UdpDatagram(src_port, dst_port, payload)
        packet = Ipv6Packet(
            src=src,
            dst=dst,
            payload=dgram.encode(src, dst),
            next_header=PROTO_UDP,
            hop_limit=hop_limit,
        )
        self.tx_datagrams += 1
        return self.ip.send(packet)

    def _on_packet(self, packet: Ipv6Packet) -> None:
        try:
            dgram = UdpDatagram.decode(packet.payload, packet.src, packet.dst)
        except ValueError:
            self.rx_checksum_errors += 1
            return
        handler = self._ports.get(dgram.dst_port)
        if handler is None:
            self.rx_no_port += 1
            return
        self.rx_datagrams += 1
        handler(dgram.payload, packet.src, dgram.src_port)
