"""The central GNRC packet buffer.

GNRC holds every in-flight packet in one static byte pool; the paper leaves
it at the default 6144 bytes (§4.2).  Under load, packets waiting for slow
links exhaust the pool and new packets are dropped -- the paper attributes
all §5.2 losses to exactly this.  :class:`PacketBuffer` reuses the generic
byte-budget allocator and adds the GNRC default.
"""

from __future__ import annotations

from repro.ble.bufpool import BufferPool

#: RIOT's default GNRC pktbuf size, used in the paper.
GNRC_PKTBUF_DEFAULT = 6144


class PacketBuffer(BufferPool):
    """A byte-budgeted packet buffer with the GNRC default capacity."""

    def __init__(self, capacity: int = GNRC_PKTBUF_DEFAULT, name: str = "pktbuf") -> None:
        super().__init__(capacity, name)
