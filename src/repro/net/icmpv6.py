"""ICMPv6: echo (ping), plus the router solicitation/advertisement shells
used by the routing layer.

The paper's GNRC configuration disables router advertisements (§4.2)
because routes are static; the dynamic-topology extension (the paper's
future work, §9) re-enables a minimal ND exchange and RPL rides on ICMPv6
like the real protocol (type 155).  Wire formats are exact, checksums are
computed over the IPv6 pseudo header.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.net.ip import Ipv6Stack
from repro.sim.kernel import Simulator
from repro.sixlowpan.ipv6 import Ipv6Address, Ipv6Packet

#: IANA next-header number for ICMPv6.
PROTO_ICMPV6 = 58

# message types
ECHO_REQUEST = 128
ECHO_REPLY = 129
ROUTER_SOLICITATION = 133
ROUTER_ADVERTISEMENT = 134
RPL_CONTROL = 155


def icmpv6_checksum(src: Ipv6Address, dst: Ipv6Address, message: bytes) -> int:
    """ICMPv6 checksum over the IPv6 pseudo header (RFC 4443 §2.3)."""
    pseudo = (
        src.packed
        + dst.packed
        + struct.pack(">IHBB", len(message), 0, 0, PROTO_ICMPV6)
    )
    from repro.sixlowpan.ipv6 import _checksum  # shared RFC 1071 sum

    return _checksum(pseudo + message)


@dataclass
class Icmpv6Message:
    """One ICMPv6 message: type, code, body (after the 4-byte header)."""

    mtype: int
    code: int = 0
    body: bytes = b""

    def encode(self, src: Ipv6Address, dst: Ipv6Address) -> bytes:
        """Serialize with a valid checksum."""
        raw = struct.pack(">BBH", self.mtype, self.code, 0) + self.body
        checksum = icmpv6_checksum(src, dst, raw)
        return struct.pack(">BBH", self.mtype, self.code, checksum) + self.body

    @classmethod
    def decode(
        cls,
        data: bytes,
        src: Optional[Ipv6Address] = None,
        dst: Optional[Ipv6Address] = None,
        verify: bool = True,
    ) -> "Icmpv6Message":
        """Parse; verifies the checksum when both addresses are given."""
        if len(data) < 4:
            raise ValueError("truncated ICMPv6 header")
        mtype, code, checksum = struct.unpack_from(">BBH", data)
        body = data[4:]
        if verify and src is not None and dst is not None:
            raw = struct.pack(">BBH", mtype, code, 0) + body
            if icmpv6_checksum(src, dst, raw) != checksum:
                raise ValueError("ICMPv6 checksum mismatch")
        return cls(mtype, code, body)


#: ``handler(message, src_addr)`` for registered ICMPv6 types.
IcmpHandler = Callable[[Icmpv6Message, Ipv6Address], None]


class Icmpv6Stack:
    """ICMPv6 demux + echo responder for one node.

    :param ip: the node's IPv6 stack.
    :param sim: the simulation kernel (for ping RTT measurement).
    """

    def __init__(self, ip: Ipv6Stack, sim: Simulator) -> None:
        self.ip = ip
        self.sim = sim
        self._handlers: Dict[int, IcmpHandler] = {}
        self._pending_pings: Dict[tuple, tuple] = {}
        self._next_ping_id = 1
        # Statistics.
        self.echo_requests_served = 0
        self.rx_checksum_errors = 0
        self.rx_unhandled = 0
        ip.register_protocol(PROTO_ICMPV6, self._on_packet)

    def register(self, mtype: int, handler: IcmpHandler) -> None:
        """Attach a handler for an ICMPv6 type (e.g. RPL control)."""
        self._handlers[mtype] = handler

    def send(
        self,
        dst: Ipv6Address,
        message: Icmpv6Message,
        src: Optional[Ipv6Address] = None,
        hop_limit: int = 64,
    ) -> bool:
        """Send one ICMPv6 message."""
        src = src or self.ip.mesh_local
        packet = Ipv6Packet(
            src=src,
            dst=dst,
            payload=message.encode(src, dst),
            next_header=PROTO_ICMPV6,
            hop_limit=hop_limit,
        )
        return self.ip.send(packet)

    # -- ping --------------------------------------------------------------

    def ping(
        self,
        dst: Ipv6Address,
        payload: bytes = b"",
        on_reply: Optional[Callable[[int], None]] = None,
    ) -> bool:
        """Send an echo request; ``on_reply(rtt_ns)`` fires on the reply."""
        ident = self._next_ping_id
        self._next_ping_id = (self._next_ping_id + 1) & 0xFFFF
        body = struct.pack(">HH", ident, 0) + payload
        self._pending_pings[(ident, 0)] = (self.sim.now, on_reply)
        return self.send(dst, Icmpv6Message(ECHO_REQUEST, 0, body))

    # -- demux --------------------------------------------------------------

    def _on_packet(self, packet: Ipv6Packet) -> None:
        try:
            message = Icmpv6Message.decode(packet.payload, packet.src, packet.dst)
        except ValueError:
            self.rx_checksum_errors += 1
            return
        if message.mtype == ECHO_REQUEST:
            self._serve_echo(message, packet)
        elif message.mtype == ECHO_REPLY:
            self._match_echo(message)
        else:
            handler = self._handlers.get(message.mtype)
            if handler is None:
                self.rx_unhandled += 1
            else:
                handler(message, packet.src)

    def _serve_echo(self, message: Icmpv6Message, packet: Ipv6Packet) -> None:
        self.echo_requests_served += 1
        self.send(packet.src, Icmpv6Message(ECHO_REPLY, 0, message.body))

    def _match_echo(self, message: Icmpv6Message) -> None:
        if len(message.body) < 4:
            return
        ident, seq = struct.unpack_from(">HH", message.body)
        pending = self._pending_pings.pop((ident, seq), None)
        if pending is None:
            return
        sent_at, on_reply = pending
        if on_reply is not None:
            on_reply(self.sim.now - sent_at)
