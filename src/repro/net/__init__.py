"""GNRC-equivalent network core: packet buffer, interfaces, IPv6, UDP.

This package mirrors the slice of RIOT's GNRC stack the paper exercises
(Figure 5): a byte-budgeted central packet buffer (6144 bytes by default,
§4.2), a neighbour information base (raised to 32 entries in the paper), a
static forwarding information base (routes are configured manually, §4.3),
an IPv6 forwarding engine, and a minimal UDP layer for CoAP.
"""

from repro.net.pktbuf import PacketBuffer
from repro.net.nib import NeighborCache
from repro.net.fib import ForwardingTable
from repro.net.ip import Ipv6Stack
from repro.net.udp import UdpStack
from repro.net.netif import BleNetif

__all__ = [
    "PacketBuffer",
    "NeighborCache",
    "ForwardingTable",
    "Ipv6Stack",
    "UdpStack",
    "BleNetif",
]
