"""IPv6 stack: local delivery, forwarding, neighbour management.

Every node runs as a 6LoWPAN router (§4.2): packets not addressed to the
node are forwarded along statically configured routes.  Losses are counted
by cause -- no route, no neighbour, link down, buffer full -- so experiment
analysis can attribute them the way the paper does.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Union

from repro.net.fib import ForwardingTable
from repro.net.nib import NeighborCache
from repro.obs.registry import METRICS
from repro.sixlowpan.ipv6 import Ipv6Address, Ipv6Packet
from repro.spans.hub import SPANS
from repro.trace.tracer import TRACE

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.netif import BleNetif


def _addr_ref(addr: Ipv6Address) -> Union[int, str]:
    """Compact, deterministic address form for trace fields.

    Derived addresses reduce to the node id; anything else is the hex of
    the packed 16 bytes.
    """
    node_id = addr.node_id()
    return node_id if node_id is not None else addr.packed.hex()


class Ipv6Stack:
    """One node's network layer.

    :param node_id: the node identity; derives the link-local and mesh
        addresses.
    :param nib_entries: neighbour cache size (paper configuration: 32).
    """

    def __init__(self, node_id: int, nib_entries: int = 32) -> None:
        self.node_id = node_id
        self.link_local = Ipv6Address.link_local(node_id)
        self.mesh_local = Ipv6Address.mesh_local(node_id)
        self.addresses = {self.link_local, self.mesh_local}
        self.nib = NeighborCache(nib_entries)
        self.fib = ForwardingTable()
        self.netifs: List[BleNetif] = []
        #: Upper-layer demux: protocol number -> handler(packet).
        self._proto_handlers: dict[int, Callable[[Ipv6Packet], None]] = {}
        # Statistics.
        self.delivered = 0
        self.forwarded = 0
        self.originated = 0
        self.drops_no_route = 0
        self.drops_no_neighbor = 0
        self.drops_hop_limit = 0
        self.drops_link = 0
        self.drops_no_handler = 0

    # -- wiring --------------------------------------------------------------

    def add_netif(self, netif: BleNetif) -> None:
        """Attach an interface (it reports received packets back here)."""
        netif.ip = self
        self.netifs.append(netif)

    def register_protocol(
        self, proto: int, handler: Callable[[Ipv6Packet], None]
    ) -> None:
        """Install an upper-layer handler for IPv6 next-header ``proto``."""
        self._proto_handlers[proto] = handler

    def neighbor_up(self, ll_addr: int, netif: BleNetif) -> None:
        """A link to ``ll_addr`` came up: install its derived addresses."""
        self.nib.add(Ipv6Address.link_local(ll_addr), ll_addr, netif)
        self.nib.add(Ipv6Address.mesh_local(ll_addr), ll_addr, netif)

    def neighbor_down(self, ll_addr: int) -> None:
        """A link went down: withdraw the neighbour entries."""
        self.nib.remove_ll(ll_addr)

    # -- data path -------------------------------------------------------------

    def send(self, packet: Ipv6Packet) -> bool:
        """Originate a packet from this node."""
        self.originated += 1
        if METRICS.enabled:
            METRICS.inc(f"node{self.node_id}", "ip.originated")
        if TRACE.enabled:
            TRACE.emit(
                None, "ip", "originate",
                node=self.node_id, dst=_addr_ref(packet.dst),
            )
        if packet.dst in self.addresses:
            self._deliver(packet)
            return True
        if packet.dst.is_multicast:
            # link-scope multicast: one copy per neighbour on each interface
            # (RFC 7668 maps IP multicast onto the connection fan-out)
            sent = 0
            for netif in self.netifs:
                fanout = getattr(netif, "send_multicast", None)
                if fanout is not None:
                    sent += fanout(packet)
            return sent > 0
        return self._route(packet)

    def receive(self, packet: Ipv6Packet, netif: BleNetif) -> None:
        """Handle a packet arriving on ``netif``."""
        if packet.dst in self.addresses or packet.dst.is_multicast:
            self._deliver(packet)
            return
        # forward (every node is a 6LoWPAN router, §4.2)
        if packet.hop_limit <= 1:
            self.drops_hop_limit += 1
            self._drop(packet, "hop-limit")
            return
        packet.hop_limit -= 1
        if self._route(packet):
            self.forwarded += 1
            if METRICS.enabled:
                METRICS.inc(f"node{self.node_id}", "ip.forwarded")
            if TRACE.enabled:
                TRACE.emit(
                    None, "ip", "forward",
                    node=self.node_id, dst=_addr_ref(packet.dst),
                    hop_limit=packet.hop_limit,
                )

    def _deliver(self, packet: Ipv6Packet) -> None:
        handler = self._proto_handlers.get(packet.next_header)
        if handler is None:
            self.drops_no_handler += 1
            self._drop(packet, "no-handler")
            return
        self.delivered += 1
        if METRICS.enabled:
            METRICS.inc(f"node{self.node_id}", "ip.delivered")
        if TRACE.enabled:
            TRACE.emit(
                None, "ip", "deliver",
                node=self.node_id, proto=packet.next_header,
            )
        handler(packet)

    def _drop(self, packet: Ipv6Packet, cause: str) -> None:
        """Account one dropped packet; every drop cause routes through here."""
        if SPANS.enabled:
            SPANS.drop(cause)
        if METRICS.enabled:
            METRICS.inc_vec(
                f"node{self.node_id}", "ip.drops", cause, label_key="cause"
            )
        if TRACE.enabled:
            TRACE.emit(
                None, "ip", "drop",
                node=self.node_id, cause=cause, dst=_addr_ref(packet.dst),
            )

    def _route(self, packet: Ipv6Packet) -> bool:
        """Pick the next hop and hand the packet to its interface."""
        entry = self.nib.resolve(packet.dst)
        if entry is None:
            next_hop = self.fib.lookup(packet.dst)
            if next_hop is None:
                self.drops_no_route += 1
                self._drop(packet, "no-route")
                return False
            entry = self.nib.resolve(next_hop)
            if entry is None:
                self.drops_no_neighbor += 1
                self._drop(packet, "no-neighbor")
                return False
        ll_addr, netif = entry
        if not netif.send(packet, ll_addr):
            self.drops_link += 1
            self._drop(packet, "link")
            return False
        return True
