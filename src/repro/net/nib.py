"""Neighbor information base.

Maps on-link IPv6 addresses to (link-layer address, interface).  The paper
raises GNRC's default entry limit to 32 so every node can reach all peers
(§4.2); we enforce the same limit.  Entries are installed when BLE
connections open (RFC 7668 derives the neighbour's IID from its device
address, so no neighbour solicitation is needed) and removed when they
close.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.sixlowpan.ipv6 import Ipv6Address

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.netif import BleNetif


class NeighborCache:
    """Address-to-link-layer resolution table.

    :param max_entries: table capacity (paper configuration: 32).
    """

    def __init__(self, max_entries: int = 32) -> None:
        self.max_entries = max_entries
        self._entries: Dict[Ipv6Address, Tuple[int, "BleNetif"]] = {}
        #: Insertions rejected because the table was full.
        self.full_rejections = 0

    def add(self, addr: Ipv6Address, ll_addr: int, netif: "BleNetif") -> bool:
        """Install or refresh a neighbour entry.

        :returns: False when the table is full and ``addr`` is new.
        """
        if addr not in self._entries and len(self._entries) >= self.max_entries:
            self.full_rejections += 1
            return False
        self._entries[addr] = (ll_addr, netif)
        return True

    def remove(self, addr: Ipv6Address) -> None:
        """Drop a neighbour entry (idempotent)."""
        self._entries.pop(addr, None)

    def remove_ll(self, ll_addr: int) -> None:
        """Drop every entry resolving to ``ll_addr`` (link went down)."""
        stale = [a for a, (ll, _) in self._entries.items() if ll == ll_addr]
        for addr in stale:
            del self._entries[addr]

    def resolve(self, addr: Ipv6Address) -> Optional[Tuple[int, "BleNetif"]]:
        """(link-layer address, interface) for ``addr``, or ``None``."""
        return self._entries.get(addr)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, addr: Ipv6Address) -> bool:
        return addr in self._entries
