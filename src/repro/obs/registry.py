"""Metric instruments, per-scope registries, and the process-wide hub.

Instrumented code throughout the stack guards its updates with::

    if METRICS.enabled:
        METRICS.inc("node3", "ble.conn_events_served")

:data:`METRICS` is a module-level singleton that is *never replaced*, so
the hot-path cost with metrics disabled is one attribute load and one
branch -- the same discipline as :data:`repro.trace.tracer.TRACE`.

Scopes are keyed by *node name* (``node3``) or subsystem (``sim``,
``phy``), never by connection id: :class:`repro.ble.conn.Connection` draws
its id from a process-global counter that is not reset between runs, so
id-keyed metrics would differ between a fresh worker process and a warm
in-process run.  Node-name scopes make the exported snapshot a pure
function of ``(config, seed)`` -- byte-identical across worker counts.

Histograms are fixed-bucket and streaming: an observation lands in one
bucket counter, no per-sample storage, and two histograms with the same
bounds merge by adding counts -- the property the cross-repetition
aggregation in :mod:`repro.obs.export` relies on.
"""

from __future__ import annotations

from bisect import bisect_left
from math import inf, nan
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.instr import INSTR

#: Default bucket upper bounds for CoAP round-trip-time histograms, in
#: seconds.  Roughly geometric from 1 ms to 2 min: fine enough that the
#: interpolated p50/p99 agree with an exact percentile over the raw
#: samples to within one bucket width (the acceptance bar of the
#: observability issue), coarse enough that a histogram is ~30 ints.
RTT_BUCKETS_S: Tuple[float, ...] = (
    0.001, 0.0015, 0.002, 0.003, 0.005, 0.0075,
    0.01, 0.015, 0.02, 0.03, 0.05, 0.075,
    0.1, 0.15, 0.2, 0.3, 0.5, 0.75,
    1.0, 1.5, 2.0, 3.0, 5.0, 7.5,
    10.0, 15.0, 20.0, 30.0, 60.0, 120.0,
)

#: Re-attach latency buckets (seconds) for the churn workload: arrival
#: until the RPL parent-change that rejoins the DODAG.  Healthy rejoins
#: land in seconds (DIS solicitation resets the parent's Trickle timer);
#: the tail out to 5 min covers orphan-timeout cycle breaks (20 s) plus a
#: full re-formation round.
REATTACH_BUCKETS_S: Tuple[float, ...] = (
    0.5, 1.0, 2.0, 3.0, 5.0, 7.5,
    10.0, 15.0, 20.0, 30.0, 45.0, 60.0,
    90.0, 120.0, 180.0, 240.0, 300.0,
)

#: Bucket bounds (seconds) for per-hop phase attribution histograms
#: (:mod:`repro.spans`).  Finer than the RTT buckets at the bottom: a
#: single PDU's air time is tens of microseconds, an anchor wait is a
#: fraction of a connection interval (tens of milliseconds), and the
#: retransmission tail runs into seconds.
PHASE_BUCKETS_S: Tuple[float, ...] = (
    0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be >= 0 to keep the counter monotone)."""
        self.value += n


class Gauge:
    """A point-in-time value with min/max envelope."""

    __slots__ = ("value", "vmin", "vmax", "updates")

    def __init__(self) -> None:
        self.value: float = 0.0
        self.vmin: float = inf
        self.vmax: float = -inf
        self.updates = 0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        self.updates += 1

    def to_dict(self) -> dict:
        """JSON-safe state (``last`` is ``None`` before the first set)."""
        if self.updates == 0:
            return {"last": None, "min": None, "max": None}
        return {"last": self.value, "min": self.vmin, "max": self.vmax}


class CounterVec:
    """A family of counters keyed by one label (e.g. per-channel PDUs)."""

    __slots__ = ("label_key", "values")

    def __init__(self, label_key: str = "label") -> None:
        self.label_key = label_key
        self.values: Dict[str, int] = {}

    def inc(self, label: object, n: int = 1) -> None:
        """Add ``n`` to the ``label`` member (labels stringify)."""
        key = str(label)
        self.values[key] = self.values.get(key, 0) + n

    def to_dict(self) -> dict:
        """JSON-safe state with sorted labels."""
        return {
            "label": self.label_key,
            "values": {k: self.values[k] for k in sorted(self.values)},
        }


class Histogram:
    """A fixed-bucket streaming histogram (mergeable, no sample storage).

    Bucket ``i`` counts observations in ``(bounds[i-1], bounds[i]]``; one
    overflow bucket catches everything above ``bounds[-1]``.  ``sum``,
    ``min``, and ``max`` ride along so quantile interpolation can clamp to
    the observed range.
    """

    __slots__ = ("bounds", "counts", "count", "total", "vmin", "vmax")

    def __init__(self, bounds: Sequence[float]) -> None:
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be sorted ascending")
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = inf
        self.vmax = -inf

    def observe(self, value: float) -> None:
        """Account one sample."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    def mean(self) -> float:
        """Mean of all observations (NaN when empty)."""
        return self.total / self.count if self.count else nan

    def percentile(self, q: float) -> float:
        """The q-quantile (0..1) by in-bucket linear interpolation.

        Exact to within the width of the bucket the quantile falls into;
        clamped to the observed ``[min, max]``.  NaN when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be within [0, 1]")
        if self.count == 0:
            return nan
        target = q * self.count
        if target <= 0:
            return self.vmin
        cum = 0
        n_bounds = len(self.bounds)
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            lo = self.bounds[i - 1] if i > 0 else self.vmin
            hi = self.bounds[i] if i < n_bounds else self.vmax
            lo = max(lo, self.vmin)
            hi = min(hi, self.vmax)
            if hi < lo:
                hi = lo
            if cum + bucket_count >= target:
                frac = (target - cum) / bucket_count
                return lo + (hi - lo) * frac
            cum += bucket_count
        return self.vmax

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (bounds must match)."""
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        self.vmin = min(self.vmin, other.vmin)
        self.vmax = max(self.vmax, other.vmax)

    def to_dict(self) -> dict:
        """JSON-safe state."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else None,
            "max": self.vmax if self.count else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        """Rebuild a histogram from :meth:`to_dict` output."""
        hist = cls(data["bounds"])
        hist.counts = list(data["counts"])
        hist.count = data["count"]
        hist.total = data["sum"]
        hist.vmin = data["min"] if data["min"] is not None else inf
        hist.vmax = data["max"] if data["max"] is not None else -inf
        return hist


class MetricsRegistry:
    """All instruments of one scope (a node or a subsystem)."""

    __slots__ = ("counters", "gauges", "histograms", "vectors")

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.vectors: Dict[str, CounterVec] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        """Get or create the histogram ``name`` with ``bounds``."""
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(bounds)
        return instrument

    def vector(self, name: str, label_key: str = "label") -> CounterVec:
        """Get or create the counter family ``name``."""
        instrument = self.vectors.get(name)
        if instrument is None:
            instrument = self.vectors[name] = CounterVec(label_key)
        return instrument

    def snapshot(self) -> dict:
        """JSON-safe state of every instrument, keys sorted."""
        return {
            "counters": {
                name: self.counters[name].value
                for name in sorted(self.counters)
            },
            "gauges": {
                name: self.gauges[name].to_dict()
                for name in sorted(self.gauges)
            },
            "histograms": {
                name: self.histograms[name].to_dict()
                for name in sorted(self.histograms)
            },
            "vectors": {
                name: self.vectors[name].to_dict()
                for name in sorted(self.vectors)
            },
        }


class MetricsHub:
    """The emission gate and scope table every instrumented module uses."""

    __slots__ = ("enabled", "_scopes")

    def __init__(self) -> None:
        #: The hot-path gate; instrumented code checks this before touching
        #: any registry state.
        self.enabled = False
        self._scopes: Dict[str, MetricsRegistry] = {}

    def configure(self) -> None:
        """Arm the hub: drop previous registries, enable collection."""
        self._scopes = {}
        self.enabled = True
        INSTR.bump()

    def reset(self) -> None:
        """Disarm the hub and drop all registries."""
        self.enabled = False
        self._scopes = {}
        INSTR.bump()

    def scope(self, name: str) -> MetricsRegistry:
        """The registry of ``name`` (created on first use)."""
        registry = self._scopes.get(name)
        if registry is None:
            registry = self._scopes[name] = MetricsRegistry()
        return registry

    def scopes(self) -> Dict[str, MetricsRegistry]:
        """The live scope table (read-only by convention)."""
        return self._scopes

    # -- hot-path helpers (one call per instrument update) ------------------

    def inc(self, scope: str, name: str, n: int = 1) -> None:
        """Increment counter ``name`` in ``scope``."""
        self.scope(scope).counter(name).inc(n)

    def set_gauge(self, scope: str, name: str, value: float) -> None:
        """Set gauge ``name`` in ``scope``."""
        self.scope(scope).gauge(name).set(value)

    def observe(
        self, scope: str, name: str, value: float, bounds: Sequence[float]
    ) -> None:
        """Feed one sample to histogram ``name`` in ``scope``."""
        self.scope(scope).histogram(name, bounds).observe(value)

    def inc_vec(
        self,
        scope: str,
        name: str,
        label: object,
        n: int = 1,
        label_key: str = "label",
    ) -> None:
        """Increment the ``label`` member of counter family ``name``."""
        self.scope(scope).vector(name, label_key).inc(label, n)

    def snapshot(self) -> dict:
        """JSON-safe state of every scope, keys sorted.

        The result is a pure function of the instrument updates performed
        since :meth:`configure` -- deterministic across worker counts for a
        deterministic simulation.
        """
        return {
            name: self._scopes[name].snapshot()
            for name in sorted(self._scopes)
        }


def merge_scope_snapshots(snapshots: Iterable[dict]) -> dict:
    """Merge per-run :meth:`MetricsHub.snapshot` dicts into one.

    Counters and vector members add; histograms merge bucket-wise (bounds
    must agree); gauges keep the min/max envelope and drop ``last`` (a
    point-in-time value has no meaning across runs).  Input order does not
    affect integer fields; float fields (histogram sums) are folded in the
    given order, so pass snapshots in work-item order for byte-stable
    output (the parallel engine already returns outcomes that way).
    """
    merged: dict = {}
    for snapshot in snapshots:
        for scope, registry in snapshot.items():
            out = merged.setdefault(
                scope,
                {"counters": {}, "gauges": {}, "histograms": {}, "vectors": {}},
            )
            for name, value in registry.get("counters", {}).items():
                out["counters"][name] = out["counters"].get(name, 0) + value
            for name, gauge in registry.get("gauges", {}).items():
                agg = out["gauges"].get(name)
                if agg is None:
                    agg = out["gauges"][name] = {
                        "last": None, "min": None, "max": None
                    }
                if gauge.get("min") is not None:
                    agg["min"] = (
                        gauge["min"] if agg["min"] is None
                        else min(agg["min"], gauge["min"])
                    )
                if gauge.get("max") is not None:
                    agg["max"] = (
                        gauge["max"] if agg["max"] is None
                        else max(agg["max"], gauge["max"])
                    )
            for name, hist in registry.get("histograms", {}).items():
                agg = out["histograms"].get(name)
                if agg is None:
                    out["histograms"][name] = {
                        "bounds": list(hist["bounds"]),
                        "counts": list(hist["counts"]),
                        "count": hist["count"],
                        "sum": hist["sum"],
                        "min": hist["min"],
                        "max": hist["max"],
                    }
                    continue
                if agg["bounds"] != list(hist["bounds"]):
                    raise ValueError(
                        f"histogram {scope}:{name} bounds differ across runs"
                    )
                agg["counts"] = [
                    a + b for a, b in zip(agg["counts"], hist["counts"])
                ]
                agg["count"] += hist["count"]
                agg["sum"] += hist["sum"]
                for key, pick in (("min", min), ("max", max)):
                    if hist[key] is not None:
                        agg[key] = (
                            hist[key] if agg[key] is None
                            else pick(agg[key], hist[key])
                        )
            for name, vec in registry.get("vectors", {}).items():
                agg = out["vectors"].get(name)
                if agg is None:
                    agg = out["vectors"][name] = {
                        "label": vec["label"], "values": {}
                    }
                for label, value in vec["values"].items():
                    agg["values"][label] = agg["values"].get(label, 0) + value
    # canonical ordering for byte-stable serialization
    for scope in merged.values():
        for kind in ("counters", "gauges", "histograms", "vectors"):
            scope[kind] = {k: scope[kind][k] for k in sorted(scope[kind])}
        for vec in scope["vectors"].values():
            vec["values"] = {
                k: vec["values"][k] for k in sorted(vec["values"])
            }
    return {name: merged[name] for name in sorted(merged)}


#: The singleton every instrumented module imports.  Never rebind it.
METRICS = MetricsHub()
