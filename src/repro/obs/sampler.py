"""Sim-time metrics snapshotter: registries -> time series.

Counters and gauges are cheap aggregates with no time dimension; the
snapshotter adds one back by sampling the hub at a fixed sim-time cadence.
Each tick appends one row per known instrument (``scope:name`` keys), so a
24-hour run stores one number per instrument per period, never per event.

The snapshotter also derives two *live* gauges each tick from the network's
link statistics, using the §6.2 shading detector over windowed link-layer
PDR: ``obs.shading_links_degraded`` (links currently below the PDR
threshold) and ``obs.shading_onsets_total`` (degradation spans seen so
far).  This is the online counterpart of the post-hoc Fig. 12 analysis.

Determinism: ticks run at exact multiples of the period via ``sim.after``,
link iteration follows ``net.nodes`` order, and values are pure functions
of simulation state -- so the resulting series is byte-stable across
worker counts, like everything else in ``metrics.json``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.shading import detect_degradation_spans
from repro.obs.registry import MetricsHub
from repro.sim.units import SEC


class MetricsSnapshotter:
    """Samples a :class:`~repro.obs.registry.MetricsHub` on the sim clock."""

    def __init__(
        self,
        sim: Any,
        hub: MetricsHub,
        period_ns: int,
        network: Any = None,
        shading_threshold: float = 0.9,
    ) -> None:
        if period_ns <= 0:
            raise ValueError("snapshot period must be positive")
        self.sim = sim
        self.hub = hub
        self.period_ns = int(period_ns)
        self.network = network
        self.shading_threshold = shading_threshold
        self.times_ns: List[int] = []
        #: "scope:name" -> per-tick values (padded on export; a key first
        #: seen at tick k gets zeros for ticks 0..k-1).
        self._columns: Dict[str, List[float]] = {}
        self._rows = 0
        # per-(link, direction) shading bookkeeping
        self._last_link: Dict[Tuple[tuple, str], Tuple[int, int]] = {}
        self._pdr_times: Dict[Tuple[tuple, str], List[float]] = {}
        self._pdr_series: Dict[Tuple[tuple, str], List[float]] = {}

    def start(self) -> None:
        """Schedule the first tick one period from now."""
        self.sim.after(self.period_ns, self._tick)

    def _tick(self) -> None:
        self._collect()
        self.sim.after(self.period_ns, self._tick)

    def finish(self) -> None:
        """Take a final sample at the current sim time if one is missing.

        The kernel stops *before* dispatching events at the horizon, so the
        last periodic tick never coincides with the end of the run; this
        captures the final partial window.
        """
        if not self.times_ns or self.times_ns[-1] != self.sim.now:
            self._collect()

    # -- collection -----------------------------------------------------------

    def _collect(self) -> None:
        if self.network is not None:
            self._update_shading_gauges()
        if hasattr(self.sim, "queue_depth"):
            self.hub.set_gauge(
                "sim", "kernel.timer_queue_depth", self.sim.queue_depth()
            )
        self.times_ns.append(self.sim.now)
        row = self._rows
        for scope_name, registry in sorted(self.hub.scopes().items()):
            for name, counter in registry.counters.items():
                self._append(f"{scope_name}:{name}", row, counter.value)
            for name, gauge in registry.gauges.items():
                if gauge.updates:
                    self._append(f"{scope_name}:{name}", row, gauge.value)
        self._rows += 1

    def _append(self, key: str, row: int, value: float) -> None:
        column = self._columns.get(key)
        if column is None:
            column = self._columns[key] = [0] * row
        column.append(value)

    def _update_shading_gauges(self) -> None:
        nodes = getattr(self.network, "nodes", None)
        if not nodes:
            return
        now_s = self.sim.now / SEC
        for node in nodes:
            controller = getattr(node, "controller", None)
            if controller is None:
                continue
            for conn in getattr(controller, "connections", ()):
                if conn.coord.controller is not controller:
                    continue
                key = (conn.coord.controller.addr, conn.sub.controller.addr)
                for direction, ep in (("up", conn.coord), ("down", conn.sub)):
                    snap = ep.stats.snapshot()
                    attempts, acked = snap[0], snap[1]
                    prev = self._last_link.get((key, direction), (0, 0))
                    self._last_link[(key, direction)] = (attempts, acked)
                    d_attempts = attempts - prev[0]
                    d_acked = acked - prev[1]
                    if d_attempts <= 0:
                        continue  # idle window: no PDR evidence either way
                    self._pdr_times.setdefault((key, direction), []).append(
                        now_s
                    )
                    self._pdr_series.setdefault((key, direction), []).append(
                        d_acked / d_attempts
                    )
        degraded = 0
        onsets = 0
        for link_key, pdrs in self._pdr_series.items():
            spans = detect_degradation_spans(
                self._pdr_times[link_key], pdrs, self.shading_threshold
            )
            onsets += len(spans)
            if pdrs and pdrs[-1] < self.shading_threshold:
                degraded += 1
        self.hub.set_gauge("obs", "shading.links_degraded", degraded)
        self.hub.set_gauge("obs", "shading.onsets_total", onsets)

    # -- export ---------------------------------------------------------------

    def series(self) -> Optional[dict]:
        """The sampled time series, JSON-safe; ``None`` when no ticks ran."""
        if not self.times_ns:
            return None
        n = len(self.times_ns)
        values = {}
        for key in sorted(self._columns):
            column = self._columns[key]
            if len(column) < n:
                column = column + [column[-1]] * (n - len(column))
            values[key] = column
        return {"times_ns": list(self.times_ns), "values": values}
