"""The sanctioned wall-clock door.

simlint's SL001 forbids host-clock reads everywhere except the profiler
modules, because a wall-clock value that reaches simulated state or cached
results destroys reproducibility.  Orchestration code still has legitimate
wall-clock needs -- worker timeouts, progress lines, engine throughput
stats -- so those call sites import from *here* instead of :mod:`time`.
The module is allowlisted by SL001; importing it is a visible, greppable
declaration that a value is operator-facing timing, not simulation input.

Nothing obtained from this module may feed an event schedule, a config
hash, or a serialized result document.
"""

from __future__ import annotations

from time import monotonic, perf_counter
from time import time as _wall_time

__all__ = ["monotonic", "perf_counter", "unix_time"]


def unix_time() -> float:
    """Seconds since the Unix epoch -- for operator-facing timestamps only
    (bench history lines, progress output), never simulation input."""
    return _wall_time()
