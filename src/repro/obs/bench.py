"""The committed perf baseline: ``python -m repro.obs.bench``.

Runs one representative scenario per topology class under the wall-clock
profiler and writes ``BENCH_metrics.json`` -- the events-per-second and
wall-time baseline the PR checks future regressions against.  The numbers
are machine-dependent by nature, so the file records the *shape* of the
simulator's performance (relative subsystem shares, sim-seconds per wall
second per scenario class), not a CI-enforced threshold; the CI metrics
job republishes the current events/sec figure warn-only instead.

Scenarios (all BLE, static 75 ms interval, 1 s producers):

* ``line``: 4 nodes end-to-end -- the multi-hop forwarding path.
* ``tree``: the paper's 15-node Figure-6 tree -- the fan-in workload.
* ``mesh``: 8 nodes, self-forming ``dynamic`` topology -- dynconn + RPL
  control traffic on top of data, with the long warmup the DODAG needs.

No timestamps are recorded: reruns on the same machine and commit should
produce comparable documents.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

from repro.exp.config import ExperimentConfig
from repro.exp.runner import run_experiment
from repro.obs.profiler import PROFILER
from repro.sim.units import s_to_ns

#: Schema tag of the baseline document.
BENCH_SCHEMA = "repro.obs.bench/1"


def bench_configs() -> Dict[str, ExperimentConfig]:
    """One config per topology class, keyed by class name."""
    return {
        "line": ExperimentConfig(
            name="bench-line",
            topology="line",
            n_nodes=4,
            duration_s=30.0,
            warmup_s=3.0,
            drain_s=2.0,
            seed=7,
        ),
        "tree": ExperimentConfig(
            name="bench-tree",
            topology="tree",
            n_nodes=15,
            duration_s=20.0,
            warmup_s=5.0,
            drain_s=2.0,
            seed=7,
        ),
        "mesh": ExperimentConfig(
            name="bench-mesh",
            topology="dynamic",
            n_nodes=8,
            duration_s=20.0,
            warmup_s=30.0,
            drain_s=2.0,
            seed=7,
        ),
    }


def run_bench() -> dict:
    """Profile every scenario class; return the baseline document."""
    scenarios = {}
    for label, config in bench_configs().items():
        PROFILER.configure()
        try:
            run_experiment(config)
        finally:
            profile = PROFILER.report(
                sim_time_ns=s_to_ns(config.total_runtime_s)
            )
            PROFILER.reset()
        scenarios[label] = {
            "topology": config.topology,
            "n_nodes": config.n_nodes,
            "sim_time_s": config.total_runtime_s,
            "events": profile["events"],
            "wall_s": round(profile["wall_s"], 4),
            "events_per_wall_s": round(profile["events_per_wall_s"], 1),
            "sim_s_per_wall_s": round(profile["sim_s_per_wall_s"], 1),
        }
    return {"schema": BENCH_SCHEMA, "scenarios": scenarios}


def main() -> int:
    """Run the bench and (re)write ``BENCH_metrics.json`` in the CWD."""
    doc = run_bench()
    path = Path("BENCH_metrics.json")
    path.write_text(json.dumps(doc, sort_keys=True, indent=2) + "\n")
    for label, row in doc["scenarios"].items():
        print(
            f"{label:5s} {row['n_nodes']:3d} nodes "
            f"{row['events']:8d} events {row['wall_s']:8.3f}s wall "
            f"{row['events_per_wall_s']:10.1f} events/sec "
            f"x{row['sim_s_per_wall_s']:.0f} real time"
        )
    print(f"baseline written to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
