"""The committed perf baseline: ``python -m repro.obs.bench``.

Runs one representative scenario per topology class under the wall-clock
profiler and writes ``BENCH_metrics.json`` -- the events-per-second and
wall-time baseline the PR checks future regressions against.  The numbers
are machine-dependent by nature, so the file records the *shape* of the
simulator's performance (relative subsystem shares, sim-seconds per wall
second per scenario class), not a CI-enforced threshold; the CI metrics
job republishes the current events/sec figure warn-only instead.

Scenarios (all BLE, static 75 ms interval, 1 s producers):

* ``line``: 4 nodes end-to-end -- the multi-hop forwarding path.
* ``tree``: the paper's 15-node Figure-6 tree -- the fan-in workload.
* ``mesh``: 8 nodes, self-forming ``dynamic`` topology -- dynconn + RPL
  control traffic on top of data, with the long warmup the DODAG needs.
* ``scale100`` / ``scale100-allpairs``: the scale tier's entry point --
  100 nodes self-forming over a random-geometric layout, once with the
  uniform-grid neighbor index and once with the O(N)-per-transmission
  all-pairs reference.  The two runs make byte-identical delivery
  decisions (the differential suite proves it), so the events/sec gap
  between them is exactly the spatial index's win.

``--tier scale`` swaps in the 500- and 1000-node random-geometric
scenarios (grid index only); CI runs that tier in a separate,
non-blocking step.  Don't ``--compare`` across tiers: a baseline written
by one tier reports the other tier's scenarios as missing.

No timestamps are recorded in the baseline document: reruns on the same
machine and commit should produce comparable documents.  Longitudinal
tracking lives elsewhere -- ``--append-history BENCH_history.jsonl``
appends one line per scenario (timestamp, git revision, events/sec) to a
machine-local perf log that CI uploads as an artifact.
"""

from __future__ import annotations

import argparse
import json
import subprocess
from dataclasses import replace
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional

from repro.exp.config import ExperimentConfig
from repro.exp.runner import run_experiment
from repro.obs.profiler import PROFILER
from repro.obs.wallclock import unix_time
from repro.sim.units import s_to_ns

#: Schema tag of the baseline document.
BENCH_SCHEMA = "repro.obs.bench/1"

#: Schema tag of one bench-history JSONL line.
BENCH_HISTORY_SCHEMA = "repro.obs.bench-history/1"

#: Default tolerated throughput drop before the compare gate fails (25 %).
DEFAULT_REGRESSION_THRESHOLD = 0.25


#: The bench tiers: ``default`` runs on every ``python -m repro bench``
#: invocation; ``scale`` is the separate non-blocking CI step.
BENCH_TIERS = ("default", "scale")


def scale_config(n_nodes: int, spatial_index: str = "grid") -> ExperimentConfig:
    """The scale-tier scenario at ``n_nodes``: dynconn self-formation over
    a random-geometric layout, range-gated by the chosen spatial index.

    The warmup keeps the fleet mid-formation for most of the run: orphans
    advertise continuously, which is precisely the fan-out the spatial
    index exists to cut, so the grid-vs-allpairs events/sec gap measures
    the honest worst case rather than a settled, quiet mesh.
    """
    suffix = "" if spatial_index == "grid" else f"-{spatial_index}"
    return ExperimentConfig(
        name=f"bench-scale{n_nodes}{suffix}",
        topology="dynamic",
        geometry="rgg",
        spatial_index=spatial_index,
        n_nodes=n_nodes,
        duration_s=10.0,
        warmup_s=30.0,
        drain_s=2.0,
        seed=7,
    )


def bench_configs(tier: str = "default") -> Dict[str, ExperimentConfig]:
    """One config per scenario, keyed by scenario label."""
    if tier == "scale":
        return {
            "scale500": scale_config(500),
            "scale1000": scale_config(1000),
        }
    if tier != "default":
        raise ValueError(f"unknown bench tier {tier!r} (choose from {BENCH_TIERS})")
    return {
        "line": ExperimentConfig(
            name="bench-line",
            topology="line",
            n_nodes=4,
            duration_s=30.0,
            warmup_s=3.0,
            drain_s=2.0,
            seed=7,
        ),
        "tree": ExperimentConfig(
            name="bench-tree",
            topology="tree",
            n_nodes=15,
            duration_s=20.0,
            warmup_s=5.0,
            drain_s=2.0,
            seed=7,
        ),
        "mesh": ExperimentConfig(
            name="bench-mesh",
            topology="dynamic",
            n_nodes=8,
            duration_s=20.0,
            warmup_s=30.0,
            drain_s=2.0,
            seed=7,
        ),
        "scale100": scale_config(100),
        "scale100-allpairs": scale_config(100, spatial_index="allpairs"),
    }


def run_bench(
    tier: str = "default", dispatch: str = "serial", workers: int = 1
) -> dict:
    """Profile every scenario of ``tier``; return the baseline document.

    ``dispatch`` selects the kernel mode (``serial`` | ``lookahead``, see
    :mod:`repro.sim.parallel`) for every scenario; the mode is recorded in
    the document so a ``--compare`` across modes reads as a speedup table.
    """
    scenarios = {}
    for label, config in bench_configs(tier).items():
        if dispatch != "serial" or workers != 1:
            config = replace(
                config, kernel={"dispatch": dispatch, "workers": workers}
            )
        PROFILER.configure()
        try:
            run_experiment(config)
        finally:
            profile = PROFILER.report(
                sim_time_ns=s_to_ns(config.total_runtime_s)
            )
            PROFILER.reset()
        scenarios[label] = {
            "topology": config.topology,
            "n_nodes": config.n_nodes,
            "sim_time_s": config.total_runtime_s,
            "events": profile["events"],
            "wall_s": round(profile["wall_s"], 4),
            "events_per_wall_s": round(profile["events_per_wall_s"], 1),
            "sim_s_per_wall_s": round(profile["sim_s_per_wall_s"], 1),
        }
    return {"schema": BENCH_SCHEMA, "dispatch": dispatch, "scenarios": scenarios}


def scenario_mismatches(current: dict, baseline: dict) -> List[str]:
    """Scenario-set differences between two bench documents, both ways.

    A label present in one document but not the other is a comparison
    *setup* error (typically documents produced by different ``--tier``
    values), not a perf regression: each difference yields one clear
    diagnostic line and the CLI exits 2 instead of raising a KeyError or
    mislabeling it a regression.
    """
    cur = set(current.get("scenarios", {}))
    base = set(baseline.get("scenarios", {}))
    problems: List[str] = []
    for label in sorted(base - cur):
        problems.append(
            f"{label}: present in baseline but missing from current run "
            f"(different --tier values?)"
        )
    for label in sorted(cur - base):
        problems.append(
            f"{label}: present in current run but missing from baseline "
            f"(different --tier values?)"
        )
    return problems


def compare_documents(
    current: dict, baseline: dict, threshold: float
) -> List[str]:
    """Check ``current`` against ``baseline``; return regression messages.

    A scenario regresses when its ``events_per_wall_s`` drops by more than
    ``threshold`` (a fraction: 0.25 = 25 %) relative to the baseline.
    Only scenarios present in *both* documents are compared; scenario-set
    differences are the province of :func:`scenario_mismatches` (the CLI
    runs both and exits 2 on a mismatch).
    """
    problems: List[str] = []
    base_scenarios = baseline.get("scenarios", {})
    cur_scenarios = current.get("scenarios", {})
    for label, base_row in sorted(base_scenarios.items()):
        cur_row = cur_scenarios.get(label)
        if cur_row is None:
            continue
        base_eps = float(base_row["events_per_wall_s"])
        cur_eps = float(cur_row["events_per_wall_s"])
        if base_eps <= 0:
            continue
        ratio = cur_eps / base_eps
        if ratio < 1.0 - threshold:
            problems.append(
                f"{label}: {cur_eps:.1f} events/s is "
                f"{(1.0 - ratio) * 100.0:.1f}% below baseline "
                f"{base_eps:.1f} (threshold {threshold * 100.0:.0f}%)"
            )
    return problems


def render_comparison(current: dict, baseline: dict) -> str:
    """Human-readable per-scenario throughput deltas vs a baseline."""
    lines = []
    base_scenarios = baseline.get("scenarios", {})
    for label, row in sorted(current.get("scenarios", {}).items()):
        cur_eps = float(row["events_per_wall_s"])
        base_row = base_scenarios.get(label)
        if base_row is None:
            lines.append(f"{label:17s} {cur_eps:10.1f} events/sec (no baseline)")
            continue
        base_eps = float(base_row["events_per_wall_s"])
        ratio = cur_eps / base_eps if base_eps > 0 else float("inf")
        lines.append(
            f"{label:17s} {cur_eps:10.1f} events/sec "
            f"vs baseline {base_eps:10.1f}  ({ratio:5.2f}x)"
        )
    return "\n".join(lines)


def git_revision() -> str:
    """The current git revision (short), or ``"unknown"`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def history_lines(
    doc: dict, tier: str, rev: str, ts_unix: float
) -> List[dict]:
    """One history record per scenario of a bench document.

    The timestamp and git revision are wall-clock/workspace facts, which
    is exactly the point: the history file is the machine-local perf log
    (like ``profile.json``), never a reproducible result document.
    """
    stamp = datetime.fromtimestamp(ts_unix, timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%SZ"
    )
    lines = []
    for label, row in sorted(doc.get("scenarios", {}).items()):
        lines.append({
            "schema": BENCH_HISTORY_SCHEMA,
            "ts": stamp,
            "rev": rev,
            "tier": tier,
            "dispatch": doc.get("dispatch", "serial"),
            "scenario": label,
            "n_nodes": row["n_nodes"],
            "events": row["events"],
            "wall_s": row["wall_s"],
            "events_per_wall_s": row["events_per_wall_s"],
        })
    return lines


def append_history(path: Path, doc: dict, tier: str) -> int:
    """Append the document's per-scenario records to the JSONL history
    file; returns the number of lines appended."""
    lines = history_lines(doc, tier, git_revision(), unix_time())
    with path.open("a") as fh:
        for line in lines:
            fh.write(json.dumps(line, sort_keys=True) + "\n")
    return len(lines)


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``bench`` options (shared by the CLI subcommand)."""
    parser.add_argument(
        "-o", "--out", default="BENCH_metrics.json",
        help="baseline document to (re)write (default: BENCH_metrics.json)",
    )
    parser.add_argument(
        "--compare", default=None, metavar="BASELINE",
        help="compare against this baseline document and fail on regression",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_REGRESSION_THRESHOLD,
        help="tolerated events/sec drop as a fraction "
             f"(default {DEFAULT_REGRESSION_THRESHOLD})",
    )
    parser.add_argument(
        "--warn-only", action="store_true",
        help="report regressions but exit 0 (CI soak mode)",
    )
    parser.add_argument(
        "--tier", choices=BENCH_TIERS, default="default",
        help="scenario tier: 'default' (line/tree/mesh + 100-node scale) "
             "or 'scale' (500/1000-node runs; use a separate --out and "
             "baseline)",
    )
    parser.add_argument(
        "--append-history", default=None, metavar="JSONL",
        help="also append one line per scenario (timestamp, git rev, "
             "events/sec) to this JSONL perf log (e.g. BENCH_history.jsonl)",
    )
    parser.add_argument(
        "--dispatch", choices=("serial", "lookahead"), default="serial",
        help="kernel dispatch mode for every scenario (lookahead = the "
             "cluster-parallel conservative-lookahead dispatcher)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="lookahead dispatch lane workers (>= 1; default 1)",
    )


def run_bench_cli(args: argparse.Namespace) -> int:
    """Execute the bench subcommand; returns a process exit code."""
    baseline: Optional[dict] = None
    if args.compare is not None:
        # Read the baseline *before* writing --out: they may be the same file.
        baseline = json.loads(Path(args.compare).read_text())
    dispatch = getattr(args, "dispatch", "serial")
    workers = getattr(args, "workers", 1)
    if workers < 1:
        print("--workers must be >= 1")
        return 2
    doc = run_bench(
        getattr(args, "tier", "default"), dispatch=dispatch, workers=workers
    )
    out = Path(args.out)
    out.write_text(json.dumps(doc, sort_keys=True, indent=2) + "\n")
    for label, row in doc["scenarios"].items():
        print(
            f"{label:17s} {row['n_nodes']:4d} nodes "
            f"{row['events']:8d} events {row['wall_s']:8.3f}s wall "
            f"{row['events_per_wall_s']:10.1f} events/sec "
            f"x{row['sim_s_per_wall_s']:.0f} real time"
            + (f" [{dispatch}]" if dispatch != "serial" else "")
        )
    print(f"baseline written to {out}")
    history = getattr(args, "append_history", None)
    if history is not None:
        appended = append_history(Path(history), doc, args.tier)
        print(f"{appended} history line(s) appended to {history}")
    if baseline is None:
        return 0
    print(render_comparison(doc, baseline))
    mismatches = scenario_mismatches(doc, baseline)
    for problem in mismatches:
        print(f"MISMATCH: {problem}")
    problems = compare_documents(doc, baseline, args.threshold)
    for problem in problems:
        print(f"REGRESSION: {problem}")
    if not mismatches and not problems:
        return 0
    if args.warn_only:
        print("(warn-only: exit 0 despite regressions)")
        return 0
    return 2 if mismatches else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Run the bench and (re)write the baseline; optionally gate on one."""
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Re-run the committed perf scenarios and write/compare "
                    "the BENCH_metrics.json baseline.",
    )
    add_bench_arguments(parser)
    return run_bench_cli(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
