"""Instrumentation toggle versioning for the kernel's dispatch loops.

The kernel selects a specialized event loop at :meth:`Simulator.run` entry
based on which instrumentation hubs (:data:`repro.trace.tracer.TRACE`,
:data:`repro.obs.profiler.PROFILER`, :data:`repro.obs.registry.METRICS`)
are enabled, instead of re-testing three ``.enabled`` predicates around
every dispatched callback.  For that selection to stay correct when a hub
is armed or disarmed *mid-run* (e.g. from a scheduled callback), every
enable/disable transition bumps the process-wide version counter here; the
running loop compares one integer per dispatch and returns to the selector
when it changed.

This module is a dependency leaf on purpose: the tracer, the metrics hub,
the profiler, and the kernel all import it, so it must import none of them.
"""

from __future__ import annotations


class InstrumentationVersion:
    """A monotonically increasing toggle counter (process-wide)."""

    __slots__ = ("version",)

    def __init__(self) -> None:
        #: Bumped by every hub enable/disable transition.
        self.version = 0

    def bump(self) -> None:
        """Record that some hub's ``enabled`` flag changed."""
        self.version += 1


#: The singleton every hub bumps and the kernel's loops watch.
INSTR = InstrumentationVersion()
