"""Runtime observability: metrics, snapshots, and the simulator profiler.

``repro.obs`` is the aggregate companion of :mod:`repro.trace`: where the
tracer records *every* event for offline inspection, the metrics hub keeps
cheap always-on aggregates -- counters, gauges, and fixed-bucket streaming
histograms -- the way RIOT exposes statistics on real nodes.  Both follow
the same hot-path contract: a module-level singleton that is never rebound,
guarded by one ``enabled`` attribute, so the cost with the subsystem
disabled is one attribute load and one branch.

Modules:

* :mod:`repro.obs.registry` -- instruments, per-scope registries, and the
  :data:`~repro.obs.registry.METRICS` hub singleton.
* :mod:`repro.obs.profiler` -- the wall-clock dispatch profiler and its
  :data:`~repro.obs.profiler.PROFILER` singleton.
* :mod:`repro.obs.sampler` -- the sim-time snapshotter that turns registry
  states into time series (including the shading-onset gauge).
* :mod:`repro.obs.export` -- ``metrics.json`` documents, Prometheus text
  exposition, and cross-repetition merging.
* :mod:`repro.obs.bench` -- the perf-baseline harness behind
  ``BENCH_metrics.json``.
"""

from repro.obs.registry import (
    METRICS,
    Counter,
    CounterVec,
    Gauge,
    Histogram,
    MetricsHub,
    MetricsRegistry,
    RTT_BUCKETS_S,
)
from repro.obs.export import (
    METRICS_SCHEMA,
    build_metrics_document,
    dumps_metrics_document,
    to_prometheus,
    validate_metrics_document,
)
from repro.obs.profiler import PROFILER, Profiler
from repro.obs.sampler import MetricsSnapshotter

__all__ = [
    "METRICS",
    "METRICS_SCHEMA",
    "PROFILER",
    "Counter",
    "CounterVec",
    "Gauge",
    "Histogram",
    "MetricsHub",
    "MetricsRegistry",
    "MetricsSnapshotter",
    "Profiler",
    "RTT_BUCKETS_S",
    "build_metrics_document",
    "dumps_metrics_document",
    "to_prometheus",
    "validate_metrics_document",
]
