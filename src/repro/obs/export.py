"""Export: ``metrics.json`` documents and Prometheus text exposition.

A metrics document is self-describing (``schema`` key, currently
``repro.obs/1``) and aggregates one or more per-run metric payloads --
the ``{"sim_time_ns", "scopes", "series"}`` dicts the experiment runner
attaches to results -- into a single merged snapshot.  Merging follows
:func:`repro.obs.registry.merge_scope_snapshots`: counters add, histograms
fold bucket-wise, gauges keep their min/max envelope.

Serialization is canonical (sorted keys, fixed indent, trailing newline),
so a document built from the same runs in the same order is byte-identical
regardless of how many worker processes produced the runs -- the property
the CI determinism gate checks with ``cmp``.
"""

from __future__ import annotations

import json
import re
from typing import Iterable, List, Optional, Sequence

from repro.obs.registry import merge_scope_snapshots

#: Schema tag stamped into every document.
METRICS_SCHEMA = "repro.obs/1"

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def build_metrics_document(
    name: str,
    payloads: Sequence[dict],
    seeds: Optional[Iterable[int]] = None,
) -> dict:
    """Aggregate per-run metric payloads into one ``metrics.json`` document.

    :param name: experiment name for the ``experiment`` field.
    :param payloads: per-run payloads in repetition order; each is the dict
        the runner produced (``sim_time_ns``, ``scopes``, optional
        ``series``).
    :param seeds: the seeds behind the runs, recorded for provenance.
    :returns: JSON-safe document.  ``series`` is only present for a
        single-run document -- per-tick series from different seeds do not
        merge meaningfully.
    """
    payloads = [p for p in payloads if p is not None]
    if not payloads:
        raise ValueError("no metric payloads to aggregate")
    doc = {
        "schema": METRICS_SCHEMA,
        "experiment": name,
        "runs": len(payloads),
        "sim_time_ns": sum(int(p.get("sim_time_ns", 0)) for p in payloads),
        "scopes": merge_scope_snapshots(p.get("scopes", {}) for p in payloads),
    }
    if seeds is not None:
        doc["seeds"] = list(seeds)
    if len(payloads) == 1 and payloads[0].get("series") is not None:
        doc["series"] = payloads[0]["series"]
    return doc


def dumps_metrics_document(doc: dict) -> str:
    """Canonical serialization: sorted keys, indent 2, trailing newline."""
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def validate_metrics_document(doc: dict) -> None:
    """Raise :class:`ValueError` if ``doc`` is not a valid v1 document."""
    if not isinstance(doc, dict):
        raise ValueError("metrics document must be an object")
    if doc.get("schema") != METRICS_SCHEMA:
        raise ValueError(
            f"unknown metrics schema {doc.get('schema')!r}; "
            f"expected {METRICS_SCHEMA!r}"
        )
    for key, kind in (
        ("experiment", str),
        ("runs", int),
        ("sim_time_ns", int),
        ("scopes", dict),
    ):
        if not isinstance(doc.get(key), kind):
            raise ValueError(f"metrics document field {key!r} missing or wrong type")
    if doc["runs"] < 1:
        raise ValueError("metrics document must cover at least one run")
    for scope, registry in doc["scopes"].items():
        if not isinstance(registry, dict):
            raise ValueError(f"scope {scope!r} must be an object")
        for kind in ("counters", "gauges", "histograms", "vectors"):
            if not isinstance(registry.get(kind), dict):
                raise ValueError(f"scope {scope!r} missing {kind!r} table")
        for hname, hist in registry["histograms"].items():
            counts = hist.get("counts")
            bounds = hist.get("bounds")
            if not isinstance(bounds, list) or not isinstance(counts, list):
                raise ValueError(
                    f"histogram {scope}:{hname} needs bounds and counts lists"
                )
            if len(counts) != len(bounds) + 1:
                raise ValueError(
                    f"histogram {scope}:{hname} needs len(bounds)+1 counts"
                )
            if sum(counts) != hist.get("count"):
                raise ValueError(
                    f"histogram {scope}:{hname} count does not match buckets"
                )
    series = doc.get("series")
    if series is not None:
        if not isinstance(series, dict) or "times_ns" not in series:
            raise ValueError("series must be an object with times_ns")
        n = len(series["times_ns"])
        for key, column in series.get("values", {}).items():
            if len(column) != n:
                raise ValueError(
                    f"series column {key!r} length differs from times_ns"
                )


def _metric_name(name: str) -> str:
    """``ble.conn_events_served`` -> ``repro_ble_conn_events_served``."""
    return "repro_" + _NAME_SANITIZE.sub("_", name)


def to_prometheus(scopes: dict) -> str:
    """Render merged scope snapshots in Prometheus text exposition format.

    Counters get a ``_total`` suffix, histograms the conventional
    ``_bucket{le=...}`` / ``_sum`` / ``_count`` triple with cumulative
    bucket counts, vectors one sample per label value.  The per-node /
    per-subsystem scope becomes a ``scope`` label.
    """
    lines: List[str] = []
    types_seen = set()

    def type_line(metric: str, kind: str) -> None:
        if metric not in types_seen:
            types_seen.add(metric)
            lines.append(f"# TYPE {metric} {kind}")

    for scope in sorted(scopes):
        registry = scopes[scope]
        for name in sorted(registry.get("counters", {})):
            metric = _metric_name(name) + "_total"
            type_line(metric, "counter")
            value = registry["counters"][name]
            lines.append(f'{metric}{{scope="{scope}"}} {value}')
        for name in sorted(registry.get("gauges", {})):
            gauge = registry["gauges"][name]
            metric = _metric_name(name)
            for suffix, key in (("", "last"), ("_min", "min"), ("_max", "max")):
                if gauge.get(key) is None:
                    continue
                type_line(metric + suffix, "gauge")
                lines.append(
                    f'{metric}{suffix}{{scope="{scope}"}} {gauge[key]}'
                )
        for name in sorted(registry.get("histograms", {})):
            hist = registry["histograms"][name]
            metric = _metric_name(name)
            type_line(metric, "histogram")
            cumulative = 0
            for bound, count in zip(hist["bounds"], hist["counts"]):
                cumulative += count
                lines.append(
                    f'{metric}_bucket{{scope="{scope}",le="{bound}"}} '
                    f"{cumulative}"
                )
            lines.append(
                f'{metric}_bucket{{scope="{scope}",le="+Inf"}} {hist["count"]}'
            )
            lines.append(f'{metric}_sum{{scope="{scope}"}} {hist["sum"]}')
            lines.append(f'{metric}_count{{scope="{scope}"}} {hist["count"]}')
        for name in sorted(registry.get("vectors", {})):
            vec = registry["vectors"][name]
            metric = _metric_name(name) + "_total"
            type_line(metric, "counter")
            label_key = _NAME_SANITIZE.sub("_", vec.get("label", "label"))
            for label in sorted(vec.get("values", {})):
                lines.append(
                    f'{metric}{{scope="{scope}",{label_key}="{label}"}} '
                    f"{vec['values'][label]}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
