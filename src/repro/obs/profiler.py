"""Wall-clock simulator profiler: per-subsystem dispatch-time attribution.

The kernel's event loop is the only place simulated work happens, so timing
each dispatched callback and attributing it to the subsystem that owns the
callback (``repro.ble.conn`` -> ``ble``) yields a complete wall-clock
profile of a run without any per-layer instrumentation.  The attribution is
cached per function object -- bound methods are unwrapped to their
``__func__`` first, because every ``sim.at(..., self._run_event)`` creates
a fresh bound-method wrapper around the same underlying function.

Profiler output is *wall-clock* data and therefore non-deterministic; it is
deliberately kept out of ``metrics.json`` (which must be byte-identical
across worker counts) and lands in ``profile.json`` / the CLI summary
instead.

:data:`PROFILER` follows the one-predicate-when-disabled discipline of
:data:`repro.trace.tracer.TRACE` and :data:`repro.obs.registry.METRICS`.
"""

from __future__ import annotations

from functools import partial
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional

from repro.obs.instr import INSTR
from repro.obs.registry import Histogram
from repro.sim.units import ns_to_s

#: Bucket bounds (wall seconds) for the lookahead barrier-stall histogram:
#: per-window synchronization overhead is microseconds on a healthy run,
#: with a tail into milliseconds when a window drains a large batch.
BARRIER_BUCKETS_S: tuple = (
    0.000001, 0.0000025, 0.000005, 0.00001, 0.000025, 0.00005,
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1,
)

#: The dedicated attribution bucket for time spent at the lookahead
#: synchronization barrier (window drain, partition, merge, bookkeeping).
#: Without it that wall time would be smeared into whichever subsystem's
#: callback happened to run last in the window.
BARRIER_BUCKET = "kernel.barrier"


class Profiler:
    """Accumulates (event count, wall seconds) per subsystem."""

    __slots__ = (
        "enabled",
        "_by_subsystem",
        "_cache",
        "_entry_cache",
        "_wall_start",
        "_windows",
        "_par_sum",
        "_par_max",
        "_lane_events",
        "_barrier_hist",
    )

    def __init__(self) -> None:
        #: The hot-path gate; the kernel checks this around every dispatch.
        self.enabled = False
        #: subsystem -> [events, wall_seconds].
        self._by_subsystem: Dict[str, List[float]] = {}
        self._cache: Dict[object, str] = {}
        #: function object -> its subsystem's accumulator entry, so the
        #: per-dispatch :meth:`record` is one dict hit, not a classification.
        self._entry_cache: Dict[object, List[float]] = {}
        self._wall_start = 0.0
        #: Lookahead-dispatch statistics (zero under serial dispatch).
        self._windows = 0
        self._par_sum = 0
        self._par_max = 0
        self._lane_events: Dict[str, int] = {}
        self._barrier_hist = Histogram(BARRIER_BUCKETS_S)

    def configure(self) -> None:
        """Arm the profiler: clear accumulators, start the wall clock."""
        self._by_subsystem = {}
        self._cache = {}
        self._entry_cache = {}
        self._wall_start = perf_counter()
        self._windows = 0
        self._par_sum = 0
        self._par_max = 0
        self._lane_events = {}
        self._barrier_hist = Histogram(BARRIER_BUCKETS_S)
        self.enabled = True
        INSTR.bump()

    def reset(self) -> None:
        """Disarm the profiler (accumulated data stays readable)."""
        self.enabled = False
        INSTR.bump()

    def subsystem_of(self, callback: Callable[..., Any]) -> str:
        """The subsystem owning ``callback`` (second ``repro.X`` segment).

        ``functools.partial`` objects carry no ``__module__``, so a partial
        of a ``repro.workload`` timer would land in the catch-all bucket;
        the partial chain is unwrapped to the underlying callable first and
        classified by *its* module.
        """
        func = getattr(callback, "__func__", callback)
        try:
            cached = self._cache.get(func)
        except TypeError:  # unhashable callable; classify every time
            cached = None
            func = None
        if cached is not None:
            return cached
        inner: Any = callback
        while isinstance(inner, partial):
            inner = inner.func
        module = getattr(inner, "__module__", "") or ""
        parts = module.split(".")
        if parts[0] == "repro" and len(parts) > 1:
            subsystem = parts[1]
        else:
            subsystem = parts[0] or "other"
        if func is not None:
            self._cache[func] = subsystem
        return subsystem

    def record(self, callback: Callable[..., Any], wall_s: float) -> None:
        """Account one dispatched callback."""
        func = getattr(callback, "__func__", callback)
        try:
            entry = self._entry_cache.get(func)
        except TypeError:  # unhashable callable; classify every time
            entry = None
            func = None
        if entry is None:
            subsystem = self.subsystem_of(callback)
            entry = self._by_subsystem.get(subsystem)
            if entry is None:
                entry = self._by_subsystem[subsystem] = [0, 0.0]
            if func is not None:
                self._entry_cache[func] = entry
        entry[0] += 1
        entry[1] += wall_s

    def record_bulk(
        self, callback: Callable[..., Any], count: int, wall_s: float
    ) -> None:
        """Account ``count`` dispatches of ``callback`` totalling ``wall_s``.

        Flush target for dispatch loops that batch attribution locally
        (one dict update per event instead of a :meth:`record` call).
        """
        func = getattr(callback, "__func__", callback)
        try:
            entry = self._entry_cache.get(func)
        except TypeError:  # unhashable callable; classify every time
            entry = None
            func = None
        if entry is None:
            subsystem = self.subsystem_of(callback)
            entry = self._by_subsystem.get(subsystem)
            if entry is None:
                entry = self._by_subsystem[subsystem] = [0, 0.0]
            if func is not None:
                self._entry_cache[func] = entry
        entry[0] += count
        entry[1] += wall_s

    def record_barrier(self, wall_s: float) -> None:
        """Account one lookahead window's synchronization-barrier time.

        The stall lands in the dedicated :data:`BARRIER_BUCKET` subsystem
        entry -- never in the subsystem of the last callback that ran --
        and feeds the barrier-stall histogram.
        """
        entry = self._by_subsystem.get(BARRIER_BUCKET)
        if entry is None:
            entry = self._by_subsystem[BARRIER_BUCKET] = [0, 0.0]
        entry[0] += 1
        entry[1] += wall_s
        self._barrier_hist.observe(wall_s)

    def record_window(self, lanes: int, lane_events: Dict[str, int]) -> None:
        """Account one lookahead window's lane fan-out.

        ``lanes`` feeds the parallelism gauge (mean/max clusters dispatched
        per window); ``lane_events`` is the per-cluster dispatch
        attribution (events executed per lane label).
        """
        self._windows += 1
        self._par_sum += lanes
        if lanes > self._par_max:
            self._par_max = lanes
        acc = self._lane_events
        for label, count in lane_events.items():
            acc[label] = acc.get(label, 0) + count

    def report(
        self,
        sim_time_ns: Optional[int] = None,
        events: Optional[int] = None,
    ) -> Dict[str, Any]:
        """The profile as a JSON-safe document.

        :param sim_time_ns: simulated span covered, for the
            sim-seconds-per-wall-second figure.
        :param events: total events dispatched (defaults to the profiler's
            own tally, which misses nothing when it was armed for the whole
            run).
        """
        wall_s = perf_counter() - self._wall_start
        dispatch_s = sum(e[1] for e in self._by_subsystem.values())
        # The barrier bucket's "events" are *windows*, not dispatched
        # callbacks: counting them would inflate lookahead throughput
        # figures relative to serial runs of the same scenario.
        counted = sum(
            int(e[0])
            for name, e in self._by_subsystem.items()
            if name != BARRIER_BUCKET
        )
        total_events = events if events is not None else counted
        subsystems: Dict[str, Any] = {}
        for name in sorted(
            self._by_subsystem,
            key=lambda n: self._by_subsystem[n][1],
            reverse=True,
        ):
            n_events, spent = self._by_subsystem[name]
            subsystems[name] = {
                "events": int(n_events),
                "wall_s": spent,
                "share": spent / dispatch_s if dispatch_s > 0 else 0.0,
            }
        doc: Dict[str, Any] = {
            "schema": "repro.obs.profile/1",
            "wall_s": wall_s,
            "dispatch_wall_s": dispatch_s,
            "events": total_events,
            "events_per_wall_s": total_events / wall_s if wall_s > 0 else 0.0,
            "subsystems": subsystems,
        }
        if sim_time_ns is not None:
            doc["sim_time_ns"] = int(sim_time_ns)
            doc["sim_s_per_wall_s"] = (
                ns_to_s(int(sim_time_ns)) / wall_s if wall_s > 0 else 0.0
            )
        if self._windows:
            doc["dispatch"] = {
                "windows": self._windows,
                "parallelism": {
                    "mean": self._par_sum / self._windows,
                    "max": self._par_max,
                },
                "lane_events": {
                    label: self._lane_events[label]
                    for label in sorted(self._lane_events)
                },
                "barrier_stall": self._barrier_hist.to_dict(),
            }
        return doc


#: The singleton the kernel imports.  Never rebind it.
PROFILER = Profiler()
