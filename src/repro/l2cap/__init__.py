"""L2CAP connection-oriented channels with credit-based flow control.

RFC 7668 transfers IPv6 datagrams over an LE credit-based L2CAP channel
(the *Connection Oriented Channel* of the paper's Figure 2): a full-duplex,
reliable, in-order pipe on top of a BLE connection.  This package implements
the channel -- SDU segmentation into K-frames, reassembly, and the credit
economy -- with byte-accurate framing so packet sizes on air match the
arithmetic of §4.3.
"""

from repro.l2cap.coc import CocConfig, L2capCoc, IPSP_PSM

__all__ = ["CocConfig", "L2capCoc", "IPSP_PSM"]
