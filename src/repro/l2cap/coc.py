"""LE credit-based connection-oriented channel (CoC).

Framing (Bluetooth Core 5.2 Vol 3 Part A):

* every L2CAP PDU starts with a 4-byte *basic header*: payload length (2)
  and channel id (2);
* a **K-frame** carries SDU data on the channel's CID; the *first* K-frame
  of an SDU additionally carries the total SDU length (2 bytes);
* **LE Flow Control Credit** signalling packets (CID 0x0005, code 0x16)
  return transmit credits to the peer; one credit pays for one K-frame.

Segmentation is sized so each K-frame fits a single LL data PDU (the data
length extension gives 251 bytes of LL payload, §4.2), which is also how
NimBLE moves IPSP traffic.  The credit economy means a slow consumer stalls
the sender -- back-pressure propagates to the IP packet buffer, where the
paper's overload losses happen (§5.2).
"""

from __future__ import annotations

import struct
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Optional

from repro.ble.conn import Connection, Endpoint
from repro.ble.pdu import DataPdu, Llid
from repro.obs.registry import METRICS
from repro.spans.hub import SPANS
from repro.trace.tracer import TRACE

if TYPE_CHECKING:  # pragma: no cover
    from repro.ble.controller import BleController

#: L2CAP LE signalling channel id.
SIGNALLING_CID = 0x0005
#: LE Credit Based Connection Request / Response signalling codes
#: (BT 5.2 Vol 3 Part A §4.22/§4.23).
LE_CREDIT_CONN_REQ = 0x14
LE_CREDIT_CONN_RSP = 0x15
#: LE Flow Control Credit signalling code.
LE_FLOW_CONTROL_CREDIT = 0x16
#: Connection response result codes.
RESULT_SUCCESS = 0x0000
RESULT_PSM_NOT_SUPPORTED = 0x0002
#: Default dynamic CID used for the IPSP data channel on both sides.
DEFAULT_COC_CID = 0x0040
#: IPSP LE_PSM (RFC 7668 §4; Internet Protocol Support Profile).
IPSP_PSM = 0x0023

_BASIC_HEADER = struct.Struct("<HH")
_SDU_LEN = struct.Struct("<H")
_CREDIT_PACKET = struct.Struct("<HHBBHHH")
#: header(len,cid) + code,id,len + psm,scid,mtu,mps,credits
_CONN_REQ = struct.Struct("<HHBBHHHHHH")
#: header(len,cid) + code,id,len + dcid,mtu,mps,credits,result
_CONN_RSP = struct.Struct("<HHBBHHHHHH")


class CocConfig:
    """Channel parameters.

    :param mtu: maximum SDU size; RFC 7668 requires >= 1280 (IPv6 MTU).
    :param mps: maximum K-frame *payload* size.  The default (247) makes a
        continuation K-frame exactly fill a 251-byte LL PDU.
    :param initial_credits: K-frames the peer may send before the first
        credit return.
    """

    def __init__(self, mtu: int = 1280, mps: int = 247, initial_credits: int = 10):
        if mps < 23:
            raise ValueError("MPS below the L2CAP minimum of 23")
        if mtu < mps:
            raise ValueError("MTU must be at least one MPS")
        if initial_credits < 1:
            raise ValueError("need at least one initial credit")
        self.mtu = mtu
        self.mps = mps
        self.initial_credits = initial_credits


class _SduRecord:
    """One queued outbound SDU and its segmentation progress."""

    __slots__ = ("data", "offset", "tag", "frames_sent", "frames_acked", "complete")

    def __init__(self, data: bytes, tag: Optional[object]):
        self.data = data
        self.offset = 0
        self.tag = tag
        self.frames_sent = 0
        self.frames_acked = 0
        self.complete = False  # all frames handed to LL


class _CocEnd:
    """One side of the channel: credits, segmentation, reassembly."""

    def __init__(self, coc: "L2capCoc", ll_end: Endpoint, config: CocConfig):
        self.coc = coc
        self.ll_end = ll_end
        self.config = config
        #: K-frames we may still send (granted by the peer).
        self.credits = config.initial_credits
        self.tx_sdus: Deque[_SduRecord] = deque()
        self._rx_buf = bytearray()
        self._rx_expected: Optional[int] = None
        self._rx_frames = 0
        self._stalled_on_pool = False
        self._pending_credit_grant = 0
        self._consumed_since_grant = 0
        # Return credits in batches (half the initial window), like real
        # stacks do -- a per-SDU grant would double the packet load on
        # saturated links.
        self._grant_threshold = max(1, config.initial_credits // 2)
        self._sig_identifier = 1
        #: Upper-layer delivery hook: ``on_sdu(bytes)``.
        self.on_sdu: Optional[Callable[[bytes], None]] = None
        #: Completion hook: ``on_sdu_sent(tag)`` after the last frame is
        #: acknowledged on the link layer.
        self.on_sdu_sent: Optional[Callable[[Optional[object]], None]] = None
        # Statistics.
        self.sdus_sent = 0
        self.sdus_received = 0
        self.credits_returned = 0
        self.bytes_sent = 0

        ll_end.on_rx_pdu = self._on_ll_rx
        ll_end.on_pdu_acked = self._on_ll_acked

    # -- transmit ---------------------------------------------------------

    def queue_bytes(self) -> int:
        """Bytes of SDUs not yet fully acknowledged on this side."""
        return sum(len(rec.data) for rec in self.tx_sdus)

    def send_sdu(self, sdu: bytes, tag: Optional[object] = None) -> None:
        """Queue one SDU for segmentation and transfer."""
        if len(sdu) > self.config.mtu:
            raise ValueError(f"SDU of {len(sdu)} bytes exceeds MTU {self.config.mtu}")
        rec = _SduRecord(sdu, tag)
        self.tx_sdus.append(rec)
        if SPANS.enabled:
            controller = self.ll_end.controller
            peer = self.coc.conn.peer_of(controller).identity
            SPANS.hop_open(
                rec, self.coc.conn,
                f"node{controller.identity}", f"node{peer}",
            )
        self.pump()

    def pump(self) -> None:
        """Push K-frames to the LL while credits and buffers allow."""
        if not self.coc.is_open:
            return  # queued SDUs wait for the channel handshake
        while self.tx_sdus and self.credits > 0:
            rec = self.tx_sdus[0]
            if rec.complete:
                # head is fully handed to LL, awaiting acks; nothing to push
                break
            frame, is_last = self._build_kframe(rec)
            ok = self.coc.conn.send(
                self.ll_end.controller,
                frame,
                llid=Llid.DATA_START,
                tag=("kframe", self, rec, is_last),
            )
            if not ok:
                self._stalled_on_pool = True
                if METRICS.enabled:
                    METRICS.inc(
                        self.ll_end.controller.name, "l2cap.pool_stalls"
                    )
                return
            self._stalled_on_pool = False
            self.credits -= 1
            rec.frames_sent += 1
            self.bytes_sent += len(frame)
            if is_last:
                rec.complete = True
            if TRACE.enabled:
                TRACE.emit(
                    self.coc.conn.sim.now, "l2cap", "kframe_tx",
                    conn=self.coc.conn.conn_id,
                    node=self.ll_end.controller.name,
                    frame_len=len(frame), credits_left=self.credits,
                    last=is_last,
                )
        if (
            METRICS.enabled
            and self.credits == 0
            and self.tx_sdus
            and not self.tx_sdus[0].complete
        ):
            # the head SDU still has frames to push but the peer owes us
            # credits: the back-pressure situation of §5.2
            METRICS.inc(self.ll_end.controller.name, "l2cap.credit_stalls")

    def _build_kframe(self, rec: _SduRecord) -> tuple[bytes, bool]:
        """Produce the next K-frame of ``rec`` (without sending it)."""
        first = rec.offset == 0
        budget = self.config.mps - (2 if first else 0)
        chunk = rec.data[rec.offset : rec.offset + budget]
        rec.offset += len(chunk)
        is_last = rec.offset >= len(rec.data)
        if first:
            payload = _SDU_LEN.pack(len(rec.data)) + chunk
        else:
            payload = bytes(chunk)
        header = _BASIC_HEADER.pack(len(payload), DEFAULT_COC_CID)
        return header + payload, is_last

    def _on_ll_acked(self, pdu: DataPdu) -> None:
        """LL acknowledged one of our PDUs: progress + possibly completion."""
        tag = pdu.tag
        if isinstance(tag, tuple) and tag[0] == "kframe":
            _, end, rec, is_last = tag
            rec.frames_acked += 1
            if is_last and rec.complete:
                if self.tx_sdus and self.tx_sdus[0] is rec:
                    self.tx_sdus.popleft()
                self.sdus_sent += 1
                if TRACE.enabled:
                    TRACE.emit(
                        self.coc.conn.sim.now, "l2cap", "sdu_sent",
                        conn=self.coc.conn.conn_id,
                        node=self.ll_end.controller.name,
                        len=len(rec.data),
                    )
                if self.on_sdu_sent is not None:
                    self.on_sdu_sent(rec.tag)
        # acked PDUs free LL buffer space: resume stalled grants and pumps
        self._flush_credit_grant()
        self.pump()

    # -- receive ----------------------------------------------------------

    def _on_ll_rx(self, pdu: DataPdu) -> None:
        """Parse one LL payload as an L2CAP PDU."""
        data = pdu.payload
        if len(data) < _BASIC_HEADER.size:
            return  # malformed; drop silently like a real controller
        length, cid = _BASIC_HEADER.unpack_from(data)
        body = data[_BASIC_HEADER.size : _BASIC_HEADER.size + length]
        if cid == SIGNALLING_CID:
            self._on_signalling(body)
        elif cid == DEFAULT_COC_CID:
            tag = pdu.tag
            if SPANS.enabled and isinstance(tag, tuple) and tag[0] == "kframe":
                # Install the carrying hop's journey context around the
                # whole delivery chain: reassembly completion closes this
                # hop, and a forwarded SDU opens the next one under the
                # same journey.
                span_prev = SPANS.rx_enter(tag[2])
                try:
                    self._on_kframe(body)
                finally:
                    SPANS.ctx_restore(span_prev)
            else:
                self._on_kframe(body)
        else:
            handler = self.coc.fixed_handlers.get(
                (cid, self.ll_end.controller)
            )
            if handler is not None:
                handler(body)

    def _on_signalling(self, body: bytes) -> None:
        """Dispatch one LE signalling command."""
        if len(body) < 4:
            return
        code = body[0]
        if code == LE_FLOW_CONTROL_CREDIT and len(body) >= 8:
            credits = struct.unpack_from("<H", body, 6)[0]
            self.credits += credits
            self.pump()
        elif code == LE_CREDIT_CONN_REQ and len(body) >= 14:
            psm, _scid, _mtu, _mps, credits = struct.unpack_from("<HHHHH", body, 4)
            self.coc._on_conn_request(self, psm, credits)
        elif code == LE_CREDIT_CONN_RSP and len(body) >= 14:
            _dcid, _mtu, _mps, credits, result = struct.unpack_from(
                "<HHHHH", body, 4
            )
            self.coc._on_conn_response(self, credits, result)

    def _on_kframe(self, body: bytes) -> None:
        """Reassemble K-frames into SDUs and deliver them."""
        if self._rx_expected is None:
            if len(body) < _SDU_LEN.size:
                return
            self._rx_expected = _SDU_LEN.unpack_from(body)[0]
            body = body[_SDU_LEN.size :]
            self._rx_buf.clear()
            self._rx_frames = 0
        self._rx_buf.extend(body)
        self._rx_frames += 1
        if len(self._rx_buf) >= self._rx_expected:
            sdu = bytes(self._rx_buf[: self._rx_expected])
            frames = self._rx_frames
            self._rx_expected = None
            self._rx_buf.clear()
            self._rx_frames = 0
            self.sdus_received += 1
            if TRACE.enabled:
                TRACE.emit(
                    self.coc.conn.sim.now, "l2cap", "sdu_rx",
                    conn=self.coc.conn.conn_id,
                    node=self.ll_end.controller.name,
                    len=len(sdu), frames=frames,
                )
            self._return_credits(frames)
            if SPANS.enabled:
                SPANS.hop_delivered()
            if self.on_sdu is not None:
                self.on_sdu(sdu)

    def _return_credits(self, n: int) -> None:
        """Account consumed K-frames; grant a batch once enough accrued."""
        self._consumed_since_grant += n
        if self._consumed_since_grant < self._grant_threshold:
            return
        self._pending_credit_grant += self._consumed_since_grant
        self._consumed_since_grant = 0
        self._flush_credit_grant()

    def _flush_credit_grant(self) -> None:
        """Send any pending credit grant; retried when buffers free up so a
        full pool cannot permanently strand the peer without credits."""
        if self._pending_credit_grant == 0:
            return
        n = self._pending_credit_grant
        packet = _CREDIT_PACKET.pack(
            10,  # signalling payload length: code+id+len+cid+credits
            SIGNALLING_CID,
            LE_FLOW_CONTROL_CREDIT,
            self._sig_identifier & 0xFF,
            6,  # data length of the command
            DEFAULT_COC_CID,
            n,
        )
        if self.coc.conn.send(
            self.ll_end.controller, packet, llid=Llid.DATA_START, tag=("credit",)
        ):
            self._sig_identifier += 1
            self.credits_returned += n
            self._pending_credit_grant = 0
            if TRACE.enabled:
                TRACE.emit(
                    self.coc.conn.sim.now, "l2cap", "credits",
                    conn=self.coc.conn.conn_id,
                    node=self.ll_end.controller.name,
                    granted=n,
                )


class L2capCoc:
    """A credit-based channel spanning one BLE connection.

    :param conn: the underlying :class:`~repro.ble.conn.Connection`.
    :param config: channel parameters (defaults follow NimBLE's IPSP setup).
    :param handshake: when True the channel starts closed and must be
        established with :meth:`open_channel` (the LE Credit Based
        Connection Request/Response exchange on a PSM, as RFC 7668
        prescribes for IPSP).  When False -- the default, used by unit
        tests and direct library users -- the channel is born open.
    """

    def __init__(
        self,
        conn: Connection,
        config: Optional[CocConfig] = None,
        handshake: bool = False,
    ):
        self.conn = conn
        self.config = config or CocConfig()
        #: 'open', 'idle' (awaiting open_channel), 'requested', 'refused'.
        self.state = "idle" if handshake else "open"
        #: PSMs this channel's responder side accepts (the netif registers
        #: the IPSP PSM; an empty set refuses everything).
        self.accepted_psms = set() if handshake else {IPSP_PSM}
        #: Subscribers called with (coc, success: bool) after the handshake.
        self.open_listeners: list = []
        self._open_notified = False
        #: Fixed-channel demux: (cid, receiving controller) -> handler(body).
        #: ATT (CID 0x0004) registers here; see :mod:`repro.gatt`.
        self.fixed_handlers = {}
        self._ends = {
            conn.coord.controller: _CocEnd(self, conn.coord, self.config),
            conn.sub.controller: _CocEnd(self, conn.sub, self.config),
        }

    def end_of(self, controller: "BleController") -> _CocEnd:
        """The channel endpoint owned by ``controller``."""
        return self._ends[controller]

    @property
    def is_open(self) -> bool:
        """Whether data may flow (handshake complete or not required)."""
        return self.state == "open"

    def register_fixed_channel(self, cid: int, controller, handler) -> None:
        """Attach a fixed-channel handler for PDUs arriving at ``controller``."""
        self.fixed_handlers[(cid, controller)] = handler

    def send_fixed(self, controller, cid: int, body: bytes) -> bool:
        """Send one fixed-channel L2CAP PDU from ``controller``'s side."""
        packet = _BASIC_HEADER.pack(len(body), cid) + body
        return self.conn.send(
            controller, packet, llid=Llid.DATA_START, tag=("fixed", cid)
        )

    def accept_psm(self, psm: int) -> None:
        """Allow incoming channel requests for ``psm`` (responder side)."""
        self.accepted_psms.add(psm)

    def open_channel(self, controller: "BleController", psm: int = IPSP_PSM) -> None:
        """Initiate the LE credit-based connection handshake from
        ``controller``'s side (RFC 7668: the coordinator/6LN initiates)."""
        if self.state == "open":
            return
        self.state = "requested"
        end = self.end_of(controller)
        packet = _CONN_REQ.pack(
            14,
            SIGNALLING_CID,
            LE_CREDIT_CONN_REQ,
            end._sig_identifier & 0xFF,
            10,
            psm,
            DEFAULT_COC_CID,
            self.config.mtu,
            self.config.mps,
            self.config.initial_credits,
        )
        end._sig_identifier += 1
        self.conn.send(controller, packet, llid=Llid.DATA_START, tag=("conn-req",))

    # -- handshake handling (called from the receiving end) -----------------

    def _on_conn_request(self, receiver_end: _CocEnd, psm: int, credits: int) -> None:
        accepted = psm in self.accepted_psms
        result = RESULT_SUCCESS if accepted else RESULT_PSM_NOT_SUPPORTED
        packet = _CONN_RSP.pack(
            14,
            SIGNALLING_CID,
            LE_CREDIT_CONN_RSP,
            receiver_end._sig_identifier & 0xFF,
            10,
            DEFAULT_COC_CID,
            self.config.mtu,
            self.config.mps,
            self.config.initial_credits if accepted else 0,
            result,
        )
        receiver_end._sig_identifier += 1
        self.conn.send(
            receiver_end.ll_end.controller, packet, llid=Llid.DATA_START,
            tag=("conn-rsp",),
        )
        if accepted:
            # the requester granted us `credits` for our transmissions
            receiver_end.credits = credits
            self.state = "open"
            self._notify_open(True)
            receiver_end.pump()

    def _on_conn_response(self, receiver_end: _CocEnd, credits: int, result: int) -> None:
        if result == RESULT_SUCCESS:
            receiver_end.credits = credits
            self.state = "open"
            self._notify_open(True)
            receiver_end.pump()
        else:
            self.state = "refused"
            self._notify_open(False)

    def _notify_open(self, success: bool) -> None:
        # the channel object is shared by both endpoints; notify once
        if self._open_notified:
            return
        self._open_notified = True
        for listener in list(self.open_listeners):
            listener(self, success)

    def send(
        self,
        controller: "BleController",
        sdu: bytes,
        tag: Optional[object] = None,
    ) -> None:
        """Send ``sdu`` from ``controller``'s side of the link."""
        self.end_of(controller).send_sdu(sdu, tag)

    def set_rx_handler(
        self, controller: "BleController", handler: Callable[[bytes], None]
    ) -> None:
        """Install the SDU delivery callback for ``controller``'s side."""
        self.end_of(controller).on_sdu = handler

    @property
    def open(self) -> bool:
        """Whether the underlying connection is still alive."""
        return self.conn.open
