"""Fixed-width table rendering for benchmark output."""

from __future__ import annotations

from typing import Any, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    Cells are stringified; floats get 4 significant digits unless they are
    already strings.
    """

    def fmt(cell: Any) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
