"""Fixed-width table rendering for benchmark output."""

from __future__ import annotations

import re
from typing import Any, List, Sequence

#: Strings that read as numbers for alignment purposes (optionally signed
#: decimal/scientific, optionally %-suffixed).
_NUMERIC_RE = re.compile(r"^[+-]?(\d+(\.\d*)?|\.\d+)([eE][+-]?\d+)?%?$")
#: Cells that neither prove nor disprove a column is numeric.
_NEUTRAL = {"", "-", "nan"}


def _is_numeric_cell(cell: Any) -> bool:
    if isinstance(cell, bool):
        return False
    if isinstance(cell, (int, float)):
        return True
    return isinstance(cell, str) and bool(_NUMERIC_RE.match(cell.strip()))


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    Cells are stringified; floats get a fixed 4-decimal format unless they
    are already strings.  A column whose cells are all numeric (ignoring
    empty/``-``/``nan`` placeholders, with at least one actual number) is
    right-aligned -- header included -- so columns of RTT/PDR values line
    up by magnitude.
    """

    def fmt(cell: Any) -> str:
        if isinstance(cell, float):
            return f"{cell:.4f}"
        return str(cell)

    numeric_col = [False] * len(headers)
    for col in range(len(headers)):
        cells = [row[col] for row in rows if col < len(row)]
        judged = [
            c for c in cells
            if not (isinstance(c, str) and c.strip().lower() in _NEUTRAL)
        ]
        numeric_col[col] = bool(judged) and all(
            _is_numeric_cell(c) for c in judged
        )

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def align(text: str, col: int) -> str:
        if numeric_col[col]:
            return text.rjust(widths[col])
        return text.ljust(widths[col])

    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(align(h, i) for i, h in enumerate(headers)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(align(c, i) for i, c in enumerate(row)))
    return "\n".join(lines)
