"""Terminal renderings of the paper's figure types.

Benchmarks print these next to their numeric tables so a reader can eyeball
the *shape* of each reproduced figure: CDFs (Figs. 7b/8/10b/13c), time
series (Figs. 7a/9/12/13a-b), and per-node/per-channel heat rows (Figs.
9a/12).
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple

_SHADES = " .:-=+*#%@"


def render_cdf(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
) -> str:
    """Plot one or more CDFs as an ASCII grid.

    :param series: label -> (sorted values, cumulative probabilities).
    """
    if not series:
        return "(no data)"
    x_max = max((values[-1] for values, _ in series.values() if values), default=1.0)
    if x_max <= 0:
        x_max = 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "abcdefghij"
    legend = []
    for index, (label, (values, probs)) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        legend.append(f"  {marker} = {label}")
        for x, p in zip(values, probs):
            col = min(width - 1, int(x / x_max * (width - 1)))
            row = min(height - 1, int((1 - p) * (height - 1)))
            grid[row][col] = marker
    lines = ["1.0 |" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append("    |" + "".join(row))
    lines.append("0.0 |" + "".join(grid[-1]))
    lines.append("    +" + "-" * width)
    lines.append(f"     0 {x_label} ... {x_max:.3g}")
    lines.extend(legend)
    return "\n".join(lines)


def render_series(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 12,
    y_lo: float = 0.0,
    y_hi: float = 1.0,
    x_label: str = "t [s]",
) -> str:
    """Plot y(t) traces (e.g. PDR over experiment runtime)."""
    if not series:
        return "(no data)"
    x_max = max((times[-1] for times, _ in series.values() if times), default=1.0)
    grid = [[" "] * width for _ in range(height)]
    markers = "abcdefghij"
    legend = []
    span = y_hi - y_lo or 1.0
    for index, (label, (times, values)) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        legend.append(f"  {marker} = {label}")
        for t, v in zip(times, values):
            col = min(width - 1, int(t / x_max * (width - 1)))
            frac = min(1.0, max(0.0, (v - y_lo) / span))
            row = min(height - 1, int((1 - frac) * (height - 1)))
            grid[row][col] = marker
    lines = [f"{y_hi:4.2f}|" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append("    |" + "".join(row))
    lines.append(f"{y_lo:4.2f}|" + "".join(grid[-1]))
    lines.append("    +" + "-" * width)
    lines.append(f"     0 {x_label} ... {x_max:.3g}")
    lines.extend(legend)
    return "\n".join(lines)


def render_heat_rows(
    rows: Dict[str, Sequence[float]],
    width_per_cell: int = 1,
    lo: float = 0.0,
    hi: float = 1.0,
) -> str:
    """Render labelled rows of 0..1 values as shade characters (heatmap).

    NaN cells render as ``'?'``.
    """
    span = hi - lo or 1.0
    lines = []
    for label, values in rows.items():
        cells = []
        for value in values:
            if isinstance(value, float) and math.isnan(value):
                cells.append("?" * width_per_cell)
                continue
            frac = min(1.0, max(0.0, (value - lo) / span))
            shade = _SHADES[min(len(_SHADES) - 1, int(frac * (len(_SHADES) - 1)))]
            cells.append(shade * width_per_cell)
        lines.append(f"{label:>12} |{''.join(cells)}|")
    lines.append(f"{'scale':>12} |{_SHADES}| {lo:.2f} -> {hi:.2f}")
    return "\n".join(lines)
