"""``python -m repro workload`` -- the churn seed-matrix smoke.

Runs the workload liveness acceptance matrix (fleet sizes x seeds, Poisson
churn with a fail-stop mix under the 30 % simultaneous-departure cap) on
bare :class:`~repro.testbed.dynamic.DynamicBleNetwork` fleets -- no
traffic, no tracing, so a full matrix is seconds of wall clock -- and
writes ``reconvergence.json``, the CI artifact recording per-cell healing
behaviour: whether the DODAG reconverged inside the deadline, how long it
took, and the re-attach latency of every churned node.

The exit code is the gate: non-zero iff any cell failed to reconverge.
The same property is asserted test-by-test in ``tests/workload/
test_liveness.py``; this command exists so CI (and humans bisecting a
liveness regression) get the whole matrix as one machine-readable
document instead of a pytest failure.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.sim.units import SEC, ns_to_s
from repro.workload import ChurnSpec, WorkloadDriver, WorkloadSpec

#: Formation / healing deadlines (simulated seconds).  Healing mirrors
#: tests.support.churnnet.HEAL_DEADLINE_S: the bound the liveness property
#: promises.
FORM_DEADLINE_S = 120
HEAL_DEADLINE_S = 120

#: Poll granularity of the reconvergence loop (simulated seconds).
POLL_S = 5


def run_churn_cell(
    n_nodes: int,
    seed: int,
    churn: ChurnSpec,
    window_s: float = 40.0,
    heal_deadline_s: float = HEAL_DEADLINE_S,
) -> Dict[str, Any]:
    """One matrix cell: form, churn for ``window_s``, heal, report."""
    from repro.testbed.dynamic import DynamicBleNetwork

    net = DynamicBleNetwork(n_nodes, seed=seed)
    net.start()
    while not net.fully_joined() and net.sim.now < FORM_DEADLINE_S * SEC:
        net.run(net.sim.now + POLL_S * SEC)
    cell: Dict[str, Any] = {
        "n_nodes": n_nodes,
        "seed": seed,
        "cap": max(1, int(churn.max_departed_fraction * (n_nodes - 1))),
        "formed": net.fully_joined(),
        "reconverged": False,
        "healed_after_s": None,
    }
    if not net.fully_joined():
        return cell

    driver = WorkloadDriver(net, WorkloadSpec(churn=churn), seed)
    start = net.sim.now
    window_end = start + round(window_s * SEC)
    driver.install(start, window_end)
    net.run(window_end)
    deadline = window_end + round(heal_deadline_s * SEC)
    healed_at: Optional[int] = None
    while net.sim.now < deadline:
        if driver.reconverged() and not driver.departed_now():
            healed_at = net.sim.now
            break
        net.run(net.sim.now + POLL_S * SEC)
    if healed_at is None and driver.reconverged() and not driver.departed_now():
        healed_at = net.sim.now

    summary = driver.summary()
    cell.update(
        reconverged=healed_at is not None,
        healed_after_s=(
            None if healed_at is None else ns_to_s(healed_at - window_end)
        ),
        schedule_digest=summary["schedule_digest"],
        departures=summary["departures"],
        arrivals=summary["arrivals"],
        failstops=summary["failstops"],
        max_departed=summary["max_departed"],
        orphan_timeouts=summary["orphan_timeouts"],
        departed_at_end=summary["departed_at_end"],
        reattach_latencies_s=[
            round(ns_to_s(latency_ns), 3)
            for _, latency_ns in driver.reattach_latencies
        ],
    )
    return cell


def add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    """CLI surface of the ``workload`` subcommand."""
    parser.add_argument(
        "-o", "--outdir", default="workload-out",
        help="artifact directory for reconvergence.json "
             "(default: workload-out)",
    )
    parser.add_argument(
        "--sizes", default="6,9,12",
        help="comma-separated fleet sizes (default: 6,9,12)",
    )
    parser.add_argument(
        "--seeds", type=int, default=5,
        help="seeds per fleet size, 1..N (default: 5)",
    )
    parser.add_argument(
        "--mean-up", type=float, default=12.0,
        help="mean node up-time in seconds (default: 12)",
    )
    parser.add_argument(
        "--mean-down", type=float, default=5.0,
        help="mean node down-time in seconds (default: 5)",
    )
    parser.add_argument(
        "--fail-fraction", type=float, default=0.5,
        help="fraction of departures that are hard fail-stops (default: 0.5)",
    )
    parser.add_argument(
        "--window", type=float, default=40.0,
        help="churn window length in simulated seconds (default: 40)",
    )


def run_workload_cli(args: argparse.Namespace) -> int:
    """Execute the matrix, write the artifact, gate on reconvergence."""
    try:
        sizes = [int(s) for s in str(args.sizes).split(",") if s.strip()]
    except ValueError:
        print(f"unparseable --sizes {args.sizes!r}", file=sys.stderr)
        return 2
    if not sizes or any(n < 2 for n in sizes) or args.seeds < 1:
        print("--sizes needs fleets of >= 2 nodes and --seeds >= 1",
              file=sys.stderr)
        return 2
    churn = ChurnSpec(
        mean_up_s=args.mean_up,
        mean_down_s=args.mean_down,
        fail_fraction=args.fail_fraction,
    )
    cells: List[Dict[str, Any]] = []
    for n_nodes in sizes:
        for seed in range(1, args.seeds + 1):
            cell = run_churn_cell(n_nodes, seed, churn, window_s=args.window)
            cells.append(cell)
            status = "ok" if cell["reconverged"] else "FAILED"
            healed = cell.get("healed_after_s")
            print(
                f"  n={n_nodes:<4d} seed={seed:<3d} "
                f"departures={cell.get('departures', 0):<3d} "
                f"failstops={cell.get('failstops', 0):<3d} "
                f"max_departed={cell.get('max_departed', 0)}/{cell['cap']} "
                f"healed_after="
                f"{'-' if healed is None else f'{healed:.0f}s':<5} {status}"
            )
    failed = [c for c in cells if not c["reconverged"]]
    document = {
        "schema": "repro.workload/1",
        "churn": {
            "mean_up_s": churn.mean_up_s,
            "mean_down_s": churn.mean_down_s,
            "fail_fraction": churn.fail_fraction,
            "max_departed_fraction": churn.max_departed_fraction,
            "window_s": args.window,
        },
        "cells": cells,
        "total_cells": len(cells),
        "failed_cells": len(failed),
    }
    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    (outdir / "reconvergence.json").write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )
    if failed:
        print(f"reconvergence: {len(failed)} of {len(cells)} cells FAILED")
        return 1
    print(f"reconvergence: all {len(cells)} cells reconverged")
    return 0
