"""Structured event log.

The paper's firmware dumps carefully rate-limited events to STDIO (§4.2);
here the runner records them in memory.  Records are cheap tuples, filtered
by kind on read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Tuple


@dataclass(frozen=True)
class EventRecord:
    """One logged event."""

    time_ns: int
    kind: str
    fields: Tuple[Tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        """Field lookup by name."""
        for k, v in self.fields:
            if k == key:
                return v
        return default


class EventLog:
    """An append-only event recorder."""

    def __init__(self) -> None:
        self._records: List[EventRecord] = []

    def emit(self, time_ns: int, kind: str, **fields: Any) -> None:
        """Record one event."""
        self._records.append(EventRecord(time_ns, kind, tuple(fields.items())))

    def of_kind(self, kind: str) -> Iterator[EventRecord]:
        """All records of ``kind`` in time order."""
        return (r for r in self._records if r.kind == kind)

    def count(self, kind: str) -> int:
        """Number of records of ``kind``."""
        return sum(1 for r in self._records if r.kind == kind)

    def __len__(self) -> int:
        return len(self._records)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventLog):
            return NotImplemented
        return self._records == other._records

    def __iter__(self) -> Iterator[EventRecord]:
        return iter(self._records)
