"""Structured event log.

The paper's firmware dumps carefully rate-limited events to STDIO (§4.2);
here the runner records them in memory.  Records are cheap tuples; a
per-kind index keeps :meth:`EventLog.of_kind` / :meth:`EventLog.count`
O(matches) instead of O(all records), which matters once hour-long runs
log tens of thousands of events and analysis code filters them per metric.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, TextIO, Tuple


@dataclass(frozen=True)
class EventRecord:
    """One logged event."""

    time_ns: int
    kind: str
    fields: Tuple[Tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        """Field lookup by name."""
        for k, v in self.fields:
            if k == key:
                return v
        return default


class EventLog:
    """An append-only event recorder with a per-kind index."""

    def __init__(self) -> None:
        self._records: List[EventRecord] = []
        self._by_kind: Dict[str, List[EventRecord]] = {}

    def emit(self, time_ns: int, kind: str, **fields: Any) -> None:
        """Record one event."""
        record = EventRecord(time_ns, kind, tuple(fields.items()))
        self._records.append(record)
        self._by_kind.setdefault(kind, []).append(record)

    def of_kind(self, kind: str) -> Iterator[EventRecord]:
        """All records of ``kind`` in time order."""
        return iter(self._by_kind.get(kind, ()))

    def count(self, kind: str) -> int:
        """Number of records of ``kind``."""
        return len(self._by_kind.get(kind, ()))

    def kinds(self) -> List[str]:
        """All record kinds seen, in first-seen order."""
        return list(self._by_kind)

    def write_jsonl(self, fh: TextIO) -> int:
        """Stream the log as JSON lines into a writable text file object.

        One ``{"t", "kind", ...fields}`` object per line; bytes-valued
        fields are hex-encoded; everything else must already be
        JSON-representable (the emitters only log scalars).  Writes line by
        line, so exporting a multi-hour log never materializes the whole
        text in memory.

        :returns: the number of records written.
        """
        written = 0
        for record in self._records:
            obj: Dict[str, Any] = {"t": record.time_ns, "kind": record.kind}
            for key, value in record.fields:
                if isinstance(value, (bytes, bytearray)):
                    value = bytes(value).hex()
                obj[key] = value
            fh.write(json.dumps(obj, separators=(",", ":")))
            fh.write("\n")
            written += 1
        return written

    def to_jsonl(self) -> str:
        """The log as one JSON-lines string (see :meth:`write_jsonl`).

        Thin wrapper for small logs and tests; prefer :meth:`write_jsonl`
        with a real file when exporting long runs.
        """
        buffer = io.StringIO()
        self.write_jsonl(buffer)
        return buffer.getvalue()

    def __len__(self) -> int:
        return len(self._records)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventLog):
            return NotImplemented
        return self._records == other._records

    def __iter__(self) -> Iterator[EventRecord]:
        return iter(self._records)

    def __setstate__(self, state: dict) -> None:
        # Logs pickled before the per-kind index existed (cached results
        # from earlier schema versions) rebuild it on load.
        self.__dict__.update(state)
        if "_by_kind" not in state:
            self._by_kind = {}
            for record in self._records:
                self._by_kind.setdefault(record.kind, []).append(record)
