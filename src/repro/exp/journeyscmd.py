"""The ``python -m repro journeys`` subcommand: span-traced runs.

Runs one experiment with packet-journey span collection on, writes the
span payload (``journeys.json``), a Perfetto-loadable Chrome-trace export
(``journeys_trace.json``), and the rendered waterfall/attribution tables
(``waterfall.txt``), then prints the attribution summary.  The process
exits non-zero when the streaming phase-tiling checker recorded any
conformance violation -- the CI ``journeys`` job uses exactly that as its
gate.

``--ab-check`` instead measures what a *spans-off* run pays for the
instrumentation existing at all -- the one ``SPANS.enabled`` predicate
per seam -- on the Fig. 8a line cell, gated on the <2% bar.  See
:func:`run_ab_check` for the decomposition.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List

from repro.exp.config import ExperimentConfig
from repro.exp.runner import ExperimentResult, run_experiment
from repro.obs.wallclock import perf_counter
from repro.sim.units import SEC
from repro.spans.chrome import dumps_chrome_trace
from repro.spans.hub import SPANS, SpanHub
from repro.spans.render import render_attribution, render_waterfall

#: Waterfalls rendered into ``waterfall.txt`` (the slowest journeys first;
#: the JSON payload always carries every journey).
MAX_WATERFALLS = 8


def example_config(description: str = "") -> ExperimentConfig:
    """The default scenario for ``repro journeys``: a short 3-hop line.

    The same 4-node line the ``trace`` subcommand uses -- the smallest
    topology where a journey crosses multiple connection events, the
    relay nodes shade each other, and the response leg retraces the
    request's hops -- with span collection enabled.
    """
    return ExperimentConfig(
        name=description or "journeys",
        topology="line",
        n_nodes=4,
        duration_s=10.0,
        warmup_s=2.0,
        drain_s=1.0,
        producer_interval_s=1.0,
        seed=3,
        spans=True,
    )


@dataclass
class JourneysReport:
    """What one span-traced run produced."""

    result: ExperimentResult
    outdir: Path
    payload: Dict[str, Any]
    violations: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every journey's spans nested and tiled exactly."""
        return not self.violations


def dumps_payload(payload: Dict[str, Any]) -> str:
    """Byte-stable JSON rendering of a journeys payload."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


def run_journeys(config: ExperimentConfig, outdir: str) -> JourneysReport:
    """Run ``config`` with spans on; write the artifacts into ``outdir``."""
    out = Path(outdir)
    out.mkdir(parents=True, exist_ok=True)
    if not config.spans:
        raise ValueError("run_journeys needs a config with spans=True")
    result = run_experiment(config)
    payload = result.spans
    assert payload is not None  # guaranteed by config.spans
    (out / "journeys.json").write_text(dumps_payload(payload))
    (out / "journeys_trace.json").write_text(dumps_chrome_trace(payload))
    (out / "waterfall.txt").write_text(render_waterfalls(payload) + "\n")
    return JourneysReport(
        result=result,
        outdir=out,
        payload=payload,
        violations=list(payload.get("violations", [])),
    )


def _journey_duration(journey: Dict[str, Any]) -> int:
    end = journey["end_ns"]
    return (end - journey["begin_ns"]) if end is not None else 0


def render_waterfalls(payload: Dict[str, Any]) -> str:
    """The slowest journeys' waterfalls plus the attribution table."""
    journeys = payload.get("journeys", [])
    slowest = sorted(journeys, key=_journey_duration, reverse=True)
    blocks = [
        render_waterfall(journey) for journey in slowest[:MAX_WATERFALLS]
    ]
    blocks.append(render_attribution(journeys))
    return "\n\n".join(blocks)


def render_journeys_summary(report: JourneysReport) -> str:
    """The journeys report as one text block (printed by the CLI)."""
    summary = report.payload.get("summary", {})
    outcomes = ", ".join(
        f"{k}={v}" for k, v in summary.get("outcomes", {}).items()
    )
    lines = [
        f"journeys: {summary.get('journeys', 0)} "
        f"({outcomes or 'none'}), {summary.get('hops', 0)} hops, "
        f"{summary.get('frames', 0)} link-layer frames",
        f"artifacts: {report.outdir}/journeys.json, journeys_trace.json, "
        f"waterfall.txt",
        "",
        render_attribution(report.payload.get("journeys", [])),
        "",
    ]
    if report.ok:
        lines.append("conformance: every journey's phases tile exactly")
    else:
        lines.append(f"conformance: {len(report.violations)} VIOLATION(S)")
        for violation in report.violations:
            lines.append(
                f"  [{violation['time_ns'] / SEC:.6f}s] "
                f"journey {violation['journey_id']} "
                f"{violation['rule']}: {violation['message']}"
            )
    return "\n".join(lines)


# -- the interleaved A/B overhead check ----------------------------------


def ab_config() -> ExperimentConfig:
    """The Fig. 8a cell the overhead check times: the 4-node line at the
    paper's default 75 ms interval, cut to a CI-sized duration."""
    return ExperimentConfig(
        name="journeys-ab",
        topology="line",
        n_nodes=4,
        duration_s=20.0,
        warmup_s=3.0,
        drain_s=2.0,
        producer_interval_s=1.0,
        seed=7,
    )


#: Iterations per guard-cost microbatch: long enough that one batch takes
#: milliseconds (resolvable), short enough to interleave many batches.
GUARD_LOOP = 200_000


def _bare_batch(n: int) -> float:
    """A: the reference loop body without the guard."""
    t0 = perf_counter()
    x = 0
    for _ in range(n):
        x += 1
    return perf_counter() - t0


def _guarded_batch(n: int, hub: Any) -> float:
    """B: the same body behind the seam shape -- attribute read + branch."""
    t0 = perf_counter()
    x = 0
    for _ in range(n):
        if hub.enabled:
            x -= 1  # pragma: no cover - hub stays disabled
        x += 1
    return perf_counter() - t0


class _CountingHub(SpanHub):
    """Class-swap shim: counts ``enabled`` reads while staying disabled."""

    __slots__ = ()
    reads = 0

    @property  # type: ignore[override]
    def enabled(self) -> bool:  # type: ignore[override]
        _CountingHub.reads += 1
        return False


def _count_guard_reads(cfg: ExperimentConfig) -> int:
    """Exactly how many ``SPANS.enabled`` predicates one run evaluates."""
    _CountingHub.reads = 0
    SPANS.__class__ = _CountingHub
    try:
        run_experiment(cfg)
    finally:
        SPANS.__class__ = SpanHub
    return _CountingHub.reads


def run_ab_check(repeats: int = 3, bar: float = 0.02) -> Dict[str, Any]:
    """Estimate the disabled path's overhead on the Fig. 8a cell.

    The guard-free code no longer exists in this build, so a naive run
    A/B cannot time what a spans-off run pays for the instrumentation.
    The check decomposes the estimate into three measurables instead:

    * **per-guard cost** -- interleaved A (bare loop) / B (guarded loop)
      microbatches; interleaving ABAB... cancels machine-state drift, and
      B - A is the cost of one ``SPANS.enabled`` attribute read + branch;
    * **guard count** -- the exact number of ``enabled`` predicates a
      Fig. 8a run evaluates, counted by temporarily swapping a counting
      property onto the hub (the run stays fully disabled);
    * **run wall time** -- the spans-off run's median wall seconds, timed
      in the same interleaved schedule, as the denominator.

    ``overhead = guard_count * per_guard_s / median_wall_s`` must stay
    under ``bar``.  The first repetition is a discarded warmup (one-time
    import and allocator costs).
    """
    cfg = ab_config()
    guard_reads = _count_guard_reads(cfg)
    wall: List[float] = []
    per_guard: List[float] = []
    for rep in range(repeats + 1):
        t0 = perf_counter()
        run_experiment(cfg)
        dt_run = perf_counter() - t0
        bare = _bare_batch(GUARD_LOOP)
        guarded = _guarded_batch(GUARD_LOOP, SPANS)
        if rep == 0:
            continue  # warmup
        wall.append(dt_run)
        per_guard.append(max(0.0, (guarded - bare) / GUARD_LOOP))
    med_wall = statistics.median(wall)
    med_guard = statistics.median(per_guard)
    guard_cost_s = guard_reads * med_guard
    overhead = guard_cost_s / med_wall if med_wall > 0 else 0.0
    return {
        "repeats": repeats,
        "wall_s": [round(w, 4) for w in wall],
        "median_wall_s": round(med_wall, 4),
        "per_guard_ns": [round(g * 1e9, 2) for g in per_guard],
        "median_per_guard_ns": round(med_guard * 1e9, 2),
        "guard_reads": guard_reads,
        "guard_cost_s": round(guard_cost_s, 6),
        "overhead": round(overhead, 5),
        "bar": bar,
        "ok": overhead < bar,
    }


def render_ab_summary(check: Dict[str, Any]) -> str:
    """The A/B check as one text block (printed by the CLI)."""
    lines = [
        f"spans-off run: median {check['median_wall_s']:.3f}s "
        f"over {check['repeats']} runs {check['wall_s']}",
        f"guard cost: {check['median_per_guard_ns']:.1f}ns per check "
        f"(interleaved A/B), {check['guard_reads']} checks per run "
        f"= {check['guard_cost_s'] * 1e3:.3f}ms",
        f"disabled-path overhead: {check['overhead'] * 100:+.3f}% "
        f"(bar {check['bar'] * 100:.0f}%)",
        "overhead: OK" if check["ok"] else "overhead: OVER THE BAR",
    ]
    return "\n".join(lines)
