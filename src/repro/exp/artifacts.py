"""Artifact output (paper Appendix A).

The paper's experimentation framework produces three artifacts per run:
(i) the static experiment description, (ii) a raw results log, and (iii)
derived metrics/plots.  :func:`write_artifacts` mirrors that layout::

    <outdir>/
      experiment.yml       the description (reproduces the run bit-exactly)
      results.jsonl        raw per-event records (requests, RTTs, losses,
                           link-statistics samples)
      events.jsonl         the run's structured event log, verbatim
      summary.txt          derived tables + terminal plots
      metrics.json         runtime metrics document (only when the run
                           collected metrics; see :mod:`repro.obs`)
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.exp.asciiplot import render_cdf, render_series
from repro.exp.metrics import aggregate_binned_pdr, cdf, summarize_rtt
from repro.exp.report import format_table
from repro.exp.runner import ExperimentResult
from repro.sim.units import SEC


def write_results_log(result: ExperimentResult, path: Path) -> int:
    """Write the raw results as JSON lines; returns the record count."""
    count = 0
    with path.open("w") as fh:
        for producer in result.producers:
            acked = {sent for sent, _ in producer.rtt_samples}
            rtt_of = dict(producer.rtt_samples)
            for sent_at in producer.request_times:
                record = {
                    "type": "request",
                    "t_s": sent_at / SEC,
                    "producer": producer.node.node_id,
                    "acked": sent_at in acked,
                }
                if sent_at in rtt_of:
                    record["rtt_s"] = rtt_of[sent_at] / SEC
                fh.write(json.dumps(record) + "\n")
                count += 1
        for t_s, node, peer in result.connection_losses():
            fh.write(
                json.dumps(
                    {"type": "conn-loss", "t_s": t_s, "node": node, "peer": peer}
                )
                + "\n"
            )
            count += 1
        for (link, direction), series in result.link_series.items():
            for i, t_s in enumerate(series.times_s):
                fh.write(
                    json.dumps(
                        {
                            "type": "link-sample",
                            "t_s": t_s,
                            "coordinator": link[0],
                            "subordinate": link[1],
                            "direction": direction,
                            "tx_attempts": series.tx_attempts[i],
                            "tx_acked": series.tx_acked[i],
                        }
                    )
                    + "\n"
                )
                count += 1
    return count


def render_summary(result: ExperimentResult) -> str:
    """Derived metrics and plots as one text report."""
    config = result.config
    rtts = result.rtts_s()
    lines = [
        f"experiment: {config.name}",
        f"topology={config.topology} link_layer={config.link_layer} "
        f"conn_interval={config.conn_interval} "
        f"producer_interval={config.producer_interval_s}s seed={config.seed}",
        "",
    ]
    rows = [
        ["CoAP requests sent", result.coap_sent()],
        ["CoAP ACKs received", result.coap_acked()],
        ["CoAP PDR", f"{result.coap_pdr():.5f}"],
        ["connection losses", result.num_connection_losses()],
    ]
    if result.link_series:
        rows.append(["link-layer PDR", f"{result.link_pdr_overall():.4f}"])
    if rtts:
        summary = summarize_rtt(rtts)
        rows += [
            ["RTT mean [ms]", f"{summary['mean'] * 1000:.1f}"],
            ["RTT p50 [ms]", f"{summary['p50'] * 1000:.1f}"],
            ["RTT p99 [ms]", f"{summary['p99'] * 1000:.1f}"],
        ]
    currents = result.fleet_current_ua()
    if currents:
        values = list(currents.values())
        rows += [
            ["BLE current, fleet mean [uA]", f"{sum(values) / len(values):.1f}"],
            ["BLE current, max node [uA]", f"{max(values):.1f}"],
        ]
    lines.append(format_table(["metric", "value"], rows))
    if rtts:
        lines += ["", "RTT CDF:", render_cdf({"rtt": cdf(rtts)}, x_label="RTT [s]")]
    times, pdrs = aggregate_binned_pdr(
        result.producers,
        bin_s=max(10.0, config.duration_s / 60),
        t_end_s=config.total_runtime_s,
    )
    if times:
        lines += [
            "",
            "CoAP PDR over runtime:",
            render_series({"pdr": (times, pdrs)}, y_lo=0.0, y_hi=1.0),
        ]
    return "\n".join(lines) + "\n"


def write_artifacts(result: ExperimentResult, outdir: str) -> Path:
    """Write the Appendix-A artifact triple; returns the output directory."""
    out = Path(outdir)
    out.mkdir(parents=True, exist_ok=True)
    (out / "experiment.yml").write_text(result.config.to_yaml())
    write_results_log(result, out / "results.jsonl")
    with (out / "events.jsonl").open("w") as fh:
        result.events.write_jsonl(fh)
    (out / "summary.txt").write_text(render_summary(result))
    metrics = getattr(result, "metrics", None)
    if metrics is not None:
        from repro.obs.export import (
            build_metrics_document,
            dumps_metrics_document,
        )

        doc = build_metrics_document(
            result.config.name, [metrics], seeds=[result.config.seed]
        )
        (out / "metrics.json").write_text(dumps_metrics_document(doc))
    return out
