"""The ``python -m repro metrics`` subcommand: a metered + profiled run.

Runs an experiment with the runtime metrics registry armed (and, unless
disabled, a second in-process pass under the wall-clock profiler), then
writes the observability artifacts next to each other::

    <outdir>/
      metrics.json   merged, canonical metrics document (repro.obs/1)
      metrics.prom   the same scopes in Prometheus text exposition format
      profile.json   per-subsystem wall-clock profile (absent with
                     ``profile=False``; non-deterministic by nature)

With ``repetitions > 1`` the repetitions run through the parallel engine
and their registries merge into one document; the document bytes are
independent of ``max_workers`` because the engine returns outcomes in
input order and serialization is canonical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional

from repro.exp.config import ExperimentConfig
from repro.exp.report import format_table
from repro.exp.runner import run_experiment
from repro.obs.export import (
    build_metrics_document,
    dumps_metrics_document,
    to_prometheus,
    validate_metrics_document,
)
from repro.obs.profiler import PROFILER
from repro.obs.registry import Histogram
from repro.sim.units import s_to_ns


def example_config(description: str = "") -> ExperimentConfig:
    """The default scenario for ``repro metrics``: a short 3-hop line.

    Four nodes in a line is the smallest topology where forwarding,
    fragmentation and the shared-radio scheduler all contribute events, so
    every instrumented subsystem shows up in the document and the profile.
    """
    return ExperimentConfig(
        name=description or "metrics",
        topology="line",
        n_nodes=4,
        duration_s=12.0,
        warmup_s=3.0,
        drain_s=2.0,
        producer_interval_s=1.0,
        seed=3,
    )


@dataclass
class MetricsReport:
    """What one ``repro metrics`` invocation produced."""

    document: dict
    outdir: Path
    runs: int
    profile: Optional[dict] = None


def run_metrics(
    config: ExperimentConfig,
    outdir: str,
    repetitions: int = 1,
    max_workers: int = 1,
    cache_dir: Optional[str] = None,
    profile: bool = True,
) -> MetricsReport:
    """Run ``config`` with metrics on; write the document (and profile).

    :param repetitions: derived-seed repetitions merged into the document.
    :param max_workers: >1 shards repetitions across worker processes; the
        resulting ``metrics.json`` is byte-identical either way.
    :param cache_dir: enables the engine's on-disk result cache.
    :param profile: also run the first repetition in-process under the
        wall-clock profiler and write ``profile.json``.
    """
    if repetitions < 1:
        raise ValueError("need at least one repetition")
    out = Path(outdir)
    out.mkdir(parents=True, exist_ok=True)

    from repro.exp.repeat import repetition_configs

    metered = replace(config, metrics=True)
    configs = repetition_configs(metered, repetitions)

    if max_workers == 1 and cache_dir is None:
        results = [run_experiment(c) for c in configs]
    else:
        from repro.exp.parallel import ParallelEngine

        engine = ParallelEngine(max_workers=max_workers, cache=cache_dir)
        outcomes = engine.run(configs)
        failed = [o for o in outcomes if not o.ok]
        if failed:
            details = "; ".join(
                f"seed={o.config.seed}: {o.error}" for o in failed
            )
            raise RuntimeError(
                f"{len(failed)}/{repetitions} metered runs failed: {details}"
            )
        results = [o.result for o in outcomes]

    payloads = [getattr(r, "metrics", None) for r in results]
    if any(p is None for p in payloads):
        raise RuntimeError("a metered run returned no metrics payload")
    document = build_metrics_document(
        config.name, payloads, seeds=[c.seed for c in configs]
    )
    validate_metrics_document(document)
    (out / "metrics.json").write_text(dumps_metrics_document(document))
    (out / "metrics.prom").write_text(to_prometheus(document["scopes"]))

    profile_doc = None
    if profile:
        # Separate in-process pass with metrics *off*, so the profile
        # reflects plain-simulation dispatch cost (the perf baseline).
        PROFILER.configure()
        try:
            run_experiment(replace(configs[0], metrics=False))
        finally:
            profile_doc = PROFILER.report(
                sim_time_ns=s_to_ns(config.total_runtime_s)
            )
            PROFILER.reset()
        import json

        (out / "profile.json").write_text(
            json.dumps(profile_doc, sort_keys=True, indent=2) + "\n"
        )

    return MetricsReport(
        document=document, outdir=out, runs=repetitions, profile=profile_doc
    )


def _merged_rtt_histogram(document: dict) -> Optional[Histogram]:
    """All per-node ``coap.rtt_seconds`` histograms folded into one."""
    merged: Optional[Histogram] = None
    for registry in document["scopes"].values():
        snap = registry.get("histograms", {}).get("coap.rtt_seconds")
        if snap is None:
            continue
        hist = Histogram.from_dict(snap)
        if merged is None:
            merged = hist
        else:
            merged.merge(hist)
    return merged


def render_metrics_summary(report: MetricsReport) -> str:
    """The metrics report as one text block (printed by the CLI)."""
    doc = report.document
    counters = sum(
        len(reg.get("counters", {})) for reg in doc["scopes"].values()
    )
    lines = [
        f"metrics: {doc['runs']} run(s), {len(doc['scopes'])} scopes, "
        f"{counters} counters",
        f"artifacts: {report.outdir}/metrics.json, metrics.prom"
        + (", profile.json" if report.profile else ""),
    ]
    rtt = _merged_rtt_histogram(doc)
    if rtt is not None and rtt.count:
        lines.append(
            f"CoAP RTT ({rtt.count} samples): "
            f"p50={rtt.percentile(0.50) * 1000:.1f}ms "
            f"p99={rtt.percentile(0.99) * 1000:.1f}ms"
        )
    if report.profile:
        prof = report.profile
        lines += [
            "",
            f"events/sec: {prof['events_per_wall_s']:.0f} "
            f"({prof['events']} events in {prof['wall_s']:.3f}s wall, "
            f"x{prof.get('sim_s_per_wall_s', 0.0):.0f} real time)",
        ]
        rows: List[List[object]] = []
        for name, entry in prof["subsystems"].items():
            rows.append(
                [
                    name,
                    entry["events"],
                    f"{entry['wall_s'] * 1000:.1f}",
                    f"{entry['share'] * 100:.1f}",
                ]
            )
        lines.append(
            format_table(
                ["subsystem", "events", "wall [ms]", "share [%]"], rows
            )
        )
    return "\n".join(lines) + "\n"
