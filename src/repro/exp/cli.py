"""Command-line entry point: run experiments from YAML descriptions.

Mirrors the paper's experimentation workflow (Appendix A): a static
description file fully determines the run; the output directory receives
the description, the raw results log, and the derived summary.  ``sweep``
expands a config grid and runs it through the parallel sharded engine
(:mod:`repro.exp.parallel`) with optional on-disk result caching.

Usage::

    python -m repro describe > experiment.yml   # a template description
    python -m repro run experiment.yml -o out/  # execute + write artifacts
    python -m repro run experiment.yml --set duration_s=120 --set seed=7
    python -m repro trace -o trace-out/         # traced run + invariant check
    python -m repro metrics -o metrics-out/     # metered + profiled run
    python -m repro sweep experiment.yml \\
        --grid conn_interval=75,[65:85] --grid producer_interval_s=0.1,1.0 \\
        --seeds 5 --workers 4 --cache-dir .repro-cache -o out/

``sweep`` honours ``REPRO_WORKERS`` and ``REPRO_CACHE_DIR`` when the
corresponding flags are not given.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Callable, TextIO

if TYPE_CHECKING:  # pragma: no cover
    from repro.exp.parallel import ProgressEvent

from repro.exp.artifacts import render_summary, write_artifacts
from repro.exp.config import ExperimentConfig
from repro.exp.runner import run_experiment
from repro.obs.wallclock import monotonic


def _env_int(name: str, default: int = 0) -> int:
    """Parse an integer environment variable, warning instead of crashing.

    ``REPRO_WORKERS=lots`` used to abort the whole sweep with a bare
    ``ValueError``; a mis-set variable now falls back to ``default`` with a
    warning on stderr (unset/blank falls back silently).
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return int(raw.strip())
    except ValueError:
        print(
            f"warning: ignoring non-numeric {name}={raw!r} "
            f"(using default {default})",
            file=sys.stderr,
        )
        return default


def _coerce(config: ExperimentConfig, key: str, raw: str) -> object:
    """Parse ``raw`` into the type of ``config.<key>``."""
    if not hasattr(config, key):
        raise SystemExit(f"unknown config field {key!r}")
    current = getattr(config, key)
    if isinstance(current, bool):
        return raw.lower() in ("1", "true", "yes", "on")
    if isinstance(current, int) and not isinstance(current, bool):
        return int(raw)
    if isinstance(current, float):
        return float(raw)
    return raw


def _apply_overrides(config: ExperimentConfig, overrides: list[str]) -> ExperimentConfig:
    """Apply ``key=value`` overrides onto a config (typed via the field)."""
    values = {}
    for item in overrides:
        if "=" not in item:
            raise SystemExit(f"--set expects key=value, got {item!r}")
        key, raw = item.split("=", 1)
        values[key] = _coerce(config, key, raw)
    if not values:
        return config
    from dataclasses import asdict

    return ExperimentConfig(**{**asdict(config), **values})


def _parse_grid(config: ExperimentConfig, items: list[str]) -> dict:
    """Parse repeated ``--grid KEY=V1,V2,...`` flags into a typed grid."""
    grid: dict = {}
    for item in items:
        if "=" not in item:
            raise SystemExit(f"--grid expects key=v1,v2,..., got {item!r}")
        key, raw = item.split("=", 1)
        values = [v for v in raw.split(",") if v != ""]
        if not values:
            raise SystemExit(f"--grid axis {key!r} has no values")
        grid[key] = [_coerce(config, key, v) for v in values]
    return grid


def _progress_printer(stream: "TextIO") -> "Callable[[ProgressEvent], None]":
    """A progress callback that writes one status line per engine event."""

    def on_event(event: "ProgressEvent") -> None:
        name = f"{event.config.name} seed={event.config.seed}"
        position = f"[{event.completed}/{event.total}]"
        if event.kind == "cache-hit":
            print(f"{position} cached   {name}", file=stream)
        elif event.kind == "done":
            print(
                f"{position} done     {name} ({event.wall_time_s:.2f}s)",
                file=stream,
            )
        elif event.kind == "retry":
            print(
                f"{position} retry    {name} (attempt {event.attempt} "
                f"failed: {event.detail})",
                file=stream,
            )
        elif event.kind == "failed":
            print(
                f"{position} FAILED   {name} after {event.attempt} attempts: "
                f"{event.detail}",
                file=stream,
            )

    return on_event


def main(argv: list[str] | None = None) -> int:
    """CLI dispatch; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'Mind the Gap: Multi-hop IPv6 over BLE'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    describe = sub.add_parser("describe", help="print a template description")
    describe.add_argument("--name", default="experiment")

    lint = sub.add_parser(
        "lint",
        help="simlint: determinism & unit-discipline static analysis "
             "(non-zero exit on findings)",
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(lint)

    bench = sub.add_parser(
        "bench",
        help="re-run the committed perf scenarios; rewrite and optionally "
             "gate on BENCH_metrics.json (non-zero exit on regression)",
    )
    from repro.obs.bench import add_bench_arguments

    add_bench_arguments(bench)

    run = sub.add_parser("run", help="execute a YAML experiment description")
    run.add_argument("description", help="path to the experiment YAML")
    run.add_argument("-o", "--outdir", default=None,
                     help="write Appendix-A artifacts here")
    run.add_argument("--set", dest="overrides", action="append", default=[],
                     metavar="KEY=VALUE", help="override a config field")
    run.add_argument("--dispatch", choices=("serial", "lookahead"), default=None,
                     help="kernel dispatch mode (overrides the kernel: block)")
    run.add_argument("--workers", dest="dispatch_workers", type=int, default=None,
                     help="lookahead dispatch lane workers (>= 1)")
    run.add_argument("--metrics", action="store_true",
                     help="collect runtime metrics; writes metrics.json "
                          "with the artifacts")

    metrics = sub.add_parser(
        "metrics",
        help="run with the metrics registry + profiler, write metrics.json",
    )
    metrics.add_argument("description", nargs="?", default=None,
                         help="experiment YAML (default: a short 3-hop line)")
    metrics.add_argument("-o", "--outdir", default="metrics-out",
                         help="metrics artifact directory "
                              "(default: metrics-out)")
    metrics.add_argument("--set", dest="overrides", action="append",
                         default=[], metavar="KEY=VALUE",
                         help="override a config field")
    metrics.add_argument("--repetitions", type=int, default=1,
                         help="derived-seed repetitions merged into the "
                              "document (default 1)")
    metrics.add_argument("-j", "--workers", type=int, default=1,
                         help="worker processes for the repetitions "
                              "(default 1; the document bytes are identical "
                              "either way)")
    metrics.add_argument("--cache-dir", default=None,
                         help="result cache directory for the repetitions")
    metrics.add_argument("--no-profile", action="store_true",
                         help="skip the wall-clock profiler pass "
                              "(no profile.json)")

    trace = sub.add_parser(
        "trace",
        help="run a traced scenario, write trace artifacts, check invariants",
    )
    trace.add_argument("description", nargs="?", default=None,
                       help="experiment YAML (default: a short 4-node line)")
    trace.add_argument("-o", "--outdir", default="trace-out",
                       help="trace + artifact directory (default: trace-out)")
    trace.add_argument("--set", dest="overrides", action="append", default=[],
                       metavar="KEY=VALUE", help="override a config field")
    trace.add_argument("--layers", default="",
                       help="comma-separated layer filter for the trace files "
                            "(checkers always see every layer)")

    sweep = sub.add_parser(
        "sweep",
        help="run a config grid in parallel (sharded workers + result cache)",
    )
    sweep.add_argument("description", help="path to the base experiment YAML")
    sweep.add_argument("--grid", dest="grid", action="append", default=[],
                       metavar="KEY=V1,V2", help="one grid axis (repeatable)")
    sweep.add_argument("--seeds", type=int, default=5,
                       help="repetitions per cell (default 5, like the paper)")
    sweep.add_argument("-j", "--workers", type=int, default=None,
                       help="worker processes (default: $REPRO_WORKERS or CPU count)")
    sweep.add_argument("--cache-dir", default=None,
                       help="result cache directory (default: $REPRO_CACHE_DIR)")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-run wall-clock timeout in seconds")
    sweep.add_argument("-o", "--outdir", default=None,
                       help="write per-run Appendix-A artifacts here")
    sweep.add_argument("--set", dest="overrides", action="append", default=[],
                       metavar="KEY=VALUE", help="override a base config field")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-run progress lines")
    sweep.add_argument("--metrics", action="store_true",
                       help="collect runtime metrics on every run; with "
                            "-o, also writes a merged metrics.json")

    journeys = sub.add_parser(
        "journeys",
        help="span-traced run: waterfalls, attribution, Chrome-trace "
             "export; non-zero exit on a phase-tiling violation",
    )
    journeys.add_argument("description", nargs="?", default=None,
                          help="experiment YAML (default: a short 3-hop "
                               "line with spans=True)")
    journeys.add_argument("-o", "--outdir", default="journeys-out",
                          help="journeys artifact directory "
                               "(default: journeys-out)")
    journeys.add_argument("--set", dest="overrides", action="append",
                          default=[], metavar="KEY=VALUE",
                          help="override a config field")
    journeys.add_argument("--ab-check", action="store_true",
                          help="instead of a traced run: interleaved "
                               "spans-off/spans-on overhead measurement on "
                               "the Fig. 8a cell (non-zero exit over the "
                               "bar)")
    journeys.add_argument("--repeats", type=int, default=3,
                          help="measured A/B repetitions (default 3)")
    journeys.add_argument("--bar", type=float, default=0.02,
                          help="tolerated B/A overhead fraction "
                               "(default 0.02)")

    workload = sub.add_parser(
        "workload",
        help="churn seed-matrix smoke: write reconvergence.json, non-zero "
             "exit if any cell fails to reconverge",
    )
    from repro.exp.workloadcmd import add_workload_arguments

    add_workload_arguments(workload)

    args = parser.parse_args(argv)

    if args.command == "describe":
        print(ExperimentConfig(name=args.name).to_yaml(), end="")
        return 0

    if args.command == "lint":
        from repro.lint.cli import run_lint

        return run_lint(args)

    if args.command == "bench":
        from repro.obs.bench import run_bench_cli

        return run_bench_cli(args)

    if args.command == "metrics":
        from repro.exp.metricscmd import (
            example_config,
            render_metrics_summary,
            run_metrics,
        )

        if args.description:
            config = ExperimentConfig.from_yaml(
                Path(args.description).read_text()
            )
        else:
            config = example_config()
        config = _apply_overrides(config, args.overrides)
        if args.repetitions < 1:
            raise SystemExit("--repetitions must be >= 1")
        if args.workers < 1:
            raise SystemExit("--workers must be >= 1")
        print(f"metering {config.name!r}: {config.topology} topology, "
              f"{config.n_nodes} nodes, {config.duration_s:.0f}s, "
              f"{args.repetitions} repetition(s) ...", file=sys.stderr)
        report = run_metrics(
            config,
            args.outdir,
            repetitions=args.repetitions,
            max_workers=args.workers,
            cache_dir=args.cache_dir,
            profile=not args.no_profile,
        )
        print(render_metrics_summary(report), end="")
        return 0

    if args.command == "trace":
        from repro.exp.tracecmd import (
            example_config,
            render_trace_summary,
            run_traced,
        )

        if args.description:
            config = ExperimentConfig.from_yaml(
                Path(args.description).read_text()
            )
        else:
            config = example_config()
        config = _apply_overrides(config, args.overrides)
        print(f"tracing {config.name!r}: {config.topology} topology, "
              f"{config.n_nodes} nodes, {config.duration_s:.0f}s ...",
              file=sys.stderr)
        report = run_traced(config, args.outdir, layers=args.layers)
        print(render_trace_summary(report), end="")
        return 0 if report.ok else 1

    if args.command == "journeys":
        from repro.exp.journeyscmd import (
            example_config,
            render_ab_summary,
            render_journeys_summary,
            run_ab_check,
            run_journeys,
        )

        if args.ab_check:
            if args.repeats < 1:
                raise SystemExit("--repeats must be >= 1")
            print(f"A/B overhead check: {args.repeats} interleaved "
                  f"repetitions on the Fig. 8a cell ...", file=sys.stderr)
            check = run_ab_check(repeats=args.repeats, bar=args.bar)
            print(render_ab_summary(check))
            return 0 if check["ok"] else 1
        if args.description:
            config = ExperimentConfig.from_yaml(
                Path(args.description).read_text()
            )
        else:
            config = example_config()
        config = _apply_overrides(config, args.overrides)
        print(f"spanning {config.name!r}: {config.topology} topology, "
              f"{config.n_nodes} nodes, {config.duration_s:.0f}s ...",
              file=sys.stderr)
        report = run_journeys(config, args.outdir)
        print(render_journeys_summary(report))
        return 0 if report.ok else 1

    if args.command == "workload":
        from repro.exp.workloadcmd import run_workload_cli

        return run_workload_cli(args)

    config = ExperimentConfig.from_yaml(Path(args.description).read_text())
    config = _apply_overrides(config, args.overrides)

    if getattr(args, "metrics", False):
        from dataclasses import replace

        config = replace(config, metrics=True)

    if args.command == "run":
        if getattr(args, "dispatch", None) or getattr(args, "dispatch_workers", None):
            from dataclasses import replace

            kernel = dict(config.kernel)
            if args.dispatch:
                kernel["dispatch"] = args.dispatch
            if args.dispatch_workers:
                kernel["workers"] = args.dispatch_workers
            config = replace(config, kernel=kernel)
        print(f"running {config.name!r}: {config.topology} topology, "
              f"{config.link_layer}, conn interval {config.conn_interval}, "
              f"{config.duration_s:.0f}s ...", file=sys.stderr)
        result = run_experiment(config)
        print(render_summary(result), end="")
        if args.outdir:
            out = write_artifacts(result, args.outdir)
            print(f"artifacts written to {out}/", file=sys.stderr)
        return 0

    # -- sweep ---------------------------------------------------------------
    from repro.exp.sweep import render_sweep_table, run_sweep

    grid = _parse_grid(config, args.grid)
    workers = args.workers
    if workers is None:
        workers = _env_int("REPRO_WORKERS") or (os.cpu_count() or 1)
    if workers < 1:
        raise SystemExit("--workers must be >= 1")
    if args.seeds < 1:
        raise SystemExit("--seeds must be >= 1")
    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or None

    n_cells = 1
    for values in grid.values():
        n_cells *= len(values)
    print(
        f"sweeping {config.name!r}: {n_cells} cells x {args.seeds} seeds = "
        f"{n_cells * args.seeds} runs, {workers} workers"
        + (f", cache at {cache_dir}" if cache_dir else ", no cache"),
        file=sys.stderr,
    )
    started = monotonic()
    try:
        result = run_sweep(
            config,
            grid,
            seeds=args.seeds,
            max_workers=workers,
            cache_dir=cache_dir,
            timeout_s=args.timeout,
            outdir=args.outdir,
            progress=None if args.quiet else _progress_printer(sys.stderr),
        )
    except ValueError as exc:  # e.g. a grid value the config rejects
        raise SystemExit(f"invalid sweep: {exc}")
    wall = monotonic() - started
    print(render_sweep_table(result))
    print(result.stats.summary())
    if result.stats.run_wall_s:
        busy = sum(result.stats.run_wall_s)
        print(
            f"worker time {busy:.2f}s in {wall:.2f}s wall "
            f"(effective concurrency x{busy / wall:.2f})"
        )
    if args.outdir:
        if args.metrics:
            payloads = [
                getattr(o.result, "metrics", None)
                for o in result.outcomes
                if o.ok
            ]
            payloads = [p for p in payloads if p is not None]
            if payloads:
                from repro.obs.export import (
                    build_metrics_document,
                    dumps_metrics_document,
                )

                doc = build_metrics_document(
                    config.name,
                    payloads,
                    seeds=[o.config.seed for o in result.outcomes if o.ok],
                )
                merged = Path(args.outdir) / "metrics.json"
                merged.write_text(dumps_metrics_document(doc))
                print(f"merged metrics written to {merged}", file=sys.stderr)
        print(f"artifacts written to {args.outdir}/", file=sys.stderr)
    return 1 if result.total_failures else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
