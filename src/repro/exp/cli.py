"""Command-line entry point: run experiments from YAML descriptions.

Mirrors the paper's experimentation workflow (Appendix A): a static
description file fully determines the run; the output directory receives
the description, the raw results log, and the derived summary.

Usage::

    python -m repro describe > experiment.yml   # a template description
    python -m repro run experiment.yml -o out/  # execute + write artifacts
    python -m repro run experiment.yml --set duration_s=120 --set seed=7
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.exp.artifacts import render_summary, write_artifacts
from repro.exp.config import ExperimentConfig
from repro.exp.runner import run_experiment


def _apply_overrides(config: ExperimentConfig, overrides: list[str]) -> ExperimentConfig:
    """Apply ``key=value`` overrides onto a config (typed via the field)."""
    values = {}
    for item in overrides:
        if "=" not in item:
            raise SystemExit(f"--set expects key=value, got {item!r}")
        key, raw = item.split("=", 1)
        if not hasattr(config, key):
            raise SystemExit(f"unknown config field {key!r}")
        current = getattr(config, key)
        if isinstance(current, bool):
            value = raw.lower() in ("1", "true", "yes", "on")
        elif isinstance(current, int) and not isinstance(current, bool):
            value = int(raw)
        elif isinstance(current, float):
            value = float(raw)
        else:
            value = raw
        values[key] = value
    if not values:
        return config
    from dataclasses import asdict, replace

    return ExperimentConfig(**{**asdict(config), **values})


def main(argv: list[str] | None = None) -> int:
    """CLI dispatch; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'Mind the Gap: Multi-hop IPv6 over BLE'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    describe = sub.add_parser("describe", help="print a template description")
    describe.add_argument("--name", default="experiment")

    run = sub.add_parser("run", help="execute a YAML experiment description")
    run.add_argument("description", help="path to the experiment YAML")
    run.add_argument("-o", "--outdir", default=None,
                     help="write Appendix-A artifacts here")
    run.add_argument("--set", dest="overrides", action="append", default=[],
                     metavar="KEY=VALUE", help="override a config field")

    args = parser.parse_args(argv)

    if args.command == "describe":
        print(ExperimentConfig(name=args.name).to_yaml(), end="")
        return 0

    config = ExperimentConfig.from_yaml(Path(args.description).read_text())
    config = _apply_overrides(config, args.overrides)
    print(f"running {config.name!r}: {config.topology} topology, "
          f"{config.link_layer}, conn interval {config.conn_interval}, "
          f"{config.duration_s:.0f}s ...", file=sys.stderr)
    result = run_experiment(config)
    print(render_summary(result), end="")
    if args.outdir:
        out = write_artifacts(result, args.outdir)
        print(f"artifacts written to {out}/", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
