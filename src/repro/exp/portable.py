"""Picklable experiment results (the parallel engine's wire format).

A full :class:`~repro.exp.runner.ExperimentResult` drags the whole network
behind it -- nodes, controllers, the simulator with its timer heap of bound
methods -- none of which survives a trip through a ``multiprocessing`` pipe
or a pickle file.  :class:`PortableResult` is the flat, data-only view: it
captures every series and counter the figure/table benches read, computes
the energy numbers up front (they need the network), and provides the same
metric methods, so aggregation code is agnostic about which of the two it
holds.

The shared metric implementations live in :class:`ResultMetricsMixin`,
which both result classes inherit; the contract is only that ``self`` has
``producers`` (objects with ``node.node_id`` / ``requests_sent`` /
``acks_received`` / ``pdr`` / ``request_times`` / ``rtt_samples``),
``events``, and ``link_series``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.exp.config import ExperimentConfig
from repro.exp.events import EventLog
from repro.sim.units import SEC
from repro.trace.record import TraceRecord

#: Link direction labels: ``up`` is coordinator -> subordinate (towards the
#: consumer under our role convention), ``down`` the reverse.
DIRECTIONS = ("up", "down")

LinkKey = Tuple[int, int]  # (coordinator addr, subordinate addr)


@dataclass
class LinkSeries:
    """Cumulative per-link statistics over time (one direction)."""

    times_s: List[float] = field(default_factory=list)
    tx_attempts: List[int] = field(default_factory=list)
    tx_acked: List[int] = field(default_factory=list)

    def binned_pdr(self) -> Tuple[List[float], List[float]]:
        """Per-sample-bin link-layer PDR (acked/attempted deltas)."""
        times, pdrs = [], []
        for i in range(1, len(self.times_s)):
            attempts = self.tx_attempts[i] - self.tx_attempts[i - 1]
            acked = self.tx_acked[i] - self.tx_acked[i - 1]
            if attempts > 0:
                times.append(self.times_s[i])
                pdrs.append(acked / attempts)
        return times, pdrs

    def overall_pdr(self) -> float:
        """Whole-run link-layer PDR."""
        if not self.tx_attempts or self.tx_attempts[-1] == 0:
            return 1.0
        return self.tx_acked[-1] / self.tx_attempts[-1]


class ResultMetricsMixin:
    """Metric methods shared by the live and the portable result."""

    # -- CoAP metrics -------------------------------------------------------

    def coap_sent(self) -> int:
        """Total CoAP requests sent."""
        return sum(p.requests_sent for p in self.producers)

    def coap_acked(self) -> int:
        """Total CoAP acknowledgements received."""
        return sum(p.acks_received for p in self.producers)

    def coap_pdr(self) -> float:
        """Overall CoAP packet delivery rate (the paper's headline metric)."""
        sent = self.coap_sent()
        return self.coap_acked() / sent if sent else 1.0

    def coap_pdr_per_producer(self) -> Dict[int, float]:
        """Per-producer PDR (the rows of Fig. 9's heatmap)."""
        return {p.node.node_id: p.pdr for p in self.producers}

    def rtts_s(self) -> List[float]:
        """All CoAP round-trip times in seconds."""
        return [rtt / SEC for p in self.producers for _, rtt in p.rtt_samples]

    def coap_losses(self) -> int:
        """Requests that never got acknowledged."""
        return self.coap_sent() - self.coap_acked()

    # -- link-layer metrics -------------------------------------------------

    def link_pdr_overall(self) -> float:
        """Network-wide link-layer PDR over the whole run."""
        attempts = acked = 0
        for series in self.link_series.values():
            if series.tx_attempts:
                attempts += series.tx_attempts[-1]
                acked += series.tx_acked[-1]
        return acked / attempts if attempts else 1.0

    def upstream_series(self, child: int) -> Optional[LinkSeries]:
        """The child's upstream (towards-consumer) link series."""
        for (key, direction), series in self.link_series.items():
            if direction == "up" and key[0] == child:
                return series
        return None

    def connection_losses(self) -> List[Tuple[float, int, int]]:
        """(time_s, node, peer) per supervision-timeout loss (deduplicated:
        one entry per loss, from the coordinator's point of view)."""
        losses = []
        for record in self.events.of_kind("conn-loss"):
            if record.get("role") == "coordinator":
                losses.append(
                    (record.time_ns / SEC, record.get("node"), record.get("peer"))
                )
        return losses

    def num_connection_losses(self) -> int:
        """Count of connection losses in the run."""
        return len(self.connection_losses())


@dataclass(frozen=True)
class NodeRef:
    """A node stripped to its identity (artifact writers read ``node_id``)."""

    node_id: int


@dataclass
class PortableProducer:
    """The measurement state of one producer, detached from its node."""

    node: NodeRef
    requests_sent: int
    acks_received: int
    send_failures: int
    request_times: List[int]
    rtt_samples: List[Tuple[int, int]]
    ack_times: List[int]

    @classmethod
    def from_producer(cls, producer: Any) -> "PortableProducer":
        """Snapshot a live :class:`~repro.testbed.traffic.Producer`."""
        return cls(
            node=NodeRef(producer.node.node_id),
            requests_sent=producer.requests_sent,
            acks_received=producer.acks_received,
            send_failures=producer.send_failures,
            request_times=list(producer.request_times),
            rtt_samples=[tuple(s) for s in producer.rtt_samples],
            ack_times=list(producer.ack_times),
        )

    @property
    def node_id(self) -> int:
        """The producing node's id."""
        return self.node.node_id

    @property
    def pdr(self) -> float:
        """Acknowledgements received / requests sent (1.0 before traffic)."""
        if self.requests_sent == 0:
            return 1.0
        return self.acks_received / self.requests_sent


@dataclass
class PortableResult(ResultMetricsMixin):
    """Everything a run produced, in picklable form.

    Built in the worker process via :meth:`from_result`, shipped to the
    parent over a pipe, and stored verbatim by the result cache.  Energy
    currents are precomputed because they need the (non-portable) network.
    """

    config: ExperimentConfig
    producers: List[PortableProducer]
    #: The consumer's per-producer request tally.
    consumer_requests: Dict[int, int]
    events: EventLog
    #: (link, direction) -> cumulative series.
    link_series: Dict[Tuple[LinkKey, str], LinkSeries]
    #: (link, direction) -> accumulated per-channel [attempts, acked].
    link_channels: Dict[Tuple[LinkKey, str], List[List[int]]]
    #: Precomputed per-node average BLE current (µA); None for 802.15.4.
    node_currents_ua: Optional[Dict[int, float]]
    #: Cross-layer trace records (empty unless the config enabled tracing).
    #: TraceRecords are plain frozen dataclasses of scalars/strings/bytes,
    #: so they pickle across the worker pipe unchanged.
    trace_records: List[TraceRecord] = field(default_factory=list)
    #: Runtime metrics payload (see :mod:`repro.obs`): plain dicts of
    #: counters/histogram states, picklable and deterministic, so metric
    #: snapshots merge identically whatever ``max_workers`` produced them.
    metrics: Optional[dict] = None
    #: Workload summary (churn/mobility/rotation), already a plain dict.
    workload: Optional[dict] = None
    #: Packet-journey span payload (see :mod:`repro.spans`), a plain dict.
    spans: Optional[dict] = None

    @classmethod
    def from_result(cls, result: Any) -> "PortableResult":
        """Flatten a live :class:`~repro.exp.runner.ExperimentResult`."""
        return cls(
            config=result.config,
            producers=[
                PortableProducer.from_producer(p) for p in result.producers
            ],
            consumer_requests=dict(result.consumer.requests_by_producer),
            events=result.events,
            link_series=result.link_series,
            link_channels=result.link_channels,
            node_currents_ua=result.fleet_current_ua(),
            trace_records=list(getattr(result, "trace_records", ())),
            metrics=getattr(result, "metrics", None),
            workload=getattr(result, "workload", None),
            spans=getattr(result, "spans", None),
        )

    # -- energy metrics (precomputed in the worker) --------------------------

    def node_current_ua(self, node_id: int) -> Optional[float]:
        """Average BLE current of one node (µA); ``None`` for 802.15.4."""
        if self.node_currents_ua is None:
            return None
        return self.node_currents_ua.get(node_id)

    def fleet_current_ua(self) -> Optional[Dict[int, float]]:
        """Per-node average BLE currents (µA), or ``None`` for 802.15.4."""
        return self.node_currents_ua
