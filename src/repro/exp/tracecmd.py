"""The ``python -m repro trace`` subcommand: trace a run, check invariants.

Runs one experiment with the global tracer streaming into three sinks at
once -- a JSONL file (the human/tooling-readable trace), a packet dump (the
binary capture of everything that went over a 6LoWPAN link, decodable with
:func:`repro.trace.sinks.read_packet_dump`), and the live invariant
checkers -- then writes the usual artifacts next to them and reports any
violations.  The process exits non-zero when a checker fired, which is what
lets CI use a traced run as a conformance gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List

from repro.exp.artifacts import render_summary, write_artifacts
from repro.exp.config import ExperimentConfig
from repro.exp.runner import ExperimentResult, run_experiment
from repro.sim.units import SEC
from repro.trace.invariants import CheckerSink, Violation, default_checkers
from repro.trace.sinks import JsonlSink, PacketDumpSink
from repro.trace.tracer import TRACE


def example_config(description: str = "") -> ExperimentConfig:
    """The default scenario for ``repro trace``: a short 4-node line.

    A line is the smallest topology that exercises every traced layer --
    multi-hop forwarding, fragmentation-capable SDUs, supervision windows
    and the shared-radio scheduler on the relay nodes.
    """
    cfg = ExperimentConfig(
        name=description or "trace",
        topology="line",
        n_nodes=4,
        duration_s=10.0,
        warmup_s=2.0,
        drain_s=1.0,
        producer_interval_s=1.0,
        seed=3,
    )
    return cfg


@dataclass
class TraceReport:
    """What one traced run produced."""

    result: ExperimentResult
    outdir: Path
    records: int
    by_layer: Dict[str, int]
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether all invariants held."""
        return not self.violations


def run_traced(
    config: ExperimentConfig,
    outdir: str,
    layers: str = "",
) -> TraceReport:
    """Run ``config`` with full tracing + invariant checking into ``outdir``.

    The checkers always see every layer; the ``layers`` filter only narrows
    what lands in the trace files (a filtered trace would blind the
    supervision/anchor checkers otherwise).
    """
    out = Path(outdir)
    out.mkdir(parents=True, exist_ok=True)
    layer_set = {s.strip() for s in str(layers).split(",") if s.strip()}

    jsonl = JsonlSink(out / "trace.jsonl")
    pdump = PacketDumpSink(out / "trace.pdump")
    checkers = CheckerSink(default_checkers())
    by_layer: Dict[str, int] = {}

    class _Counting:
        """Fan-out shim: per-layer tally + layer-filtered file sinks."""

        def accept(self, record: Any) -> None:
            by_layer[record.layer] = by_layer.get(record.layer, 0) + 1
            if not layer_set or record.layer in layer_set:
                jsonl.accept(record)
                pdump.accept(record)

        def close(self) -> None:
            jsonl.close()
            pdump.close()

    TRACE.configure(sinks=[_Counting(), checkers])
    try:
        result = run_experiment(config)
    finally:
        records = TRACE.records_emitted
        TRACE.reset()
        jsonl.close()
        pdump.close()
        checkers.finish()

    write_artifacts(result, out)
    return TraceReport(
        result=result,
        outdir=out,
        records=records,
        by_layer=by_layer,
        violations=list(checkers.violations),
    )


def render_trace_summary(report: TraceReport) -> str:
    """The trace report as one text block (printed by the CLI)."""
    lines = [
        f"trace: {report.records} records "
        f"({', '.join(f'{k}={v}' for k, v in sorted(report.by_layer.items()))})",
        f"artifacts: {report.outdir}/trace.jsonl, trace.pdump, events.jsonl",
        "",
    ]
    if report.ok:
        lines.append("invariants: all checks passed")
    else:
        lines.append(f"invariants: {len(report.violations)} VIOLATION(S)")
        for violation in report.violations:
            lines.append(
                f"  [{violation.time_ns / SEC:.6f}s] "
                f"{violation.checker}: {violation.message}"
            )
    lines += ["", render_summary(report.result)]
    return "\n".join(lines)
