"""Metric computation helpers (CDFs, binned series, percentiles).

Everything the paper's figures plot, as plain functions over sample lists:
round-trip-time CDFs (Figs. 7b/8/10b/13c), time-binned CoAP PDR (Figs.
7a/9/10a/13a), link-layer PDR series (Figs. 12/13b), and per-channel PDRs
(Fig. 12 bottom).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.sim.units import SEC


class EmptySampleError(ValueError):
    """Raised when a statistic is requested over zero samples.

    A :class:`ValueError` subclass so existing ``except ValueError``
    handlers keep working; summary-building paths catch this specifically
    and degrade to NaN fields instead of crashing a whole sweep cell when
    one run (e.g. a fully shaded cell) delivered no packets.
    """


def cdf(samples: Sequence[float]) -> Tuple[List[float], List[float]]:
    """Empirical CDF: sorted values and cumulative probabilities."""
    ordered = sorted(samples)
    n = len(ordered)
    return ordered, [(i + 1) / n for i in range(n)]


def percentile(samples: Sequence[float], q: float) -> float:
    """The q-quantile (0..1) by linear interpolation."""
    if not samples:
        raise EmptySampleError("no samples")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be within [0, 1]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean."""
    if not samples:
        raise EmptySampleError("no samples")
    return sum(samples) / len(samples)


def binned_pdr(
    request_times_ns: Sequence[int],
    acked_times_ns: Iterable[int],
    bin_s: float,
    t_end_s: float,
    t_start_s: float = 0.0,
) -> Tuple[List[float], List[float]]:
    """Time-binned delivery rate.

    Requests are binned by *send* time; a request counts as delivered when
    its send time appears in ``acked_times_ns`` (the producer records the
    send timestamp of every acknowledged request).

    :returns: (bin centre times in s, PDR per bin); bins without requests
        are skipped.
    """
    if bin_s <= 0:
        raise ValueError("bin size must be positive")
    acked = set(acked_times_ns)
    n_bins = max(1, math.ceil((t_end_s - t_start_s) / bin_s))
    sent_per_bin = [0] * n_bins
    acked_per_bin = [0] * n_bins
    for t in request_times_ns:
        t_s = t / SEC
        if not t_start_s <= t_s < t_end_s:
            continue
        index = min(int((t_s - t_start_s) / bin_s), n_bins - 1)
        sent_per_bin[index] += 1
        if t in acked:
            acked_per_bin[index] += 1
    times, pdrs = [], []
    for i in range(n_bins):
        if sent_per_bin[i]:
            times.append(t_start_s + (i + 0.5) * bin_s)
            pdrs.append(acked_per_bin[i] / sent_per_bin[i])
    return times, pdrs


def producer_binned_pdr(
    producer: Any, bin_s: float, t_end_s: float
) -> Tuple[List[float], List[float]]:
    """Time-binned PDR for one :class:`~repro.testbed.traffic.Producer`."""
    acked_sends = [sent_at for sent_at, _ in producer.rtt_samples]
    return binned_pdr(producer.request_times, acked_sends, bin_s, t_end_s)


def aggregate_binned_pdr(
    producers: Iterable[Any], bin_s: float, t_end_s: float
) -> Tuple[List[float], List[float]]:
    """Network-wide time-binned CoAP PDR (Fig. 7a / 9 bottom panels)."""
    all_requests: List[int] = []
    all_acked: List[int] = []
    for producer in producers:
        all_requests.extend(producer.request_times)
        all_acked.extend(sent_at for sent_at, _ in producer.rtt_samples)
    return binned_pdr(all_requests, all_acked, bin_s, t_end_s)


def per_channel_pdr(channel_counts: Sequence[Sequence[int]]) -> List[float]:
    """Per-channel PDR from [attempts, acked] rows (Fig. 12 bottom).

    Channels without attempts report NaN so renderers can skip them.
    """
    out = []
    for attempts, acked in channel_counts:
        out.append(acked / attempts if attempts else math.nan)
    return out


def summarize_rtt(rtts_s: Sequence[float]) -> Dict[str, float]:
    """The RTT summary row used by several benches.

    All-NaN when there are no samples (a zero-packet run must not crash
    the report of a whole sweep).
    """
    if not rtts_s:
        return {
            "mean": math.nan,
            "p50": math.nan,
            "p90": math.nan,
            "p99": math.nan,
            "max": math.nan,
        }
    return {
        "mean": mean(rtts_s),
        "p50": percentile(rtts_s, 0.50),
        "p90": percentile(rtts_s, 0.90),
        "p99": percentile(rtts_s, 0.99),
        "max": max(rtts_s),
    }
