"""Experiment execution.

Builds the configured network (BLE or 802.15.4), attaches the
producer/consumer workload, samples cumulative per-link statistics at a
fixed cadence (so a 24-hour run stores kilobytes, not gigabytes), runs the
kernel, and returns an :class:`ExperimentResult` with everything the
figure/table benches need.

Link statistics survive reconnects: the sampler tracks per-connection
last-seen snapshots and accumulates deltas into per-link totals keyed by
the (coordinator, subordinate) address pair, so a link that went through
five connection generations still has one continuous time series.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.ble.config import BleConfig, SchedulerPolicy
from repro.ble.chanmap import ChannelMap
from repro.ble.conn import Role
from repro.core.statconn import StatconnConfig
from repro.core.intervals import IntervalPolicy, StaticIntervalPolicy
from repro.exp.config import (
    SPATIAL_TOPOLOGIES,
    ExperimentConfig,
    parse_interval_spec,
)
from repro.exp.events import EventLog
from repro.exp.portable import (
    DIRECTIONS,
    LinkKey,
    LinkSeries,
    PortableResult,
    ResultMetricsMixin,
)
from repro.obs.registry import METRICS
from repro.obs.sampler import MetricsSnapshotter
from repro.phy.medium import InterferenceModel
from repro.sim import RngRegistry
from repro.sim.units import MSEC, SEC, s_to_ns
from repro.spans.hub import SPANS
from repro.testbed.dynamic import DynamicBleNetwork
from repro.testbed.iotlab import JAMMED_CHANNEL
from repro.testbed.topology import (
    BleNetwork,
    line_topology_edges,
    star_topology_edges,
    tree_topology_edges,
)
from repro.testbed.traffic import Consumer, Producer, TrafficConfig
from repro.topo import Topology, make_topology
from repro.trace.record import TraceRecord
from repro.trace.sinks import RingBufferSink
from repro.trace.tracer import TRACE
from repro.workload.driver import WorkloadDriver
from repro.workload.spec import WorkloadSpec

@dataclass
class ExperimentResult(ResultMetricsMixin):
    """Everything a run produced.

    Holds live objects (the network, the producers) for deep inspection;
    :meth:`to_portable` flattens it into the picklable
    :class:`~repro.exp.portable.PortableResult` the parallel engine and the
    result cache traffic in.  The metric methods are shared with the
    portable form via :class:`~repro.exp.portable.ResultMetricsMixin`.
    """

    config: ExperimentConfig
    producers: List[Producer]
    consumer: Consumer
    events: EventLog
    #: (link, direction) -> cumulative series.
    link_series: Dict[Tuple[LinkKey, str], LinkSeries]
    #: (link, direction) -> accumulated per-channel [attempts, acked].
    link_channels: Dict[Tuple[LinkKey, str], List[List[int]]]
    #: The network object (BleNetwork or CsmaNetwork) for deep inspection.
    network: object
    #: Cross-layer trace records, when the config asked for them (or the
    #: caller pre-configured :data:`repro.trace.TRACE` with its own sinks,
    #: in which case this stays empty and the sinks hold the trace).
    trace_records: List[TraceRecord] = field(default_factory=list)
    #: Runtime metrics payload (``{"sim_time_ns", "scopes", "series"}``)
    #: when the config asked for metrics collection; ``None`` otherwise.
    metrics: Optional[dict] = None
    #: Workload summary (churn/mobility/rotation; see
    #: :meth:`repro.workload.driver.WorkloadDriver.summary`) when the config
    #: enabled any workload axis; ``None`` otherwise.
    workload: Optional[dict] = None
    #: Packet-journey span payload (see
    #: :meth:`repro.spans.hub.SpanHub.export_payload`) when the config
    #: asked for span collection; ``None`` otherwise.
    spans: Optional[dict] = None

    def to_portable(self) -> PortableResult:
        """Flatten into the picklable form (see :mod:`repro.exp.portable`)."""
        return PortableResult.from_result(self)

    # -- energy metrics (§5.4 integration) -----------------------------------

    def node_current_ua(
        self, node_id: int, include_idle_board: bool = False
    ) -> Optional[float]:
        """Average BLE current of one node over the run (µA), from the
        controller's recorded event counters and the §5.4 charge model.

        Only meaningful for BLE runs; returns ``None`` for 802.15.4.
        """
        if self.config.link_layer != "ble":
            return None
        from repro.energy import EnergyModel

        node = self.network.nodes[node_id]
        return EnergyModel().controller_current_ua(
            node.controller,
            self.config.total_runtime_s,
            include_idle_board=include_idle_board,
        )

    def fleet_current_ua(self) -> Optional[Dict[int, Optional[float]]]:
        """Per-node average BLE currents (µA), or ``None`` for 802.15.4."""
        if self.config.link_layer != "ble":
            return None
        return {
            node.node_id: self.node_current_ua(node.node_id)
            for node in self.network.nodes
        }


class ExperimentRunner:
    """Builds and executes one configured experiment."""

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config

    # -- construction helpers --------------------------------------------------

    def _edges(self) -> List[Tuple[int, int]]:
        topo = {
            "tree": tree_topology_edges,
            "line": line_topology_edges,
            "star": star_topology_edges,
        }[self.config.topology]
        return topo(self.config.n_nodes)

    def _spatial_topology(self, kind: str) -> Topology:
        """Generate the placed layout for a spatial run (scale tier)."""
        cfg = self.config
        return make_topology(
            kind,
            cfg.n_nodes,
            seed=cfg.seed,
            radio_range_m=cfg.radio_range_m,
            spacing_m=cfg.node_spacing_m,
        )

    def _build_ble_dynamic(self) -> Any:
        """The §9 mode: no configured links; dynconn + RPL self-form."""
        cfg = self.config
        policy = SchedulerPolicy(cfg.scheduler_policy)
        interference = InterferenceModel(
            base_ber=cfg.base_ber, jammed_channels=(JAMMED_CHANNEL,)
        )
        chan_map = ChannelMap.excluding([JAMMED_CHANNEL])
        max_event_len_ns = int(cfg.max_event_len_ms * MSEC)

        def ble_factory(node_id: int) -> BleConfig:
            return BleConfig(
                scheduler_policy=policy,
                chan_map=chan_map,
                max_event_len_ns=max_event_len_ns,
                abort_event_on_crc_error=cfg.abort_event_on_crc_error,
            )

        if cfg.drift_ppms is not None:
            ppms = list(cfg.drift_ppms)
        else:
            drift_rng = RngRegistry(cfg.seed).stream("clock-drift")
            span = cfg.drift_ppm_span
            ppms = [drift_rng.uniform(-span, span) for _ in range(cfg.n_nodes)]
        probe = parse_interval_spec(cfg.conn_interval, random.Random(0))
        if hasattr(probe, "lo_ns"):
            window_ms = (probe.lo_ns // 1_000_000, probe.hi_ns // 1_000_000)
        else:
            window_ms = None
        geometry = None
        if cfg.geometry != "none":
            geometry = self._spatial_topology(cfg.geometry).geometry(
                index=cfg.spatial_index
            )
        net = DynamicBleNetwork(
            cfg.n_nodes,
            seed=cfg.seed,
            ppms=ppms,
            ble_config_factory=ble_factory,
            interference=interference,
            max_children=cfg.max_children,
            pktbuf_capacity=cfg.pktbuf_bytes,
            geometry=geometry,
            **({"interval_window_ms": window_ms} if window_ms else {}),
        )
        if window_ms is None:
            # a static interval spec: dynconn adopts with that interval
            for node, dynconn in zip(net.nodes, net.dynconns):
                dynconn.config.interval_policy = StaticIntervalPolicy(
                    probe.interval_ns
                )
                dynconn.config.reject_interval_collisions = False
        net.start()
        return net

    def _build_ble(self) -> BleNetwork:
        cfg = self.config
        policy = SchedulerPolicy(cfg.scheduler_policy)
        interference = InterferenceModel(
            base_ber=cfg.base_ber, jammed_channels=(JAMMED_CHANNEL,)
        )
        chan_map = ChannelMap.excluding([JAMMED_CHANNEL])

        # The event-length cap models the controller's per-event slot
        # reservation.  It is calibrated as 6 ms at the paper's default
        # 75 ms interval (which reproduces the §5.2 high-load PDR of ~75 %),
        # grows with the interval so slower configurations keep a useful
        # duty cycle, and saturates at 2x -- real controllers do not reserve
        # arbitrarily long events, which is what turns the 2 s-interval
        # burst regime into the Fig. 9b collapse.
        probe = parse_interval_spec(cfg.conn_interval, random.Random(0))
        if hasattr(probe, "lo_ns"):
            interval_mid_ns = (probe.lo_ns + probe.hi_ns) // 2
        else:
            interval_mid_ns = probe.interval_ns
        duty_scale = min(max(1.0, interval_mid_ns / (75 * MSEC)), 2.0)
        max_event_len_ns = int(cfg.max_event_len_ms * MSEC * duty_scale)

        def ble_factory(node_id: int) -> BleConfig:
            return BleConfig(
                scheduler_policy=policy,
                chan_map=chan_map,
                max_event_len_ns=max_event_len_ns,
                abort_event_on_crc_error=cfg.abort_event_on_crc_error,
            )

        from repro.sim import RngRegistry

        if cfg.drift_ppms is not None:
            ppms = list(cfg.drift_ppms)
        else:
            drift_rng = RngRegistry(cfg.seed).stream("clock-drift")
            span = cfg.drift_ppm_span
            ppms = [drift_rng.uniform(-span, span) for _ in range(cfg.n_nodes)]
        # Spatial scale tier: generated positions, range-gated medium,
        # statconn over the BFS spanning tree of the radio graph.
        geometry = None
        if cfg.topology in SPATIAL_TOPOLOGIES:
            layout = self._spatial_topology(cfg.topology)
            geometry = layout.geometry(index=cfg.spatial_index)
            edges = layout.tree_edges()
        else:
            edges = self._edges()
        net = BleNetwork(
            cfg.n_nodes,
            seed=cfg.seed,
            ppms=ppms,
            ble_config_factory=ble_factory,
            statconn_config_factory=lambda i: StatconnConfig(),
            interference=interference,
            pktbuf_capacity=cfg.pktbuf_bytes,
            geometry=geometry,
        )
        # per-node interval policies drawing from node-scoped streams
        for node in net.nodes:
            node.statconn.config.interval_policy = self._interval_policy(
                net.rngs.stream(f"intervals-{node.node_id}")
            )
            node.statconn.config.reject_interval_collisions = (
                cfg.uses_random_intervals
            )
        net.apply_edges(edges)
        return net

    def _interval_policy(self, rng: random.Random) -> IntervalPolicy:
        policy = parse_interval_spec(self.config.conn_interval, rng)
        if self.config.subordinate_latency:
            policy.latency = self.config.subordinate_latency
        return policy

    def _build_802154(self) -> Any:
        from repro.ieee802154 import CsmaNetwork

        cfg = self.config
        net = CsmaNetwork(
            cfg.n_nodes,
            seed=cfg.seed,
            interference=InterferenceModel(base_ber=cfg.base_ber),
            pktbuf_capacity=cfg.pktbuf_bytes,
        )
        net.apply_edges(self._edges())
        return net

    # -- execution ------------------------------------------------------------------

    def run(self) -> ExperimentResult:
        """Execute the experiment and collect results.

        When ``config.trace`` is set and the global tracer is idle, the run
        captures its trace into a ring buffer and returns the records on the
        result.  A caller that already configured :data:`TRACE` (e.g. the
        ``repro trace`` CLI, which streams to files) keeps its own sinks;
        the runner then only late-binds the simulator clock.
        """
        cfg = self.config
        ring = None
        if cfg.trace and not TRACE.enabled:
            layers = {s.strip() for s in cfg.trace_layers.split(",") if s.strip()}
            ring = RingBufferSink()
            TRACE.configure(sinks=[ring], layers=layers or None)
        own_metrics = cfg.metrics and not METRICS.enabled
        if own_metrics:
            METRICS.configure()
        own_spans = cfg.spans and not SPANS.enabled
        if own_spans:
            SPANS.configure()
        try:
            return self._run(ring)
        finally:
            if ring is not None:
                TRACE.reset()
            if own_metrics:
                METRICS.reset()
            if own_spans:
                SPANS.reset()

    def _run(self, ring: Optional[RingBufferSink]) -> ExperimentResult:
        cfg = self.config
        is_ble = cfg.link_layer == "ble"
        if cfg.topology == "dynamic":
            net = self._build_ble_dynamic()
        elif is_ble:
            net = self._build_ble()
        else:
            net = self._build_802154()
        self._configure_dispatch(net, is_ble)
        try:
            return self._drive(net, ring, is_ble)
        finally:
            if net.sim.dispatch != "serial":
                # joins lane worker threads (ThreadSeam) so repeated runs
                # in one process (bench, sweeps) never accumulate pools
                net.sim.configure_dispatch("serial")

    def _drive(
        self, net: Any, ring: Optional[RingBufferSink], is_ble: bool
    ) -> ExperimentResult:
        cfg = self.config
        if TRACE.enabled:
            TRACE.attach_sim(net.sim)
        if SPANS.enabled:
            SPANS.attach_sim(net.sim)
        events = EventLog()

        # connection-loss hooks (BLE only; 802.15.4 has no connections)
        if is_ble:
            for node in net.nodes:
                self._hook_losses(node, events)

        consumer = Consumer(net.nodes[0])
        traffic = TrafficConfig(
            interval_ns=s_to_ns(cfg.producer_interval_s),
            jitter_ns=s_to_ns(cfg.producer_jitter_s),
            payload_len=cfg.payload_len,
            confirmable=cfg.confirmable,
        )
        producers = []
        for node in net.nodes[1:]:
            producer = Producer(
                node,
                net.nodes[0].mesh_local,
                config=traffic,
                rng=(
                    net.rngs.stream(f"traffic-{node.node_id}")
                    if hasattr(net, "rngs")
                    else None
                ),
            )
            producer.start(delay_ns=s_to_ns(cfg.warmup_s))
            producers.append(producer)

        stop_at = s_to_ns(cfg.warmup_s + cfg.duration_s)
        for producer in producers:
            net.sim.at(stop_at, producer.stop)

        # Scenario dynamics (churn / mobility / MAC rotation): only built
        # when a workload block is configured, so workload-free runs execute
        # byte-identically to runs predating the workload layer.
        driver = None
        workload_spec = WorkloadSpec.from_config(cfg)
        if workload_spec is not None:
            driver = WorkloadDriver(net, workload_spec, cfg.seed)
            driver.bind_producers(
                {p.node.node_id: p for p in producers},
                traffic_start_ns=s_to_ns(cfg.warmup_s),
                traffic_stop_ns=stop_at,
            )
            driver.install(s_to_ns(cfg.warmup_s), stop_at)

        link_series: Dict[Tuple[LinkKey, str], LinkSeries] = {}
        link_channels: Dict[Tuple[LinkKey, str], List[List[int]]] = {}
        flush_sampler = None
        if is_ble:
            flush_sampler = self._start_sampler(net, link_series, link_channels)

        snapper = None
        if METRICS.enabled:
            snapper = MetricsSnapshotter(
                net.sim,
                METRICS,
                s_to_ns(cfg.sample_period_s),
                network=net if is_ble else None,
            )
            snapper.start()

        net.sim.run(until=s_to_ns(cfg.total_runtime_s))
        if flush_sampler is not None:
            # final partial window: the kernel stops *before* the horizon's
            # events, so the last periodic sample never lands at the end
            flush_sampler()
        spans_payload = None
        if SPANS.enabled:
            # Journeys still in flight flush as lost at the horizon; the
            # streaming checker has then judged every journey of the run.
            SPANS.finish(net.sim.now)
            spans_payload = SPANS.export_payload()
        metrics_payload = None
        if snapper is not None:
            snapper.finish()
            metrics_payload = {
                "sim_time_ns": net.sim.now,
                "scopes": METRICS.snapshot(),
                "series": snapper.series(),
            }
        return ExperimentResult(
            config=cfg,
            producers=producers,
            consumer=consumer,
            events=events,
            link_series=link_series,
            link_channels=link_channels,
            network=net,
            trace_records=list(ring.records()) if ring is not None else [],
            metrics=metrics_payload,
            workload=driver.summary() if driver is not None else None,
            spans=spans_payload,
        )

    def _configure_dispatch(self, net: Any, is_ble: bool) -> None:
        """Arm the kernel's dispatch mode from the ``kernel:`` config block.

        ``lookahead`` builds the cluster partition (geometry components, or
        one world cluster on a geometry-less medium), shards the medium's
        loss streams over it, and derives the conservative horizon from the
        scenario's minimum connection interval -- the fastest path by which
        one cluster's packet can influence another is a connection event,
        and those are at least one interval apart.
        """
        kernel_cfg = self.config.kernel
        mode = kernel_cfg.get("dispatch", "serial")
        if mode == "serial":
            return
        if not is_ble:
            raise ValueError(
                "kernel.dispatch='lookahead' requires the BLE link layer"
            )
        from repro.sim.cluster import ClusterMap, components_of

        medium = net.medium
        geometry = medium.geometry
        if geometry is not None:
            clusters = ClusterMap(components_of(geometry.adjacency()))
        else:
            # The paper's single-room plane: every node hears every other.
            clusters = ClusterMap([sorted(medium.nodes)])
        medium.attach_clusters(clusters, self.config.seed)
        horizon = kernel_cfg.get("horizon_ns", 0)
        if not horizon:
            probe = parse_interval_spec(self.config.conn_interval, random.Random(0))
            horizon = getattr(probe, "lo_ns", None) or probe.interval_ns
        net.sim.configure_dispatch(
            "lookahead",
            workers=kernel_cfg.get("workers", 1),
            clusters=clusters,
            horizon_ns=horizon,
        )

    def _hook_losses(self, node: Any, events: EventLog) -> None:
        from repro.ble.conn import DisconnectReason

        def on_close(conn: Any, reason: Any, node: Any = node) -> None:
            if reason is DisconnectReason.SUPERVISION_TIMEOUT:
                my_role = conn.endpoint_of(node.controller).role
                events.emit(
                    node.sim.now,
                    "conn-loss",
                    node=node.node_id,
                    peer=conn.peer_of(node.controller).identity,
                    role=my_role.value,
                )

        node.controller.conn_close_listeners.append(on_close)

    def _start_sampler(
        self,
        net: Any,
        link_series: Dict[Tuple[LinkKey, str], LinkSeries],
        link_channels: Dict[Tuple[LinkKey, str], List[List[int]]],
    ) -> Callable[[], None]:
        """Schedule periodic link sampling; returns a final-flush closure.

        The returned closure takes one extra sample at the current sim time
        (the end of the run) unless the last periodic sample already landed
        there -- without it the final partial window would be dropped,
        because the kernel never dispatches events at the horizon itself.
        """
        cfg = self.config
        period = s_to_ns(cfg.sample_period_s)
        # per-(conn-generation, direction) last-seen snapshots
        last_seen: Dict[Tuple[int, str], Tuple[int, ...]] = {}
        last_channels: Dict[Tuple[int, str], List[Tuple[int, int]]] = {}
        totals: Dict[Tuple[LinkKey, str], List[int]] = {}
        last_sample_ns = [-1]

        def collect() -> None:
            now_s = net.sim.now / SEC
            last_sample_ns[0] = net.sim.now
            for node in net.nodes:
                for conn in node.controller.connections:
                    if conn.coord.controller is not node.controller:
                        continue
                    key: LinkKey = (
                        conn.coord.controller.identity,
                        conn.sub.controller.identity,
                    )
                    for direction, ep in (("up", conn.coord), ("down", conn.sub)):
                        snap = ep.stats.snapshot()
                        prev = last_seen.get((conn.conn_id, direction), (0, 0, 0, 0))
                        last_seen[(conn.conn_id, direction)] = snap
                        total = totals.setdefault((key, direction), [0, 0])
                        total[0] += snap[0] - prev[0]  # tx attempts
                        total[1] += snap[1] - prev[1]  # tx acked
                        series = link_series.setdefault(
                            (key, direction), LinkSeries()
                        )
                        series.times_s.append(now_s)
                        series.tx_attempts.append(total[0])
                        series.tx_acked.append(total[1])
                        # per-channel accumulation
                        chan_now = [
                            (c[0], c[1]) for c in ep.stats.per_channel
                        ]
                        chan_prev = last_channels.get(
                            (conn.conn_id, direction), [(0, 0)] * 37
                        )
                        last_channels[(conn.conn_id, direction)] = chan_now
                        chan_total = link_channels.setdefault(
                            (key, direction), [[0, 0] for _ in range(37)]
                        )
                        for ch in range(37):
                            chan_total[ch][0] += chan_now[ch][0] - chan_prev[ch][0]
                            chan_total[ch][1] += chan_now[ch][1] - chan_prev[ch][1]

        def sample() -> None:
            collect()
            net.sim.after(period, sample)

        def flush() -> None:
            if last_sample_ns[0] != net.sim.now:
                collect()

        net.sim.after(period, sample)
        return flush


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Convenience one-shot: build, run, and return the result."""
    return ExperimentRunner(config).run()
