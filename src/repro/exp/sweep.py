"""Config-grid sweeps (the paper's Appendix B workflow, parallelized).

A sweep is a base :class:`~repro.exp.config.ExperimentConfig`, a grid of
field overrides (e.g. ``conn_interval`` x ``producer_interval_s``), and a
repetition count.  :func:`run_sweep` expands the cross product into
``cells x seeds`` work items, runs them through the
:class:`~repro.exp.parallel.ParallelEngine` (sharded + cached), aggregates
each cell like :class:`~repro.exp.repeat.RepeatedResult`, and optionally
writes the Appendix-A artifact triple per run.
"""

from __future__ import annotations

import itertools
import os
import re
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exp.config import ExperimentConfig
from repro.exp.parallel import (
    EngineStats,
    ParallelEngine,
    ProgressEvent,
    RunOutcome,
)
from repro.exp.repeat import RepeatedResult, derive_seed
from repro.exp.report import format_table

#: Sanitizer for per-run artifact directory names.
_UNSAFE = re.compile(r"[^A-Za-z0-9._=,\-\[\]:]+")


@dataclass
class SweepCell:
    """One grid point: a config (base seed) and its per-seed outcomes."""

    config: ExperimentConfig
    #: The grid overrides that define this cell, in grid-key order.
    overrides: Tuple[Tuple[str, object], ...]
    outcomes: List[RunOutcome] = field(default_factory=list)

    @property
    def label(self) -> str:
        """Human-readable cell id, e.g. ``conn_interval=75``."""
        if not self.overrides:
            return self.config.name
        return ",".join(f"{k}={v}" for k, v in self.overrides)

    @property
    def failed(self) -> List[RunOutcome]:
        """Outcomes that produced no result."""
        return [o for o in self.outcomes if not o.ok]

    def aggregate(self) -> RepeatedResult:
        """The cell's repetitions aggregated (successful runs only)."""
        agg = RepeatedResult(config=self.config)
        agg.results = [o.result for o in self.outcomes if o.ok]
        return agg


@dataclass
class SweepResult:
    """Everything one sweep produced."""

    cells: List[SweepCell]
    stats: EngineStats

    @property
    def outcomes(self) -> List[RunOutcome]:
        """All outcomes across cells, cell-major, seed-minor."""
        return [o for cell in self.cells for o in cell.outcomes]

    @property
    def total_failures(self) -> int:
        """Runs that failed after retries."""
        return sum(len(cell.failed) for cell in self.cells)


def expand_grid(
    base: ExperimentConfig,
    grid: Dict[str, Sequence],
    seeds: int = 5,
) -> List[SweepCell]:
    """Expand ``base`` x ``grid`` x ``seeds`` into cells with run configs.

    Grid keys must be config field names; the cross product is taken in the
    given key order, so expansion order (and therefore work-item order) is
    deterministic.  Each cell's repetition ``k`` uses
    :func:`~repro.exp.repeat.derive_seed`.
    """
    if seeds < 1:
        raise ValueError("need at least one seed")
    base_fields = asdict(base)
    for key in grid:
        if key not in base_fields:
            raise ValueError(f"unknown config field {key!r} in grid")
        if not grid[key]:
            raise ValueError(f"grid axis {key!r} is empty")
    keys = list(grid)
    cells: List[SweepCell] = []
    for combo in itertools.product(*(grid[k] for k in keys)) if keys else [()]:
        overrides = tuple(zip(keys, combo))
        name = base.name + ("/" + ",".join(f"{k}={v}" for k, v in overrides)
                            if overrides else "")
        cell_config = ExperimentConfig(
            **{**base_fields, **dict(overrides), "name": name}
        )
        cell = SweepCell(config=cell_config, overrides=overrides)
        cells.append(cell)
    return cells


def _cell_run_configs(cell: SweepCell, seeds: int) -> List[ExperimentConfig]:
    plain = asdict(cell.config)
    return [
        ExperimentConfig(**{**plain, "seed": derive_seed(cell.config.seed, k)})
        for k in range(seeds)
    ]


def artifact_dirname(index: int, config: ExperimentConfig) -> str:
    """A filesystem-safe per-run artifact directory name."""
    safe = _UNSAFE.sub("_", config.name.replace("/", "__"))
    return f"{index:04d}-{safe}-seed{config.seed}"


def run_sweep(
    base: ExperimentConfig,
    grid: Dict[str, Sequence],
    seeds: int = 5,
    max_workers: Optional[int] = None,
    cache_dir: str | os.PathLike | None = None,
    timeout_s: Optional[float] = None,
    outdir: str | os.PathLike | None = None,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
) -> SweepResult:
    """Run the whole grid through the parallel engine.

    :param outdir: when given, every successful run writes the Appendix-A
        artifact triple into ``<outdir>/<NNNN>-<name>-seed<seed>/``.
    """
    cells = expand_grid(base, grid, seeds)
    flat_configs: List[ExperimentConfig] = []
    spans: List[Tuple[SweepCell, int, int]] = []
    for cell in cells:
        start = len(flat_configs)
        flat_configs.extend(_cell_run_configs(cell, seeds))
        spans.append((cell, start, len(flat_configs)))

    engine = ParallelEngine(
        max_workers=max_workers,
        cache=cache_dir,
        timeout_s=timeout_s,
        progress=progress,
    )
    outcomes = engine.run(flat_configs)
    for cell, start, end in spans:
        cell.outcomes = outcomes[start:end]

    if outdir is not None:
        from repro.exp.artifacts import write_artifacts

        root = Path(outdir)
        for index, outcome in enumerate(outcomes):
            if outcome.ok:
                write_artifacts(
                    outcome.result, root / artifact_dirname(index, outcome.config)
                )
    return SweepResult(cells=cells, stats=engine.stats)


def render_sweep_table(sweep: SweepResult) -> str:
    """The per-cell aggregate table the CLI prints."""
    headers = [
        "cell", "runs", "coap pdr", "min pdr", "ll pdr",
        "losses", "rtt p50 [ms]", "rtt p99 [ms]",
    ]
    rows = []
    for cell in sweep.cells:
        agg = cell.aggregate()
        if agg.n == 0:
            rows.append([cell.label, "0 (all failed)"] + ["-"] * 6)
            continue
        has_rtts = any(r.rtts_s() for r in agg.results)
        rows.append([
            cell.label,
            f"{agg.n}" + (f"+{len(cell.failed)} failed" if cell.failed else ""),
            f"{agg.coap_pdr_mean():.5f}",
            f"{agg.coap_pdr_min():.5f}",
            f"{agg.link_pdr_mean():.4f}",
            str(agg.total_connection_losses()),
            f"{agg.rtt_percentile(0.50) * 1000:.1f}" if has_rtts else "-",
            f"{agg.rtt_percentile(0.99) * 1000:.1f}" if has_rtts else "-",
        ])
    return format_table(headers, rows)
