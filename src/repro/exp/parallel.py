"""Parallel sharded experiment execution.

The paper's evaluation is embarrassingly parallel -- every figure is "N
configs x 5 seeds x 1 h" (Appendix B) -- and the simulator is strictly
deterministic, so runs can be sharded across a process pool and their
results cached without changing a single metric.  This module provides
:class:`ParallelEngine`:

* **Sharding** -- each ``(config, seed)`` work item runs in its own worker
  process (process-per-item: crash isolation is exact and a hung run can be
  killed without poisoning a pool); completed
  :class:`~repro.exp.portable.PortableResult`s stream back over pipes as
  they finish.
* **Caching** -- an optional :class:`~repro.exp.cache.ResultCache` is
  consulted before any process is spawned and fed after every successful
  run, so re-running a sweep replays instantly.
* **Robustness** -- a worker that raises, dies (non-zero exit), or exceeds
  the per-run timeout is retried up to ``max_attempts`` times, then
  reported in its :class:`RunOutcome` rather than raised or hung.
* **Observability** -- per-run wall time, cache hit/miss counters, and a
  ``progress`` callback the CLI uses for live status lines.
* **Fallback** -- with ``max_workers=1`` (or when the platform offers no
  usable ``multiprocessing`` start method) everything runs in-process with
  identical semantics, minus timeout enforcement.

Outcomes are returned in work-item order regardless of completion order,
so aggregation downstream is deterministic under any worker count.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from multiprocessing.connection import wait as _mp_wait
from typing import Any, Callable, Deque, List, Optional, Sequence

from repro.exp.cache import CacheStats, ResultCache
from repro.exp.config import ExperimentConfig
from repro.exp.portable import PortableResult
from repro.obs.wallclock import monotonic

#: Default attempts per work item (1 initial + 1 retry).
DEFAULT_MAX_ATTEMPTS = 2


def execute_portable(config: ExperimentConfig) -> PortableResult:
    """The default work function: run the experiment, flatten the result.

    Imported lazily so worker processes under ``spawn`` pay the import cost
    once, and so this module never drags the full runner in for callers
    that only want the data types.
    """
    from repro.exp.runner import run_experiment

    return run_experiment(config).to_portable()


@dataclass
class RunOutcome:
    """What happened to one work item."""

    config: ExperimentConfig
    result: Optional[PortableResult] = None
    #: Served from the result cache (no process was spawned).
    cached: bool = False
    #: Execution attempts consumed (0 for cache hits).
    attempts: int = 0
    #: Wall-clock seconds of the successful attempt (parent-side clock).
    wall_time_s: float = 0.0
    #: Why the item ultimately failed, if it did.
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether a result was produced (from cache or execution)."""
        return self.result is not None


@dataclass
class ProgressEvent:
    """One engine life-cycle notification, fed to the progress callback.

    ``kind`` is one of ``cache-hit``, ``start``, ``done``, ``retry``,
    ``failed``; ``completed``/``total`` give overall sweep position.
    """

    kind: str
    index: int
    total: int
    completed: int
    config: ExperimentConfig
    attempt: int = 0
    wall_time_s: float = 0.0
    detail: str = ""


@dataclass
class EngineStats:
    """Counters for one :meth:`ParallelEngine.run` invocation."""

    items: int = 0
    executed: int = 0
    cache_hits: int = 0
    retries: int = 0
    failures: int = 0
    wall_time_s: float = 0.0
    #: Wall time of each successful execution (not cache hits).
    run_wall_s: List[float] = field(default_factory=list)
    #: Snapshot of the cache's own accounting (hits/misses/stores).
    cache: Optional[CacheStats] = None

    def summary(self) -> str:
        """One-line accounting, including the cache hit/miss counts."""
        parts = [
            f"{self.items} runs: {self.executed} executed, "
            f"{self.cache_hits} cache hits, {self.retries} retries, "
            f"{self.failures} failures, wall {self.wall_time_s:.2f}s"
        ]
        if self.cache is not None:
            parts.append(self.cache.summary())
        return "; ".join(parts)


class _Pending:
    """One queued work item (mutable attempt counter)."""

    __slots__ = ("index", "config", "attempts")

    def __init__(self, index: int, config: ExperimentConfig) -> None:
        self.index = index
        self.config = config
        self.attempts = 0


class _Active:
    """One in-flight worker process."""

    __slots__ = ("item", "proc", "conn", "started", "msg", "got_msg")

    def __init__(
        self,
        item: _Pending,
        proc: "mp.process.BaseProcess",
        conn: Connection,
        started: float,
    ) -> None:
        self.item = item
        self.proc = proc
        self.conn = conn
        self.started = started
        self.msg = None
        self.got_msg = False


def _worker_main(
    conn: Connection,
    run_fn: Callable[[ExperimentConfig], Any],
    config: ExperimentConfig,
) -> None:
    """Child entry point: run one item, ship (status, payload), exit."""
    try:
        status, payload = "ok", run_fn(config)
    except BaseException as exc:  # report, don't crash the interpreter
        status, payload = "error", f"{type(exc).__name__}: {exc}"
    try:
        conn.send((status, payload))
    except Exception as exc:
        # e.g. the result failed to pickle -- degrade to an error report
        try:
            conn.send(("error", f"result not sendable: {type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        conn.close()


def _pick_context() -> Optional[mp.context.BaseContext]:
    """The cheapest available multiprocessing context, or ``None``.

    ``fork`` shares the already-imported simulator with workers for free;
    ``spawn`` works everywhere else.  ``None`` means run in-process.
    """
    methods = mp.get_all_start_methods()
    for method in ("fork", "spawn"):
        if method in methods:
            return mp.get_context(method)
    return None


class ParallelEngine:
    """Shards ``(config, seed)`` work items across a worker pool.

    :param max_workers: concurrent worker processes; ``None`` means the
        machine's CPU count; ``1`` runs everything in-process.
    :param cache: a :class:`ResultCache`, a cache directory path, or
        ``None`` to disable caching.
    :param timeout_s: per-run wall-clock limit; an overdue worker is
        terminated and the item retried (no limit when ``None``; not
        enforceable on the in-process path).
    :param max_attempts: total tries per item before it is reported failed.
    :param run_fn: the work function (must be picklable for ``spawn``);
        defaults to :func:`execute_portable`.
    :param progress: optional callback receiving :class:`ProgressEvent`s.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache: ResultCache | str | os.PathLike | None = None,
        timeout_s: Optional[float] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        run_fn: Callable[[ExperimentConfig], PortableResult] = execute_portable,
        progress: Optional[Callable[[ProgressEvent], None]] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if max_workers is None:
            # simlint: allow-env -- stdlib-style default only; reproducible runs
            # pass an explicit max_workers (the CLI resolves REPRO_WORKERS).
            max_workers = os.cpu_count() or 1
        self.max_workers = max_workers
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.timeout_s = timeout_s
        self.max_attempts = max_attempts
        self.run_fn = run_fn
        self.progress = progress
        self.stats = EngineStats()

    # -- public API ---------------------------------------------------------

    def run(self, configs: Sequence[ExperimentConfig]) -> List[RunOutcome]:
        """Execute every config; outcomes come back in input order."""
        started = monotonic()
        self.stats = EngineStats(items=len(configs))
        outcomes: List[Optional[RunOutcome]] = [None] * len(configs)
        self._total = len(configs)
        self._completed = 0

        # cache pass: satisfied items never reach a worker
        pending: deque[_Pending] = deque()
        for index, config in enumerate(configs):
            hit = self.cache.get(config) if self.cache is not None else None
            if hit is not None:
                outcomes[index] = RunOutcome(config=config, result=hit, cached=True)
                self.stats.cache_hits += 1
                self._completed += 1
                self._emit("cache-hit", index, config)
            else:
                pending.append(_Pending(index, config))

        context = _pick_context() if self.max_workers > 1 else None
        if context is None:
            self._run_inline(pending, outcomes)
        else:
            self._run_pool(pending, outcomes, context)

        self.stats.wall_time_s = monotonic() - started
        if self.cache is not None:
            self.stats.cache = self.cache.stats
        return [o for o in outcomes if o is not None]

    # -- in-process fallback -------------------------------------------------

    def _run_inline(self, pending: deque, outcomes: List[Optional[RunOutcome]]) -> None:
        while pending:
            item = pending.popleft()
            item.attempts += 1
            self._emit("start", item.index, item.config, attempt=item.attempts)
            began = monotonic()
            try:
                result = self.run_fn(item.config)
            except BaseException as exc:
                self._handle_failure(
                    item, f"{type(exc).__name__}: {exc}", pending, outcomes
                )
                continue
            self._handle_success(item, result, monotonic() - began, outcomes)

    # -- worker-pool path ----------------------------------------------------

    def _run_pool(
        self,
        pending: "Deque[_Pending]",
        outcomes: List[Optional[RunOutcome]],
        context: mp.context.BaseContext,
    ) -> None:
        active: List[_Active] = []
        try:
            while pending or active:
                while pending and len(active) < self.max_workers:
                    active.append(self._spawn(pending.popleft(), context))
                self._wait_one(active, pending, outcomes)
        finally:
            for worker in active:  # only on unexpected error paths
                worker.proc.terminate()
                worker.proc.join()
                worker.conn.close()

    def _spawn(self, item: _Pending, context: mp.context.BaseContext) -> _Active:
        item.attempts += 1
        self._emit("start", item.index, item.config, attempt=item.attempts)
        parent_conn, child_conn = context.Pipe(duplex=False)
        proc = context.Process(
            target=_worker_main,
            args=(child_conn, self.run_fn, item.config),
            daemon=True,
        )
        proc.start()
        child_conn.close()  # parent keeps only the read end
        return _Active(item, proc, parent_conn, monotonic())

    def _wait_one(
        self,
        active: List[_Active],
        pending: "Deque[_Pending]",
        outcomes: List[Optional[RunOutcome]],
    ) -> None:
        """Block until at least one worker produces, dies, or times out."""
        timeout = None
        if self.timeout_s is not None:
            now_s = monotonic()
            deadlines = [w.started + self.timeout_s for w in active]
            timeout = max(0.0, min(deadlines) - now_s)
        waitables = [w.conn for w in active if not w.got_msg]
        waitables += [w.proc.sentinel for w in active]
        ready = set(_mp_wait(waitables, timeout))

        now_s = monotonic()
        finished: List[_Active] = []
        for worker in active:
            if worker.conn in ready and not worker.got_msg:
                try:
                    worker.msg = worker.conn.recv()
                    worker.got_msg = True
                except (EOFError, OSError):
                    worker.got_msg = True  # closed without payload: a crash
            if worker.got_msg or worker.proc.sentinel in ready or not worker.proc.is_alive():
                finished.append(worker)
            elif (
                self.timeout_s is not None
                and now_s - worker.started > self.timeout_s
            ):
                worker.proc.terminate()
                worker.msg = (
                    "error",
                    f"timed out after {self.timeout_s:g}s (terminated)",
                )
                worker.got_msg = True
                finished.append(worker)

        for worker in finished:
            self._finalize(worker, pending, outcomes)
            active.remove(worker)

    def _finalize(
        self,
        worker: _Active,
        pending: "Deque[_Pending]",
        outcomes: List[Optional[RunOutcome]],
    ) -> None:
        # drain a message that raced with process exit
        if not worker.got_msg:
            try:
                if worker.conn.poll(0):
                    worker.msg = worker.conn.recv()
                    worker.got_msg = True
            except (EOFError, OSError):
                pass
        worker.proc.join()
        worker.conn.close()
        item, wall = worker.item, monotonic() - worker.started
        if worker.msg is None:
            exitcode = worker.proc.exitcode
            self._handle_failure(
                item, f"worker crashed (exit code {exitcode})", pending, outcomes
            )
        elif worker.msg[0] == "ok":
            self._handle_success(item, worker.msg[1], wall, outcomes)
        else:
            self._handle_failure(item, str(worker.msg[1]), pending, outcomes)

    # -- shared bookkeeping --------------------------------------------------

    def _handle_success(
        self,
        item: _Pending,
        result: Any,
        wall_s: float,
        outcomes: List[Optional[RunOutcome]],
    ) -> None:
        if self.cache is not None:
            self.cache.put(item.config, result)
        outcomes[item.index] = RunOutcome(
            config=item.config,
            result=result,
            attempts=item.attempts,
            wall_time_s=wall_s,
        )
        self.stats.executed += 1
        self.stats.run_wall_s.append(wall_s)
        self._completed += 1
        self._emit(
            "done", item.index, item.config,
            attempt=item.attempts, wall_time_s=wall_s,
        )

    def _handle_failure(
        self,
        item: _Pending,
        error: str,
        pending: "Deque[_Pending]",
        outcomes: List[Optional[RunOutcome]],
    ) -> None:
        if item.attempts < self.max_attempts:
            self.stats.retries += 1
            self._emit(
                "retry", item.index, item.config,
                attempt=item.attempts, detail=error,
            )
            pending.append(item)
            return
        outcomes[item.index] = RunOutcome(
            config=item.config, attempts=item.attempts, error=error
        )
        self.stats.failures += 1
        self._completed += 1
        self._emit(
            "failed", item.index, item.config,
            attempt=item.attempts, detail=error,
        )

    def _emit(
        self,
        kind: str,
        index: int,
        config: ExperimentConfig,
        attempt: int = 0,
        wall_time_s: float = 0.0,
        detail: str = "",
    ) -> None:
        if self.progress is None:
            return
        self.progress(
            ProgressEvent(
                kind=kind,
                index=index,
                total=self._total,
                completed=self._completed,
                config=config,
                attempt=attempt,
                wall_time_s=wall_time_s,
                detail=detail,
            )
        )


def run_grid(
    configs: Sequence[ExperimentConfig],
    max_workers: Optional[int] = None,
    cache_dir: str | os.PathLike | None = None,
    timeout_s: Optional[float] = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
) -> tuple[List[RunOutcome], EngineStats]:
    """One-shot convenience: build an engine, run the grid, return both
    the outcomes (input order) and the engine's counters."""
    engine = ParallelEngine(
        max_workers=max_workers,
        cache=cache_dir,
        timeout_s=timeout_s,
        max_attempts=max_attempts,
        progress=progress,
    )
    outcomes = engine.run(configs)
    return outcomes, engine.stats
