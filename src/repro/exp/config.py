"""Experiment descriptions (YAML-round-trippable, like the paper's §A.3).

An :class:`ExperimentConfig` pins everything a run needs: topology, link
layer, connection-interval specification, producer timing, loss model, and
the seed.  The connection interval uses the paper's notation: ``"75"`` for a
static 75 ms interval, ``"[65:85]"`` for the randomized window policy of
§6.3 (which also enables the subordinate-side collision rejection).
"""

from __future__ import annotations

import hashlib
import json
import random
import re
from dataclasses import asdict, dataclass, field
from typing import Any, Optional

import yaml

#: Bumped whenever a change to the simulator or the config schema makes
#: previously produced results incomparable; part of every cache key, so
#: stale on-disk results are invalidated wholesale instead of silently
#: replayed (see :mod:`repro.exp.cache`).
#: v4: spatial scale tier -- geometry/radio-range/spatial-index fields.
#: v5: scenario dynamics -- churn/mobility/mac_rotation workload blocks.
#: v6: packet-journey spans -- the ``spans`` collection flag.
#: v7: kernel dispatch -- the ``kernel:`` block (serial | lookahead).
CONFIG_SCHEMA_VERSION = 7

#: Valid ``kernel.dispatch`` modes (see :mod:`repro.sim.parallel`).
DISPATCH_MODES = ("serial", "lookahead")

#: Topology kinds that generate node positions and run statconn over the
#: BFS spanning tree of the radio graph (see :mod:`repro.topo`).  ``line``
#: deliberately stays the paper's all-in-mutual-range Figure-6 layout; its
#: spatial sibling is ``corridor``.
SPATIAL_TOPOLOGIES = ("grid", "rgg", "building", "corridor")

#: Geometry kinds a ``dynamic`` (self-forming) run may range-gate with.
GEOMETRY_KINDS = ("none", "line", "grid", "rgg", "building", "corridor")


def canonical_value(value: Any) -> Any:
    """A JSON-safe, canonical form of one config field value.

    Floats are rendered via :meth:`float.hex` so the canonical form encodes
    the exact IEEE-754 bits and never depends on ``repr`` shortest-float
    behaviour; tuples become lists; dict keys are sorted.  The result feeds
    :meth:`ExperimentConfig.canonical_json`, whose bytes must be identical
    across processes, platforms, and Python versions for cache keys to be
    stable.
    """
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        return float(value).hex()
    if isinstance(value, int):
        return value
    if isinstance(value, (list, tuple)):
        return [canonical_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): canonical_value(value[k]) for k in sorted(value)}
    return str(value)

from repro.ble.config import SchedulerPolicy
from repro.core.intervals import (
    IntervalPolicy,
    RandomWindowIntervalPolicy,
    StaticIntervalPolicy,
)
from repro.sim.units import MSEC

_WINDOW_RE = re.compile(r"^\[(\d+):(\d+)\]$")


def parse_interval_spec(
    spec: str, rng: Optional[random.Random] = None
) -> IntervalPolicy:
    """Turn the paper's interval notation into a policy object.

    ``"75"`` -> static 75 ms; ``"[65:85]"`` -> randomized window.
    """
    spec = str(spec).strip()
    match = _WINDOW_RE.match(spec)
    if match:
        lo, hi = int(match.group(1)), int(match.group(2))
        return RandomWindowIntervalPolicy(
            lo * MSEC, hi * MSEC, rng or random.Random(0)
        )
    if spec.isdigit():
        return StaticIntervalPolicy(int(spec) * MSEC)
    raise ValueError(f"unparseable interval spec {spec!r}")


def interval_spec_is_random(spec: str) -> bool:
    """Whether a spec denotes the randomized-window policy."""
    return _WINDOW_RE.match(str(spec).strip()) is not None


@dataclass
class ExperimentConfig:
    """One experiment run, fully described.

    :param topology: ``tree`` / ``line`` / ``star`` (Figure 6 layouts);
        ``dynamic`` -- no configured links at all: the topology self-forms
        via dynconn + RPL during the warmup (the §9 future-work mode; give
        it ``warmup_s`` >= 30 so the DODAG converges before traffic); or a
        spatial kind (``grid`` / ``rgg`` / ``building`` / ``corridor``):
        positions are generated (:mod:`repro.topo`), the medium is
        range-gated, and statconn runs over the BFS tree of the radio
        graph -- the 100/500/1000-node scale tier.
    :param geometry: range-gate a ``dynamic`` run with generated positions
        (``none`` keeps everyone in mutual range; spatial topologies imply
        their own geometry and require ``none`` here).
    :param radio_range_m / node_spacing_m: geometry overrides in meters
        (``0.0`` = the generator's default).
    :param spatial_index: ``grid`` (the uniform-grid neighbor index) or
        ``allpairs`` (the O(N)-per-transmission reference arm the
        differential suite locksteps against -- byte-identical results,
        slower delivery).
    :param max_children: dynconn adoption capacity per router (``dynamic``
        runs only).
    :param link_layer: ``ble`` or ``802154`` (§5.3 comparison).
    :param conn_interval: interval spec string (see module docstring).
    :param producer_interval_s / producer_jitter_s: traffic timing (§4.3).
    :param duration_s: measured time, excluding warmup and drain.
    :param warmup_s: link-establishment lead time before producers start.
    :param drain_s: in-flight settling time after producers stop.
    :param scheduler_policy: radio overlap arbitration (§6.1's two choices).
    :param drift_ppm_span: per-node clock error drawn from ±span ppm.
    :param sample_period_s: link statistics sampling cadence.
    """

    name: str = "experiment"
    topology: str = "tree"
    n_nodes: int = 15
    link_layer: str = "ble"
    conn_interval: str = "75"
    producer_interval_s: float = 1.0
    producer_jitter_s: float = 0.5
    payload_len: int = 39
    confirmable: bool = False
    duration_s: float = 3600.0
    warmup_s: float = 5.0
    drain_s: float = 3.0
    seed: int = 1
    scheduler_policy: str = "earliest-wins"
    drift_ppm_span: float = 3.0
    pktbuf_bytes: int = 6144
    #: Bit error rate of the medium; 2.2e-5 is ~2 % loss per 115-byte packet,
    #: calibrating the link-layer PDR to the paper's ~98 % (Fig. 13b).
    base_ber: float = 2.2e-5
    sample_period_s: float = 10.0
    subordinate_latency: int = 0
    #: Per-connection-event radio reservation cap in ms (0 = unbounded).
    #: NimBLE schedules connection events into bounded slots; 6 ms is the
    #: value that calibrates the §5.2 high-load regime (~75 % PDR at 100 ms
    #: producers) without affecting the moderate-load results.  The ablation
    #: bench `test_abl_event_cap` sweeps it.
    max_event_len_ms: float = 6.0
    #: Explicit per-node clock errors (overrides ``drift_ppm_span``); used by
    #: benches that need deterministic shading timing.
    drift_ppms: Optional[tuple] = None
    #: BT-mandated event abort on CRC error; ablation knob (see
    #: :class:`repro.ble.config.BleConfig`).
    abort_event_on_crc_error: bool = True
    #: Capture a cross-layer trace of the run (see :mod:`repro.trace`).
    #: Off by default: tracing-enabled runs pay per-record overhead and the
    #: records ride along in results, so only diagnostic runs turn it on.
    trace: bool = False
    #: Comma-separated layer filter for the trace (``"ble,ip"``); empty
    #: means all layers.  Ignored unless ``trace`` is set.
    trace_layers: str = ""
    #: Collect runtime metrics (see :mod:`repro.obs`): per-node counters,
    #: gauges, and RTT histograms, snapshotted each ``sample_period_s`` and
    #: attached to the result as a ``metrics`` payload.  Off by default for
    #: the same reason as ``trace``.
    metrics: bool = False
    #: Collect packet-journey spans (see :mod:`repro.spans`): one causal
    #: span tree per CoAP exchange -- every hop, fragment, and
    #: retransmission, with per-hop phases that exactly tile the journey's
    #: end-to-end latency.  Off by default like ``trace``/``metrics``; the
    #: span payload rides along on the result.
    spans: bool = False
    #: Spatial scale tier (see :mod:`repro.topo` / :mod:`repro.phy.spatial`).
    geometry: str = "none"
    radio_range_m: float = 0.0
    node_spacing_m: float = 0.0
    spatial_index: str = "grid"
    max_children: int = 3
    #: Scenario dynamics (see :mod:`repro.workload`): the ``churn:``,
    #: ``mobility:``, and ``mac_rotation:`` blocks, kept as plain dicts so
    #: they YAML-round-trip and canonicalize into the cache key.  Empty
    #: dict = axis disabled.  ``dynamic`` topologies only; mobility
    #: additionally requires a geometry.
    churn: dict = field(default_factory=dict)
    mobility: dict = field(default_factory=dict)
    mac_rotation: dict = field(default_factory=dict)
    #: Kernel dispatch block (see :mod:`repro.sim.parallel`): ``dispatch``
    #: (``"serial"`` | ``"lookahead"``), ``workers`` (lane seam threads,
    #: >= 1), ``horizon_ns`` (conservative lookahead window; 0 = derive
    #: from the scenario's minimum connection interval).  Empty dict =
    #: serial, the seed behaviour.  Observable outputs (trace, metrics)
    #: are byte-identical across modes by design.
    kernel: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.drift_ppms is not None:
            self.drift_ppms = tuple(self.drift_ppms)
            if len(self.drift_ppms) != self.n_nodes:
                raise ValueError("drift_ppms needs one entry per node")
        known = ("tree", "line", "star", "dynamic") + SPATIAL_TOPOLOGIES
        if self.topology not in known:
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.topology == "dynamic" and self.link_layer != "ble":
            raise ValueError("dynamic topologies require the BLE link layer")
        if self.geometry not in GEOMETRY_KINDS:
            raise ValueError(f"unknown geometry {self.geometry!r}")
        if self.spatial_index not in ("grid", "allpairs"):
            raise ValueError(f"unknown spatial index {self.spatial_index!r}")
        if self.topology in SPATIAL_TOPOLOGIES:
            if self.link_layer != "ble":
                raise ValueError("spatial topologies require the BLE link layer")
            if self.geometry != "none":
                raise ValueError(
                    f"topology {self.topology!r} implies its own geometry; "
                    f"leave geometry='none'"
                )
        elif self.geometry != "none" and self.topology != "dynamic":
            raise ValueError(
                "geometry only applies to 'dynamic' or spatial topologies"
            )
        if self.radio_range_m < 0 or self.node_spacing_m < 0:
            raise ValueError("radio_range_m / node_spacing_m must be >= 0")
        if self.max_children < 1:
            raise ValueError("max_children must be at least 1")
        if self.link_layer not in ("ble", "802154"):
            raise ValueError(f"unknown link layer {self.link_layer!r}")
        SchedulerPolicy(self.scheduler_policy)  # validates
        parse_interval_spec(self.conn_interval)  # validates
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        for block_name in ("churn", "mobility", "mac_rotation"):
            block = getattr(self, block_name)
            if not isinstance(block, dict):
                raise ValueError(f"{block_name} must be a mapping")
            if block and self.topology != "dynamic":
                raise ValueError(
                    f"{block_name} requires topology='dynamic' (the workload "
                    f"layer drives dynconn/RPL healing)"
                )
        if self.mobility and self.geometry == "none":
            raise ValueError("mobility requires a geometry (geometry != 'none')")
        if not isinstance(self.kernel, dict):
            raise ValueError("kernel must be a mapping")
        unknown = set(self.kernel) - {"dispatch", "workers", "horizon_ns"}
        if unknown:
            raise ValueError(f"unknown kernel keys: {sorted(unknown)}")
        dispatch = self.kernel.get("dispatch", "serial")
        if dispatch not in DISPATCH_MODES:
            raise ValueError(
                f"kernel.dispatch must be one of {DISPATCH_MODES}, "
                f"got {dispatch!r}"
            )
        workers = self.kernel.get("workers", 1)
        if not isinstance(workers, int) or workers < 1:
            raise ValueError("kernel.workers must be an integer >= 1")
        horizon = self.kernel.get("horizon_ns", 0)
        if not isinstance(horizon, int) or horizon < 0:
            raise ValueError("kernel.horizon_ns must be an integer >= 0")
        # Eager validation of the block contents (raises on bad keys/values).
        from repro.workload.spec import (
            ChurnSpec,
            MacRotationSpec,
            MobilitySpec,
        )

        ChurnSpec.from_dict(self.churn)
        MobilitySpec.from_dict(self.mobility)
        MacRotationSpec.from_dict(self.mac_rotation)

    @property
    def total_runtime_s(self) -> float:
        """Wall of simulated time including warmup and drain."""
        return self.warmup_s + self.duration_s + self.drain_s

    @property
    def uses_random_intervals(self) -> bool:
        """Whether the §6.3 mitigation is active."""
        return interval_spec_is_random(self.conn_interval)

    # -- canonical serialization (cache keys, §A.3 reproducibility) ---------

    def canonical_dict(self) -> dict:
        """All fields in canonical form (sorted keys, hex floats)."""
        plain = asdict(self)
        return {key: canonical_value(plain[key]) for key in sorted(plain)}

    def canonical_json(self) -> str:
        """A byte-stable JSON rendering of the description.

        Two configs are equal iff their canonical JSON is identical; the
        bytes never depend on field declaration order, dict insertion
        order, or float ``repr`` — the properties a content-addressed
        result cache needs.
        """
        return json.dumps(
            self.canonical_dict(),
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=True,
        )

    def stable_hash(self, extra: str = "") -> str:
        """SHA-256 over the canonical JSON, schema version, and ``extra``.

        This is the cache key of the run this config describes (the seed is
        a config field, so it is covered).  ``extra`` lets callers mix in
        an additional tag, e.g. the result-cache format version.
        """
        payload = f"schema={CONFIG_SCHEMA_VERSION};{extra};{self.canonical_json()}"
        return hashlib.sha256(payload.encode("ascii")).hexdigest()

    # -- YAML round trip (the paper's static description files, §A.3) -------

    def to_yaml(self) -> str:
        """Serialize the description."""
        return yaml.safe_dump({"experiment": asdict(self)}, sort_keys=False)

    @classmethod
    def from_yaml(cls, text: str) -> "ExperimentConfig":
        """Parse a description produced by :meth:`to_yaml`."""
        data = yaml.safe_load(text)
        if not isinstance(data, dict) or "experiment" not in data:
            raise ValueError("missing top-level 'experiment' key")
        return cls(**data["experiment"])
