"""Repetition helper: the paper's "every experiment is repeated 5x" (§5).

Runs an :class:`~repro.exp.config.ExperimentConfig` across derived seeds and
aggregates the headline metrics, like the paper's Appendix B grid does for
its 5x1 h cells.  With ``max_workers > 1`` or a ``cache_dir`` the
repetitions go through :class:`~repro.exp.parallel.ParallelEngine`, which
shards them across worker processes and serves previously computed runs
from the on-disk result cache; the aggregated numbers are identical either
way because the simulator is deterministic per ``(config, seed)``.
"""

from __future__ import annotations

import math
import os
from dataclasses import asdict, dataclass, field
from typing import Callable, List, Optional

from repro.exp.config import ExperimentConfig
from repro.exp.metrics import percentile
from repro.exp.runner import ExperimentResult, run_experiment

#: Stride between repetition seed blocks.  Repetition ``k`` of base seed
#: ``s`` uses ``s * SEED_STRIDE + k``, so the 5-seed sets of distinct base
#: seeds can never collide as long as fewer than ``SEED_STRIDE`` repetitions
#: are requested (tests/sim/test_kernel_determinism.py proves this).
SEED_STRIDE = 1000


def derive_seed(base_seed: int, k: int) -> int:
    """The seed of repetition ``k`` for ``base_seed`` (see ``SEED_STRIDE``)."""
    if not 0 <= k < SEED_STRIDE:
        raise ValueError(f"repetition index {k} outside [0, {SEED_STRIDE})")
    return base_seed * SEED_STRIDE + k


def repetition_configs(config: ExperimentConfig, n: int) -> List[ExperimentConfig]:
    """The ``n`` per-repetition configs (only the seed differs)."""
    base = asdict(config)
    return [
        ExperimentConfig(**{**base, "seed": derive_seed(config.seed, k)})
        for k in range(n)
    ]


@dataclass
class RepeatedResult:
    """Aggregate over N repetitions of one configuration.

    ``results`` holds :class:`~repro.exp.runner.ExperimentResult`s on the
    in-process path and picklable
    :class:`~repro.exp.portable.PortableResult`s when the parallel engine
    ran the repetitions; both expose the same metric methods.
    """

    config: ExperimentConfig
    results: List = field(default_factory=list)

    @property
    def n(self) -> int:
        """Number of repetitions."""
        return len(self.results)

    def coap_pdr_mean(self) -> float:
        """Mean CoAP PDR across repetitions."""
        return sum(r.coap_pdr() for r in self.results) / self.n

    def coap_pdr_min(self) -> float:
        """Worst repetition's CoAP PDR."""
        return min(r.coap_pdr() for r in self.results)

    def link_pdr_mean(self) -> float:
        """Mean link-layer PDR across repetitions."""
        return sum(r.link_pdr_overall() for r in self.results) / self.n

    def total_connection_losses(self) -> int:
        """Connection losses summed over all repetitions (Fig. 14's bars)."""
        return sum(r.num_connection_losses() for r in self.results)

    def rtt_percentile(self, q: float) -> float:
        """A pooled RTT quantile across all repetitions (seconds).

        NaN when no repetition delivered a single packet (e.g. fully
        shaded cells) -- aggregation must not crash a whole sweep.
        """
        pooled = [rtt for r in self.results for rtt in r.rtts_s()]
        if not pooled:
            return math.nan
        return percentile(pooled, q)


def run_repetitions(
    config: ExperimentConfig,
    n: int = 5,
    max_workers: int = 1,
    cache_dir: Optional[str | os.PathLike] = None,
    progress: Optional[Callable] = None,
) -> RepeatedResult:
    """Run ``config`` ``n`` times with derived seeds and aggregate.

    Repetition ``k`` uses seed ``config.seed * 1000 + k`` so repetition sets
    never overlap between base seeds and every run stays reproducible.

    :param max_workers: >1 shards repetitions across worker processes.
    :param cache_dir: enables the on-disk result cache (also with 1 worker).
    :param progress: forwarded to the engine when it is used.
    """
    if n < 1:
        raise ValueError("need at least one repetition")
    aggregate = RepeatedResult(config=config)
    configs = repetition_configs(config, n)
    if max_workers == 1 and cache_dir is None:
        # classic path: full (non-portable) results, deep inspection allowed
        for rep_config in configs:
            aggregate.results.append(run_experiment(rep_config))
        return aggregate

    from repro.exp.parallel import ParallelEngine

    engine = ParallelEngine(
        max_workers=max_workers, cache=cache_dir, progress=progress
    )
    outcomes = engine.run(configs)
    failed = [o for o in outcomes if not o.ok]
    if failed:
        details = "; ".join(f"seed={o.config.seed}: {o.error}" for o in failed)
        raise RuntimeError(f"{len(failed)}/{n} repetitions failed: {details}")
    aggregate.results = [o.result for o in outcomes]
    return aggregate
