"""Repetition helper: the paper's "every experiment is repeated 5x" (§5).

Runs an :class:`~repro.exp.config.ExperimentConfig` across derived seeds and
aggregates the headline metrics, like the paper's Appendix B grid does for
its 5x1 h cells.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import List

from repro.exp.config import ExperimentConfig
from repro.exp.metrics import percentile
from repro.exp.runner import ExperimentResult, run_experiment


@dataclass
class RepeatedResult:
    """Aggregate over N repetitions of one configuration."""

    config: ExperimentConfig
    results: List[ExperimentResult] = field(default_factory=list)

    @property
    def n(self) -> int:
        """Number of repetitions."""
        return len(self.results)

    def coap_pdr_mean(self) -> float:
        """Mean CoAP PDR across repetitions."""
        return sum(r.coap_pdr() for r in self.results) / self.n

    def coap_pdr_min(self) -> float:
        """Worst repetition's CoAP PDR."""
        return min(r.coap_pdr() for r in self.results)

    def link_pdr_mean(self) -> float:
        """Mean link-layer PDR across repetitions."""
        return sum(r.link_pdr_overall() for r in self.results) / self.n

    def total_connection_losses(self) -> int:
        """Connection losses summed over all repetitions (Fig. 14's bars)."""
        return sum(r.num_connection_losses() for r in self.results)

    def rtt_percentile(self, q: float) -> float:
        """A pooled RTT quantile across all repetitions (seconds)."""
        pooled = [rtt for r in self.results for rtt in r.rtts_s()]
        return percentile(pooled, q)


def run_repetitions(config: ExperimentConfig, n: int = 5) -> RepeatedResult:
    """Run ``config`` ``n`` times with derived seeds and aggregate.

    Repetition ``k`` uses seed ``config.seed * 1000 + k`` so repetition sets
    never overlap between base seeds and every run stays reproducible.
    """
    if n < 1:
        raise ValueError("need at least one repetition")
    aggregate = RepeatedResult(config=config)
    base = asdict(config)
    for k in range(n):
        rep_config = ExperimentConfig(**{**base, "seed": config.seed * 1000 + k})
        aggregate.results.append(run_experiment(rep_config))
    return aggregate
