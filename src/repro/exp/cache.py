"""Content-addressed on-disk result cache.

The simulator is strictly deterministic: a run is a pure function of its
:class:`~repro.exp.config.ExperimentConfig` (the seed is a config field).
That makes results safely cacheable -- the cache key is the SHA-256 of the
config's canonical JSON, the config schema version, and this module's
result-format version, so *any* change to a config field, to the config
schema, or to the stored result layout reads as a miss rather than a stale
replay.

Layout: ``<cache_dir>/<key[:2]>/<key>.pkl`` (two-level fan-out keeps
directories small on big sweeps).  Writes are atomic (temp file + rename),
so a killed worker never leaves a truncated entry; unreadable entries are
treated as misses and deleted.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.exp.config import ExperimentConfig
from repro.exp.portable import PortableResult

#: Bumped whenever the pickled :class:`PortableResult` layout changes.
RESULT_CACHE_VERSION = "result-v1"


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits / lookups (0.0 before any lookup)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        """One-line human-readable accounting."""
        return (
            f"cache: {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate * 100:.1f}% hit rate)"
        )


class ResultCache:
    """A directory of pickled :class:`PortableResult`s keyed by config hash.

    :param cache_dir: root directory (created on first store).
    :param version: result-format tag mixed into every key; override to
        segregate results produced by incompatible code.
    """

    def __init__(
        self, cache_dir: str | os.PathLike, version: str = RESULT_CACHE_VERSION
    ) -> None:
        self.root = Path(cache_dir)
        self.version = version
        self.stats = CacheStats()

    def key_for(self, config: ExperimentConfig) -> str:
        """The content hash addressing ``config``'s result."""
        return config.stable_hash(extra=self.version)

    def path_for(self, config: ExperimentConfig) -> Path:
        """Where ``config``'s result lives (whether or not it exists)."""
        key = self.key_for(config)
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, config: ExperimentConfig) -> Optional[PortableResult]:
        """The cached result for ``config``, or ``None`` (counted as a miss).

        A corrupt or unreadable entry is deleted and reported as a miss --
        the run is simply recomputed.
        """
        path = self.path_for(config)
        try:
            with path.open("rb") as fh:
                result = pickle.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, config: ExperimentConfig, result: PortableResult) -> Path:
        """Store ``result`` under ``config``'s key (atomic); returns the path."""
        path = self.path_for(config)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("wb") as fh:
            pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        self.stats.stores += 1
        return path

    def __contains__(self, config: ExperimentConfig) -> bool:
        """Whether a result for ``config`` is on disk (no stats update)."""
        return self.path_for(config).exists()

    def entry_count(self) -> int:
        """Number of cached results on disk (walks the directory)."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))
