"""Experimentation framework (paper Appendix A).

The paper drives every experiment from a static YAML description and emits
(i) the description, (ii) a raw event log, and (iii) derived metrics/plots.
This package mirrors that pipeline in-process:

* :mod:`repro.exp.config` -- the experiment description (YAML round-trip),
* :mod:`repro.exp.runner` -- builds the network, runs it, samples link
  statistics, and returns an :class:`~repro.exp.runner.ExperimentResult`,
* :mod:`repro.exp.events` -- the structured event log,
* :mod:`repro.exp.metrics` -- CDFs, time-binned PDR series, per-channel
  PDRs, loss censuses,
* :mod:`repro.exp.report` -- fixed-width tables for benchmark output,
* :mod:`repro.exp.asciiplot` -- terminal renderings of the paper's figures,
* :mod:`repro.exp.portable` -- the picklable result form,
* :mod:`repro.exp.cache` -- the content-addressed on-disk result cache,
* :mod:`repro.exp.parallel` -- the sharded multiprocess execution engine,
* :mod:`repro.exp.sweep` -- config-grid expansion + aggregation on top.
"""

from repro.exp.config import ExperimentConfig, parse_interval_spec
from repro.exp.runner import ExperimentResult, ExperimentRunner, run_experiment
from repro.exp.events import EventLog
from repro.exp.artifacts import write_artifacts
from repro.exp.portable import PortableResult
from repro.exp.cache import ResultCache
from repro.exp.parallel import ParallelEngine, RunOutcome, run_grid
from repro.exp.repeat import RepeatedResult, derive_seed, run_repetitions
from repro.exp.sweep import SweepResult, expand_grid, run_sweep

__all__ = [
    "ExperimentConfig",
    "parse_interval_spec",
    "ExperimentResult",
    "ExperimentRunner",
    "run_experiment",
    "EventLog",
    "write_artifacts",
    "PortableResult",
    "ResultCache",
    "ParallelEngine",
    "RunOutcome",
    "run_grid",
    "RepeatedResult",
    "derive_seed",
    "run_repetitions",
    "SweepResult",
    "expand_grid",
    "run_sweep",
]
