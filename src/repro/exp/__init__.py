"""Experimentation framework (paper Appendix A).

The paper drives every experiment from a static YAML description and emits
(i) the description, (ii) a raw event log, and (iii) derived metrics/plots.
This package mirrors that pipeline in-process:

* :mod:`repro.exp.config` -- the experiment description (YAML round-trip),
* :mod:`repro.exp.runner` -- builds the network, runs it, samples link
  statistics, and returns an :class:`~repro.exp.runner.ExperimentResult`,
* :mod:`repro.exp.events` -- the structured event log,
* :mod:`repro.exp.metrics` -- CDFs, time-binned PDR series, per-channel
  PDRs, loss censuses,
* :mod:`repro.exp.report` -- fixed-width tables for benchmark output,
* :mod:`repro.exp.asciiplot` -- terminal renderings of the paper's figures.
"""

from repro.exp.config import ExperimentConfig, parse_interval_spec
from repro.exp.runner import ExperimentResult, ExperimentRunner, run_experiment
from repro.exp.events import EventLog
from repro.exp.artifacts import write_artifacts
from repro.exp.repeat import RepeatedResult, run_repetitions

__all__ = [
    "ExperimentConfig",
    "parse_interval_spec",
    "ExperimentResult",
    "ExperimentRunner",
    "run_experiment",
    "EventLog",
    "write_artifacts",
    "RepeatedResult",
    "run_repetitions",
]
